#include "server/metrics.h"

#include <unistd.h>

#include <bit>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace kspin::server {

void LatencyHistogram::Record(std::uint64_t micros,
                              std::uint64_t trace_id) {
  const std::size_t bucket =
      micros == 0
          ? 0
          : std::min<std::size_t>(kBuckets - 1, std::bit_width(micros) - 1);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  if (trace_id != 0) {
    exemplar_trace_[bucket].store(trace_id, std::memory_order_relaxed);
    exemplar_value_[bucket].store(micros, std::memory_order_relaxed);
  }
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.exemplar_trace[i] =
        exemplar_trace_[i].load(std::memory_order_relaxed);
    snap.exemplar_value[i] =
        exemplar_value_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_micros = sum_micros_.load(std::memory_order_relaxed);
  return snap;
}

std::uint64_t HistogramSnapshot::MeanMicros() const {
  return count == 0 ? 0 : sum_micros / count;
}

std::uint64_t HistogramSnapshot::PercentileMicros(double p) const {
  if (count == 0) return 0;
  // Rank of the quantile sample, 1-based, clamped into [1, count].
  const std::uint64_t rank = std::min<std::uint64_t>(
      count, std::max<std::uint64_t>(
                 1, static_cast<std::uint64_t>(p * static_cast<double>(
                                                       count))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) return BucketUpperMicros(i);
  }
  return BucketUpperMicros(kBuckets - 1);
}

std::size_t ServerMetrics::OpcodeSlot(Opcode opcode) {
  switch (opcode) {
    case Opcode::kError:
      return kNoSlot;
    case Opcode::kPing:
      return 0;
    case Opcode::kStats:
      return 1;
    case Opcode::kSearchBoolean:
      return 2;
    case Opcode::kSearchRanked:
      return 3;
    case Opcode::kPoiAdd:
      return 4;
    case Opcode::kPoiClose:
      return 5;
    case Opcode::kPoiTag:
      return 6;
    case Opcode::kPoiUntag:
      return 7;
    case Opcode::kSnapshot:
      return 8;
    case Opcode::kReload:
      return 9;
    case Opcode::kHealth:
      return 10;
    case Opcode::kFetchSnapshot:
      return 11;
    case Opcode::kMetrics:
      return 12;
    case Opcode::kInsertDoc:
      return 13;
    case Opcode::kDeleteDoc:
      return 14;
    case Opcode::kUpdateDoc:
      return 15;
    case Opcode::kFetchOplog:
      return 16;
    case Opcode::kPromote:
      return 17;
    case Opcode::kDumpDiag:
      return 18;
  }
  return kNoSlot;
}

void ServerMetrics::RecordQueueDepth(std::size_t depth) {
  std::uint64_t peak = queue_depth_peak.load(std::memory_order_relaxed);
  while (depth > peak && !queue_depth_peak.compare_exchange_weak(
                             peak, depth, std::memory_order_relaxed)) {
  }
}

void ServerMetrics::AddQueryStats(const QueryStats& stats) {
  const auto add = [](std::atomic<std::uint64_t>& a, std::uint64_t delta) {
    if (delta != 0) a.fetch_add(delta, std::memory_order_relaxed);
  };
  add(engine_heap_pops, stats.candidates_extracted);
  add(engine_lower_bounds, stats.lower_bounds_computed);
  add(engine_lb_batch_calls, stats.lb_batch_calls);
  add(engine_lb_batch_items, stats.lb_batch_items);
  add(engine_distance_computations, stats.network_distance_computations);
  add(engine_false_positive_distances, stats.false_positive_distances);
  add(engine_candidates_pruned_lb, stats.candidates_pruned_lb);
  add(engine_heaps_created, stats.heaps_created);
  add(engine_heap_insertions, stats.heap_insertions);
  add(engine_results_returned, stats.results_returned);
  add(engine_heap_build_ns, stats.heap_build_ns);
  add(engine_search_ns, stats.search_ns);
}

MetricsSnapshot ServerMetrics::FullSnapshot(
    std::size_t current_queue_depth) const {
  auto load = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  MetricsSnapshot snap;
  snap.counters = {
      {"connections_opened", load(connections_opened)},
      {"connections_closed", load(connections_closed)},
      {"accept_errors", load(accept_errors)},
      {"frames_received", load(frames_received)},
      {"frames_malformed", load(frames_malformed)},
      {"requests_ok", load(requests_ok)},
      {"requests_bad_query", load(requests_bad_query)},
      {"requests_malformed_payload", load(requests_malformed_payload)},
      {"requests_unsupported", load(requests_unsupported)},
      {"requests_internal_error", load(requests_internal_error)},
      {"requests_overloaded", load(requests_overloaded)},
      {"requests_deadline_dropped", load(requests_deadline_dropped)},
      {"requests_deadline_cancelled", load(requests_deadline_cancelled)},
      {"requests_deadline_rejected", load(requests_deadline_rejected)},
      {"requests_admission_limited", load(requests_admission_limited)},
      {"requests_codel_shed", load(requests_codel_shed)},
      {"requests_rate_limited", load(requests_rate_limited)},
      {"requests_degraded", load(requests_degraded)},
      {"brownout_entries", load(brownout_entries)},
      {"brownout_seconds", load(brownout_seconds)},
      {"overload_state", load(overload_state)},
      {"admission_limit", load(admission_limit)},
      {"snapshots_written", load(snapshots_written)},
      {"snapshots_failed", load(snapshots_failed)},
      {"reloads_ok", load(reloads_ok)},
      {"reloads_failed", load(reloads_failed)},
      {"oplog_appends", load(oplog_appends)},
      {"oplog_fsync_batches", load(oplog_fsync_batches)},
      {"oplog_replay_records", load(oplog_replay_records)},
      {"mutations_applied", load(mutations_applied)},
      {"idempotency_cache_hits", load(idempotency_cache_hits)},
      {"idempotency_cache_misses", load(idempotency_cache_misses)},
      {"requests_not_primary", load(requests_not_primary)},
      {"requests_stale_epoch", load(requests_stale_epoch)},
      {"promotions", load(promotions)},
      {"primary_epoch", load(primary_epoch)},
      {"oplog_quarantined_records", load(oplog_quarantined_records)},
      {"snapshot_chunks_served", load(snapshot_chunks_served)},
      {"replication_polls", load(replication_polls)},
      {"replication_poll_errors", load(replication_poll_errors)},
      {"replication_fetches_ok", load(replication_fetches_ok)},
      {"replication_fetches_failed", load(replication_fetches_failed)},
      {"replication_installs_ok", load(replication_installs_ok)},
      {"replication_installs_rejected", load(replication_installs_rejected)},
      {"replication_last_sequence", load(replication_last_sequence)},
      {"replication_sequence_delta", load(replication_sequence_delta)},
      {"replication_source", load(replication_source)},
      {"replication_oplog_records", load(replication_oplog_records)},
      {"connections_reaped_idle", load(connections_reaped_idle)},
      {"connections_reaped_slow", load(connections_reaped_slow)},
      {"connections_reaped_backpressure",
       load(connections_reaped_backpressure)},
      {"engine_heap_pops", load(engine_heap_pops)},
      {"engine_lower_bounds", load(engine_lower_bounds)},
      {"engine_lb_batch_calls", load(engine_lb_batch_calls)},
      {"engine_lb_batch_items", load(engine_lb_batch_items)},
      {"engine_distance_computations", load(engine_distance_computations)},
      {"engine_false_positive_distances",
       load(engine_false_positive_distances)},
      {"engine_candidates_pruned_lb", load(engine_candidates_pruned_lb)},
      {"engine_heaps_created", load(engine_heaps_created)},
      {"engine_heap_insertions", load(engine_heap_insertions)},
      {"engine_results_returned", load(engine_results_returned)},
      {"engine_heap_build_ns", load(engine_heap_build_ns)},
      {"engine_search_ns", load(engine_search_ns)},
      {"slow_queries", load(slow_queries)},
      {"traces_emitted", load(traces_emitted)},
      {"trace_rotations", load(trace_rotations)},
      {"queue_depth", current_queue_depth},
      {"queue_depth_peak", load(queue_depth_peak)},
      {"opcode_ping", load(requests_by_opcode[0])},
      {"opcode_stats", load(requests_by_opcode[1])},
      {"opcode_search_boolean", load(requests_by_opcode[2])},
      {"opcode_search_ranked", load(requests_by_opcode[3])},
      {"opcode_poi_add", load(requests_by_opcode[4])},
      {"opcode_poi_close", load(requests_by_opcode[5])},
      {"opcode_poi_tag", load(requests_by_opcode[6])},
      {"opcode_poi_untag", load(requests_by_opcode[7])},
      {"opcode_snapshot", load(requests_by_opcode[8])},
      {"opcode_reload", load(requests_by_opcode[9])},
      {"opcode_health", load(requests_by_opcode[10])},
      {"opcode_fetch_snapshot", load(requests_by_opcode[11])},
      {"opcode_metrics", load(requests_by_opcode[12])},
      {"opcode_insert_doc", load(requests_by_opcode[13])},
      {"opcode_delete_doc", load(requests_by_opcode[14])},
      {"opcode_update_doc", load(requests_by_opcode[15])},
      {"opcode_fetch_oplog", load(requests_by_opcode[16])},
      {"opcode_promote", load(requests_by_opcode[17])},
      {"opcode_dump_diag", load(requests_by_opcode[18])},
  };
  // Replication lag: ms since the last poll that confirmed the replica in
  // sync with (or installed a snapshot from) its primary. 0 until the
  // first success — read it together with replication_polls.
  const std::uint64_t last_success = load(replication_last_success_ms);
  std::uint64_t lag_ms = 0;
  if (last_success != 0) {
    const auto now_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    lag_ms = now_ms > last_success ? now_ms - last_success : 0;
  }
  snap.counters.emplace_back("replication_lag_ms", lag_ms);
  snap.query_latency = query_latency.Snapshot();
  snap.update_latency = update_latency.Snapshot();
  snap.admission_sojourn = admission_sojourn.Snapshot();
  return snap;
}

std::vector<std::pair<std::string, std::uint64_t>> ServerMetrics::Snapshot(
    std::size_t current_queue_depth) const {
  MetricsSnapshot snap = FullSnapshot(current_queue_depth);
  auto out = std::move(snap.counters);
  // Latency summaries derived from the same histogram snapshot, so count,
  // mean, and percentiles within one response always agree.
  const auto append = [&out](const char* prefix,
                             const HistogramSnapshot& h) {
    const std::string p(prefix);
    out.emplace_back(p + "_count", h.count);
    out.emplace_back(p + "_mean_us", h.MeanMicros());
    out.emplace_back(p + "_p50_us", h.PercentileMicros(0.50));
    out.emplace_back(p + "_p99_us", h.PercentileMicros(0.99));
  };
  append("query_latency", snap.query_latency);
  append("update_latency", snap.update_latency);
  append("admission_sojourn", snap.admission_sojourn);
  return out;
}

namespace {

bool IsGaugeMetric(const std::string& key) {
  return key == "queue_depth" || key == "queue_depth_peak" ||
         key == "replication_last_sequence" ||
         key == "replication_sequence_delta" ||
         key == "replication_source" ||
         key == "replication_lag_ms" ||
         key == "primary_epoch" ||
         key == "overload_state" ||
         key == "admission_limit";
}

void AppendHistogram(std::string& out, const char* name,
                     const HistogramSnapshot& h,
                     bool with_exemplars = false) {
  char line[240];
  std::snprintf(line, sizeof(line), "# TYPE %s histogram\n", name);
  out += line;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    cumulative += h.buckets[i];
    // Empty tail buckets add nothing a dashboard needs; keep the output
    // small by only emitting buckets up to the last non-empty one...
    if (with_exemplars && h.buckets[i] > 0 && h.exemplar_trace[i] != 0) {
      // OpenMetrics-style exemplar: a recent sample's trace id, linking
      // the bucket to its flight-recorder span (docs/observability.md).
      std::snprintf(line, sizeof(line),
                    "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64
                    " # {trace_id=\"%016" PRIx64 "\"} %" PRIu64 "\n",
                    name, HistogramSnapshot::BucketUpperMicros(i),
                    cumulative, h.exemplar_trace[i], h.exemplar_value[i]);
    } else {
      std::snprintf(line, sizeof(line),
                    "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n", name,
                    HistogramSnapshot::BucketUpperMicros(i), cumulative);
    }
    out += line;
    if (cumulative == h.count) break;  // ...which this detects.
  }
  std::snprintf(line, sizeof(line),
                "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name, h.count);
  out += line;
  std::snprintf(line, sizeof(line), "%s_sum %" PRIu64 "\n", name,
                h.sum_micros);
  out += line;
  std::snprintf(line, sizeof(line), "%s_count %" PRIu64 "\n", name,
                h.count);
  out += line;
}

// Build identity, stamped by CMake (-DKSPIN_GIT_SHA=...); the fallbacks
// keep out-of-tree builds compiling.
#ifndef KSPIN_VERSION_STRING
#define KSPIN_VERSION_STRING "dev"
#endif
#ifndef KSPIN_GIT_SHA
#define KSPIN_GIT_SHA "unknown"
#endif

/// Resident set size in bytes from /proc/self/statm, 0 when unreadable.
std::uint64_t ProcessRssBytes() {
  std::ifstream in("/proc/self/statm");
  std::uint64_t total_pages = 0, rss_pages = 0;
  if (!(in >> total_pages >> rss_pages)) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return rss_pages * static_cast<std::uint64_t>(page > 0 ? page : 4096);
}

/// Open file descriptors counted via /proc/self/fd, 0 when unreadable.
std::uint64_t ProcessOpenFds() {
  std::error_code ec;
  std::filesystem::directory_iterator it("/proc/self/fd", ec);
  if (ec) return 0;
  std::uint64_t count = 0;
  for (const auto& entry : it) {
    (void)entry;
    ++count;
  }
  return count;
}

/// Seconds since this process started: system uptime (/proc/uptime)
/// minus the process start time (/proc/self/stat field 22, in clock
/// ticks since boot). 0 when either file is unreadable.
std::uint64_t ProcessUptimeSeconds() {
  double sys_uptime = 0.0;
  {
    std::ifstream in("/proc/uptime");
    if (!(in >> sys_uptime)) return 0;
  }
  std::ifstream in("/proc/self/stat");
  std::string stat;
  if (!std::getline(in, stat)) return 0;
  // The comm field (2) is parenthesized and may contain spaces; field 3
  // starts after the LAST ')'. starttime is field 22, i.e. 20 fields on.
  const std::size_t paren = stat.rfind(')');
  if (paren == std::string::npos) return 0;
  std::uint64_t starttime_ticks = 0;
  {
    std::istringstream rest(stat.substr(paren + 1));
    std::string field;
    for (int i = 3; i <= 21 && rest >> field; ++i) {
    }
    if (!(rest >> starttime_ticks)) return 0;
  }
  const long ticks = sysconf(_SC_CLK_TCK);
  const double start_seconds =
      static_cast<double>(starttime_ticks) /
      static_cast<double>(ticks > 0 ? ticks : 100);
  return sys_uptime > start_seconds
             ? static_cast<std::uint64_t>(sys_uptime - start_seconds)
             : 0;
}

}  // namespace

std::string RenderPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  char line[240];
  // Build identity first: dashboards join on it to correlate counter
  // resets with restarts and deploys.
  std::snprintf(line, sizeof(line),
                "# TYPE kspin_build_info gauge\n"
                "kspin_build_info{version=\"%s\",git_sha=\"%s\","
                "protocol=\"%u\"} 1\n",
                KSPIN_VERSION_STRING, KSPIN_GIT_SHA,
                static_cast<unsigned>(kProtocolVersion));
  out += line;
  const struct {
    const char* name;
    std::uint64_t value;
  } process_gauges[] = {
      {"kspin_process_resident_memory_bytes", ProcessRssBytes()},
      {"kspin_process_open_fds", ProcessOpenFds()},
      {"kspin_process_uptime_seconds", ProcessUptimeSeconds()},
  };
  for (const auto& gauge : process_gauges) {
    std::snprintf(line, sizeof(line), "# TYPE %s gauge\n%s %" PRIu64 "\n",
                  gauge.name, gauge.name, gauge.value);
    out += line;
  }
  for (const auto& [key, value] : snapshot.counters) {
    const std::string name = "kspin_" + key;
    std::snprintf(line, sizeof(line), "# TYPE %s %s\n%s %" PRIu64 "\n",
                  name.c_str(), IsGaugeMetric(key) ? "gauge" : "counter",
                  name.c_str(), value);
    out += line;
  }
  AppendHistogram(out, "kspin_query_latency_us", snapshot.query_latency,
                  /*with_exemplars=*/true);
  AppendHistogram(out, "kspin_update_latency_us", snapshot.update_latency);
  AppendHistogram(out, "kspin_admission_queue_sojourn_us",
                  snapshot.admission_sojourn);
  return out;
}

}  // namespace kspin::server
