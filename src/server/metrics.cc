#include "server/metrics.h"

#include <bit>
#include <chrono>

namespace kspin::server {

void LatencyHistogram::Record(std::uint64_t micros) {
  const std::size_t bucket =
      micros == 0
          ? 0
          : std::min<std::size_t>(kBuckets - 1, std::bit_width(micros) - 1);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::MeanMicros() const {
  const std::uint64_t n = count_.load(std::memory_order_relaxed);
  return n == 0 ? 0 : sum_micros_.load(std::memory_order_relaxed) / n;
}

std::uint64_t LatencyHistogram::PercentileMicros(double p) const {
  const std::uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  // Rank of the quantile sample, 1-based, clamped into [1, n].
  const std::uint64_t rank = std::min<std::uint64_t>(
      n, std::max<std::uint64_t>(
             1, static_cast<std::uint64_t>(p * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return std::uint64_t{1} << (i + 1);  // Upper bound.
  }
  return std::uint64_t{1} << kBuckets;
}

std::size_t ServerMetrics::OpcodeSlot(Opcode opcode) {
  switch (opcode) {
    case Opcode::kError:
      return kNoSlot;
    case Opcode::kPing:
      return 0;
    case Opcode::kStats:
      return 1;
    case Opcode::kSearchBoolean:
      return 2;
    case Opcode::kSearchRanked:
      return 3;
    case Opcode::kPoiAdd:
      return 4;
    case Opcode::kPoiClose:
      return 5;
    case Opcode::kPoiTag:
      return 6;
    case Opcode::kPoiUntag:
      return 7;
    case Opcode::kSnapshot:
      return 8;
    case Opcode::kReload:
      return 9;
    case Opcode::kHealth:
      return 10;
    case Opcode::kFetchSnapshot:
      return 11;
  }
  return kNoSlot;
}

void ServerMetrics::RecordQueueDepth(std::size_t depth) {
  std::uint64_t peak = queue_depth_peak.load(std::memory_order_relaxed);
  while (depth > peak && !queue_depth_peak.compare_exchange_weak(
                             peak, depth, std::memory_order_relaxed)) {
  }
}

std::vector<std::pair<std::string, std::uint64_t>> ServerMetrics::Snapshot(
    std::size_t current_queue_depth) const {
  auto load = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  std::vector<std::pair<std::string, std::uint64_t>> out = {
      {"connections_opened", load(connections_opened)},
      {"connections_closed", load(connections_closed)},
      {"accept_errors", load(accept_errors)},
      {"frames_received", load(frames_received)},
      {"frames_malformed", load(frames_malformed)},
      {"requests_ok", load(requests_ok)},
      {"requests_bad_query", load(requests_bad_query)},
      {"requests_malformed_payload", load(requests_malformed_payload)},
      {"requests_unsupported", load(requests_unsupported)},
      {"requests_internal_error", load(requests_internal_error)},
      {"requests_overloaded", load(requests_overloaded)},
      {"requests_deadline_dropped", load(requests_deadline_dropped)},
      {"requests_deadline_cancelled", load(requests_deadline_cancelled)},
      {"snapshots_written", load(snapshots_written)},
      {"snapshots_failed", load(snapshots_failed)},
      {"reloads_ok", load(reloads_ok)},
      {"reloads_failed", load(reloads_failed)},
      {"requests_not_primary", load(requests_not_primary)},
      {"snapshot_chunks_served", load(snapshot_chunks_served)},
      {"replication_polls", load(replication_polls)},
      {"replication_poll_errors", load(replication_poll_errors)},
      {"replication_fetches_ok", load(replication_fetches_ok)},
      {"replication_fetches_failed", load(replication_fetches_failed)},
      {"replication_installs_ok", load(replication_installs_ok)},
      {"replication_installs_rejected", load(replication_installs_rejected)},
      {"replication_last_sequence", load(replication_last_sequence)},
      {"replication_sequence_delta", load(replication_sequence_delta)},
      {"connections_reaped_idle", load(connections_reaped_idle)},
      {"connections_reaped_slow", load(connections_reaped_slow)},
      {"connections_reaped_backpressure",
       load(connections_reaped_backpressure)},
      {"queue_depth", current_queue_depth},
      {"queue_depth_peak", load(queue_depth_peak)},
      {"opcode_ping", load(requests_by_opcode[0])},
      {"opcode_stats", load(requests_by_opcode[1])},
      {"opcode_search_boolean", load(requests_by_opcode[2])},
      {"opcode_search_ranked", load(requests_by_opcode[3])},
      {"opcode_poi_add", load(requests_by_opcode[4])},
      {"opcode_poi_close", load(requests_by_opcode[5])},
      {"opcode_poi_tag", load(requests_by_opcode[6])},
      {"opcode_poi_untag", load(requests_by_opcode[7])},
      {"opcode_snapshot", load(requests_by_opcode[8])},
      {"opcode_reload", load(requests_by_opcode[9])},
      {"opcode_health", load(requests_by_opcode[10])},
      {"opcode_fetch_snapshot", load(requests_by_opcode[11])},
      {"query_latency_count", query_latency.Count()},
      {"query_latency_mean_us", query_latency.MeanMicros()},
      {"query_latency_p50_us", query_latency.PercentileMicros(0.50)},
      {"query_latency_p99_us", query_latency.PercentileMicros(0.99)},
      {"update_latency_count", update_latency.Count()},
      {"update_latency_mean_us", update_latency.MeanMicros()},
      {"update_latency_p50_us", update_latency.PercentileMicros(0.50)},
      {"update_latency_p99_us", update_latency.PercentileMicros(0.99)},
  };
  // Replication lag: ms since the last poll that confirmed the replica in
  // sync with (or installed a snapshot from) its primary. 0 until the
  // first success — read it together with replication_polls.
  const std::uint64_t last_success =
      load(replication_last_success_ms);
  std::uint64_t lag_ms = 0;
  if (last_success != 0) {
    const auto now_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    lag_ms = now_ms > last_success ? now_ms - last_success : 0;
  }
  out.emplace_back("replication_lag_ms", lag_ms);
  return out;
}

}  // namespace kspin::server
