#include "server/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace kspin::server {
namespace {

/// Parses the status byte + optional error string off a response payload.
/// On kOk the reader is left positioned at the result body.
void ParseReplyEnvelope(PayloadReader& reader, Client::Reply* reply) {
  reply->status = static_cast<StatusCode>(reader.U8());
  if (!reader.ok()) {
    throw ClientError("response payload missing status byte");
  }
  if (reply->status != StatusCode::kOk) {
    reply->error = reader.String();
    if (!reader.ok()) throw ClientError("malformed error response");
    // Tolerant trailer (v4): OVERLOADED bodies may carry a u32
    // retry-after hint; older servers simply end after the message.
    if (reply->status == StatusCode::kOverloaded && !reader.AtEnd()) {
      const std::uint32_t hint = reader.U32();
      if (reader.ok()) reply->retry_after_ms = hint;
    }
  }
}

}  // namespace

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      next_request_id_(other.next_request_id_),
      fence_epoch_(other.fence_epoch_),
      trace_(other.trace_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    next_request_id_ = other.next_request_id_;
    fence_epoch_ = other.fence_epoch_;
    trace_ = other.trace_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::Connect(const std::string& host, std::uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw ClientError("socket failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Not a dotted quad; resolve it.
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* found = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &found) != 0 ||
        found == nullptr) {
      Close();
      throw ClientError("cannot resolve host " + host);
    }
    addr.sin_addr =
        reinterpret_cast<sockaddr_in*>(found->ai_addr)->sin_addr;
    ::freeaddrinfo(found);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    Close();
    throw ClientError(std::string("connect failed: ") +
                      std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::WriteAll(std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-request must surface as a
    // ClientError (retryable), never as a process-killing SIGPIPE.
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ClientError(std::string("write failed: ") +
                        std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

void Client::ReadExactly(std::uint8_t* out, std::size_t count) {
  std::size_t got = 0;
  while (got < count) {
    const ssize_t n = ::read(fd_, out + got, count - got);
    if (n == 0) throw ClientError("connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ClientError(std::string("read failed: ") +
                        std::strerror(errno));
    }
    got += static_cast<std::size_t>(n);
  }
}

std::vector<std::uint8_t> Client::RoundTrip(
    Opcode opcode, std::span<const std::uint8_t> payload,
    std::uint32_t deadline_ms) {
  if (fd_ < 0) throw ClientError("not connected");

  FrameHeader header;
  header.opcode = opcode;
  header.request_id = next_request_id_++;
  header.deadline_ms = deadline_ms;
  if (trace_.valid()) {
    // v5 trace trailer: appended after the body, flagged in the header;
    // the server strips it before the opcode decoder runs.
    header.flags |= kFrameFlagTraceContext;
    std::vector<std::uint8_t> traced(payload.begin(), payload.end());
    AppendTraceTrailer(&traced, trace_);
    WriteAll(EncodeFrame(header, traced));
  } else {
    WriteAll(EncodeFrame(header, payload));
  }

  std::uint8_t raw_header[kHeaderSize];
  ReadExactly(raw_header, kHeaderSize);
  FrameHeader response;
  std::size_t frame_size = 0;
  const DecodeResult decoded = TryDecodeFrame(
      std::span<const std::uint8_t>(raw_header, kHeaderSize), &response,
      &frame_size);
  if (decoded != DecodeResult::kFrame &&
      decoded != DecodeResult::kNeedMore) {
    throw ClientError("malformed response frame header");
  }
  std::vector<std::uint8_t> body(response.payload_size);
  ReadExactly(body.data(), body.size());

  if (response.opcode == Opcode::kError) {
    PayloadReader reader(body);
    Reply reply;
    ParseReplyEnvelope(reader, &reply);
    throw ClientError("server closed connection: " + reply.error);
  }
  if (response.request_id != header.request_id ||
      response.opcode != opcode) {
    throw ClientError("response does not match request");
  }
  return body;
}

Client::Reply Client::Ping() {
  const auto body = RoundTrip(Opcode::kPing, {});
  PayloadReader reader(body);
  Reply reply;
  ParseReplyEnvelope(reader, &reply);
  return reply;
}

std::uint64_t Client::StatsReply::Value(std::string_view key) const {
  for (const auto& [name, value] : stats) {
    if (name == key) return value;
  }
  return 0;
}

Client::StatsReply Client::Stats() {
  const auto body = RoundTrip(Opcode::kStats, {});
  PayloadReader reader(body);
  StatsReply reply;
  ParseReplyEnvelope(reader, &reply);
  // Backward-compatible: a v1 body simply leaves histograms empty.
  if (reply.ok() &&
      !DecodeStatsResponse(reader, &reply.stats, &reply.histograms)) {
    throw ClientError("malformed stats response");
  }
  return reply;
}

Client::MetricsReply Client::Metrics() {
  const auto body = RoundTrip(Opcode::kMetrics, {});
  PayloadReader reader(body);
  MetricsReply reply;
  ParseReplyEnvelope(reader, &reply);
  if (reply.ok() && !DecodeMetricsResponse(reader, &reply.text)) {
    throw ClientError("malformed metrics response");
  }
  return reply;
}

Client::MetricsReply Client::DumpDiag() {
  const auto body = RoundTrip(Opcode::kDumpDiag, {});
  PayloadReader reader(body);
  MetricsReply reply;
  ParseReplyEnvelope(reader, &reply);
  if (reply.ok() && !DecodeDiagResponse(reader, &reply.text)) {
    throw ClientError("malformed diag response");
  }
  return reply;
}

Client::HealthReply Client::Health() {
  const auto body = RoundTrip(Opcode::kHealth, {});
  PayloadReader reader(body);
  HealthReply reply;
  ParseReplyEnvelope(reader, &reply);
  if (reply.ok() && !DecodeHealthResponse(reader, &reply.health)) {
    throw ClientError("malformed health response");
  }
  return reply;
}

Client::FetchSnapshotReply Client::FetchSnapshotChunk(
    std::uint64_t sequence, std::uint64_t offset, std::uint32_t max_bytes) {
  FetchSnapshotRequest request{sequence, offset, max_bytes};
  const auto body = RoundTrip(Opcode::kFetchSnapshot,
                              EncodeFetchSnapshotRequest(request));
  PayloadReader reader(body);
  FetchSnapshotReply reply;
  ParseReplyEnvelope(reader, &reply);
  if (reply.ok() && !DecodeSnapshotChunkResponse(reader, &reply.chunk)) {
    // Covers both malformed framing and a chunk CRC mismatch.
    throw ClientError("malformed or corrupt snapshot chunk");
  }
  return reply;
}

Client::SearchReply Client::Search(std::string_view query, VertexId from,
                                   std::uint32_t k, bool ranked,
                                   std::uint32_t deadline_ms) {
  SearchRequest request;
  request.vertex = from;
  request.k = k;
  request.query = std::string(query);
  const auto body = RoundTrip(
      ranked ? Opcode::kSearchRanked : Opcode::kSearchBoolean,
      EncodeSearchRequest(request), deadline_ms);
  PayloadReader reader(body);
  SearchReply reply;
  ParseReplyEnvelope(reader, &reply);
  std::uint8_t flags = 0;
  if (reply.ok() && !DecodeSearchResponse(reader, &reply.results, &flags)) {
    throw ClientError("malformed search response");
  }
  reply.degraded = (flags & kSearchFlagDegraded) != 0;
  return reply;
}

Client::AddPoiReply Client::AddPoi(std::string_view name, VertexId vertex,
                                   std::span<const std::string> keywords) {
  PoiAddRequest request;
  request.vertex = vertex;
  request.name = std::string(name);
  request.keywords.assign(keywords.begin(), keywords.end());
  const auto body =
      RoundTrip(Opcode::kPoiAdd, EncodePoiAddRequest(request));
  PayloadReader reader(body);
  AddPoiReply reply;
  ParseReplyEnvelope(reader, &reply);
  if (reply.ok()) {
    reply.id = reader.U32();
    if (!reader.Finished()) throw ClientError("malformed add response");
  }
  return reply;
}

Client::Reply Client::ClosePoi(ObjectId id) {
  PayloadWriter w;
  w.U32(id);
  const auto body = RoundTrip(Opcode::kPoiClose, w.Bytes());
  PayloadReader reader(body);
  Reply reply;
  ParseReplyEnvelope(reader, &reply);
  return reply;
}

Client::Reply Client::TagPoi(ObjectId id, std::string_view keyword) {
  PoiTagRequest request{id, std::string(keyword)};
  const auto body =
      RoundTrip(Opcode::kPoiTag, EncodePoiTagRequest(request));
  PayloadReader reader(body);
  Reply reply;
  ParseReplyEnvelope(reader, &reply);
  return reply;
}

Client::Reply Client::UntagPoi(ObjectId id, std::string_view keyword) {
  PoiTagRequest request{id, std::string(keyword)};
  const auto body =
      RoundTrip(Opcode::kPoiUntag, EncodePoiTagRequest(request));
  PayloadReader reader(body);
  Reply reply;
  ParseReplyEnvelope(reader, &reply);
  return reply;
}

Client::MutateReply Client::InsertDoc(std::uint64_t idempotency_key,
                                      VertexId vertex, std::string_view name,
                                      std::span<const std::string> keywords) {
  InsertDocRequest request;
  request.idempotency_key = idempotency_key;
  request.vertex = vertex;
  request.name = std::string(name);
  request.keywords.assign(keywords.begin(), keywords.end());
  request.fence_epoch = fence_epoch_;
  const auto body =
      RoundTrip(Opcode::kInsertDoc, EncodeInsertDocRequest(request));
  PayloadReader reader(body);
  MutateReply reply;
  ParseReplyEnvelope(reader, &reply);
  if (reply.ok()) {
    MutationReply result;
    if (!DecodeMutationResponse(reader, &result)) {
      throw ClientError("malformed mutation response");
    }
    reply.sequence = result.sequence;
    reply.id = result.object;
    reply.primary_epoch = result.primary_epoch;
  }
  return reply;
}

Client::MutateReply Client::DeleteDoc(std::uint64_t idempotency_key,
                                      ObjectId id) {
  DeleteDocRequest request{idempotency_key, id, fence_epoch_};
  const auto body =
      RoundTrip(Opcode::kDeleteDoc, EncodeDeleteDocRequest(request));
  PayloadReader reader(body);
  MutateReply reply;
  ParseReplyEnvelope(reader, &reply);
  if (reply.ok()) {
    MutationReply result;
    if (!DecodeMutationResponse(reader, &result)) {
      throw ClientError("malformed mutation response");
    }
    reply.sequence = result.sequence;
    reply.id = result.object;
    reply.primary_epoch = result.primary_epoch;
  }
  return reply;
}

Client::MutateReply Client::UpdateDoc(
    std::uint64_t idempotency_key, ObjectId id,
    std::span<const std::string> add_keywords,
    std::span<const std::string> remove_keywords) {
  UpdateDocRequest request;
  request.idempotency_key = idempotency_key;
  request.object = id;
  request.add_keywords.assign(add_keywords.begin(), add_keywords.end());
  request.remove_keywords.assign(remove_keywords.begin(),
                                 remove_keywords.end());
  request.fence_epoch = fence_epoch_;
  const auto body =
      RoundTrip(Opcode::kUpdateDoc, EncodeUpdateDocRequest(request));
  PayloadReader reader(body);
  MutateReply reply;
  ParseReplyEnvelope(reader, &reply);
  if (reply.ok()) {
    MutationReply result;
    if (!DecodeMutationResponse(reader, &result)) {
      throw ClientError("malformed mutation response");
    }
    reply.sequence = result.sequence;
    reply.id = result.object;
    reply.primary_epoch = result.primary_epoch;
  }
  return reply;
}

Client::FetchOplogReply Client::FetchOplog(std::uint64_t from_sequence,
                                           std::uint32_t max_bytes,
                                           std::uint64_t requester_epoch) {
  FetchOplogRequest request{from_sequence, max_bytes, requester_epoch};
  const auto body =
      RoundTrip(Opcode::kFetchOplog, EncodeFetchOplogRequest(request));
  PayloadReader reader(body);
  FetchOplogReply reply;
  ParseReplyEnvelope(reader, &reply);
  if (reply.ok() && !DecodeOplogChunkResponse(reader, &reply.chunk)) {
    // Covers malformed framing and a per-record CRC mismatch.
    throw ClientError("malformed or corrupt op-log chunk");
  }
  return reply;
}

Client::PromoteAck Client::Promote(std::uint64_t min_applied_sequence) {
  PromoteRequest request{min_applied_sequence};
  const auto body =
      RoundTrip(Opcode::kPromote, EncodePromoteRequest(request));
  PayloadReader reader(body);
  PromoteAck reply;
  ParseReplyEnvelope(reader, &reply);
  if (reply.ok()) {
    PromoteReply result;
    if (!DecodePromoteResponse(reader, &result)) {
      throw ClientError("malformed promote response");
    }
    reply.epoch = result.epoch;
    reply.applied_sequence = result.applied_sequence;
    reply.role = result.role;
  }
  return reply;
}

Client::SnapshotReply Client::Snapshot() {
  const auto body = RoundTrip(Opcode::kSnapshot, {});
  PayloadReader reader(body);
  SnapshotReply reply;
  ParseReplyEnvelope(reader, &reply);
  if (reply.ok() &&
      !DecodeSnapshotResponse(reader, &reply.sequence, &reply.path)) {
    throw ClientError("malformed snapshot response");
  }
  return reply;
}

Client::SnapshotReply Client::Reload() {
  const auto body = RoundTrip(Opcode::kReload, {});
  PayloadReader reader(body);
  SnapshotReply reply;
  ParseReplyEnvelope(reader, &reply);
  if (reply.ok() &&
      !DecodeSnapshotResponse(reader, &reply.sequence, &reply.path)) {
    throw ClientError("malformed reload response");
  }
  return reply;
}

}  // namespace kspin::server
