// Always-on flight recorder: a fixed-size lock-free ring buffer that
// retains the last N diagnostic records — request spans and typed
// control-plane events (promotions, fencing, brownout transitions,
// replication source switches, shed bursts, snapshot/restore, op-log
// rotation). Writers are wait-free (one fetch_add plus relaxed word
// stores); a concurrent Dump() copies each slot through a per-slot
// sequence stamp and drops slots that were being overwritten mid-copy,
// so a post-incident DUMP_DIAG scrape reconstructs what the node did
// without any pre-enabled tracing. See docs/observability.md.
#ifndef KSPIN_SERVER_FLIGHT_RECORDER_H_
#define KSPIN_SERVER_FLIGHT_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace kspin::server {

/// Control-plane event types journaled by the recorder.
enum class DiagEvent : std::uint8_t {
  kPromote = 1,            ///< a = new primary epoch, b = applied sequence.
  kStaleEpochFence = 2,    ///< a = observed epoch, b = own epoch.
  kBrownoutEnter = 3,      ///< a = admission limit at entry.
  kBrownoutExit = 4,       ///< a = admission limit at exit.
  kReplicationSourceOplog = 5,     ///< Tailing the primary's op log.
  kReplicationSourceSnapshot = 6,  ///< Fell back to snapshot transfer.
  kShedBurst = 7,          ///< a = shed cause (DiagShedCause), b = count.
  kSnapshotWritten = 8,    ///< a = snapshot sequence.
  kSnapshotRestored = 9,   ///< a = snapshot sequence.
  kOplogRotated = 10,      ///< a = truncate-through sequence.
};

/// DiagEvent::kShedBurst `a` argument.
enum class DiagShedCause : std::uint8_t {
  kQueueFull = 1,
  kLimited = 2,
  kDeadline = 3,
  kCodel = 4,
  kRateLimited = 5,
};

std::string_view DiagEventName(DiagEvent event);
std::string_view DiagShedCauseName(DiagShedCause cause);

/// One request span as recorded in the ring (and, when the file sink is
/// enabled, mirrored as a JSON line). Stage timings reuse the engine's
/// QueryStats; counters are the per-query deltas PR 5 already computes.
struct SpanRecord {
  std::uint64_t trace_id = 0;        ///< 0 = request carried no context.
  std::uint64_t parent_span_id = 0;
  std::uint64_t span_id = 0;         ///< Minted by this server.
  std::uint8_t opcode = 0;
  std::uint8_t status = 0;           ///< StatusCode.
  std::uint8_t degraded = 0;         ///< Served under brownout.
  std::uint32_t queue_us = 0;        ///< Admission sojourn (EDF queue wait).
  std::uint32_t execute_us = 0;      ///< Worker execution.
  std::uint32_t reply_us = 0;        ///< Reply encode + write.
  std::uint64_t heap_build_ns = 0;   ///< QueryStats stage timing.
  std::uint64_t search_ns = 0;       ///< QueryStats stage timing.
  std::uint32_t heap_pops = 0;
  std::uint32_t lower_bounds = 0;
  std::uint32_t distance_computations = 0;
  std::uint32_t false_positive_distances = 0;
  std::uint32_t results = 0;
};

class FlightRecorder {
 public:
  /// `capacity` is rounded up to at least 64 slots. Each slot is a fixed
  /// 144-byte record, so the default 2048-slot ring costs ~288 KiB.
  explicit FlightRecorder(std::size_t capacity = 2048);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Wait-free; callable from any thread.
  void RecordSpan(const SpanRecord& span);
  void RecordEvent(DiagEvent event, std::uint64_t a = 0,
                   std::uint64_t b = 0);

  /// Mints a server-local span id (never 0).
  std::uint64_t NextSpanId();

  /// Renders the retained records oldest-to-newest as JSON lines, one
  /// record per line, keeping the NEWEST lines when the text would
  /// exceed `max_bytes`. Records overwritten while being copied are
  /// skipped (their sequence numbers simply do not appear).
  std::string Dump(std::size_t max_bytes = 0) const;

  std::size_t capacity() const { return capacity_; }
  /// Total records ever written (dropped = written - capacity when over).
  std::uint64_t written() const {
    return cursor_.load(std::memory_order_relaxed);
  }

 private:
  // A slot is a seqlock-stamped array of relaxed atomic words: writers
  // fill the words then publish the stamp with release; readers copy the
  // words between two acquire loads of the stamp and keep the copy only
  // if both match. Torn reads are detected, never returned, and no
  // bytewise data race exists for TSan to flag.
  static constexpr std::size_t kWordsPerSlot = 17;

  struct Slot {
    std::atomic<std::uint64_t> stamp{0};  ///< 0 = never written.
    std::atomic<std::uint64_t> words[kWordsPerSlot];
  };

  struct DecodedRecord;  // Dump-side view of one slot.

  void WriteSlot(const std::uint64_t (&words)[kWordsPerSlot]);
  std::uint64_t NowMicros() const;

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> cursor_{0};   ///< Next sequence to claim + 1.
  std::atomic<std::uint64_t> span_ids_{0};
  std::chrono::steady_clock::time_point start_;
};

}  // namespace kspin::server

#endif  // KSPIN_SERVER_FLIGHT_RECORDER_H_
