// Opt-in per-query tracing (docs/observability.md): one JSON line per
// executed search with a stable query fingerprint, stage timings, and the
// engine's QueryStats counter deltas. Enabled with kspin_server --trace=F;
// the same formatting backs the slow-query log (--slow-query-ms=T).
#ifndef KSPIN_SERVER_TRACE_H_
#define KSPIN_SERVER_TRACE_H_

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>

#include "kspin/query_processor.h"

namespace kspin::server {

/// FNV-1a 64-bit fingerprint over (query text, vertex, k). Stable across
/// runs and processes, so trace lines of the same logical query correlate
/// and a dashboard can group by it.
std::uint64_t QueryFingerprint(std::string_view query, std::uint64_t vertex,
                               std::uint32_t k);

/// Everything one trace line carries; formatted by FormatQueryTrace.
struct QueryTraceEvent {
  std::uint64_t fingerprint = 0;
  std::string_view opcode;  ///< "search_boolean" / "search_ranked".
  std::string_view query;
  std::uint64_t vertex = 0;
  std::uint32_t k = 0;
  std::string_view status;  ///< StatusName() of the outcome.
  std::uint64_t latency_us = 0;  ///< Admission to response encoded.
  QueryStats stats;
};

/// Renders one trace event as a single JSON object (no trailing newline).
std::string FormatQueryTrace(const QueryTraceEvent& event);

/// Thread-safe JSON-lines writer. Append-mode; one mutex-guarded write +
/// flush per line so concurrent workers never interleave and a killed
/// server keeps every completed line. An unopenable path disables the
/// sink (the server logs and keeps serving) rather than failing startup.
class TraceSink {
 public:
  explicit TraceSink(const std::string& path)
      : out_(path, std::ios::app) {}

  bool enabled() const { return out_.is_open() && out_.good(); }

  /// Appends `json_line` + '\n'. No-op when the sink is disabled.
  void Write(const std::string& json_line) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!out_.good()) return;
    out_ << json_line << '\n';
    out_.flush();
  }

 private:
  std::mutex mutex_;
  std::ofstream out_;
};

}  // namespace kspin::server

#endif  // KSPIN_SERVER_TRACE_H_
