// Opt-in per-query tracing (docs/observability.md): one JSON line per
// executed search with a stable query fingerprint, stage timings, and the
// engine's QueryStats counter deltas. Enabled with kspin_server --trace=F;
// the same formatting backs the slow-query log (--slow-query-ms=T).
#ifndef KSPIN_SERVER_TRACE_H_
#define KSPIN_SERVER_TRACE_H_

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>

#include "kspin/query_processor.h"

namespace kspin::server {

/// FNV-1a 64-bit fingerprint over (query text, vertex, k). Stable across
/// runs and processes, so trace lines of the same logical query correlate
/// and a dashboard can group by it.
std::uint64_t QueryFingerprint(std::string_view query, std::uint64_t vertex,
                               std::uint32_t k);

/// Everything one trace line carries; formatted by FormatQueryTrace.
/// Since protocol v5 a line is also a span: it carries the wire trace
/// context (when the request had one), the server-minted span id, and
/// the stage breakdown (queue wait vs execution) next to the engine's
/// QueryStats counter deltas.
struct QueryTraceEvent {
  std::uint64_t fingerprint = 0;
  std::string_view opcode;  ///< "search_boolean" / "search_ranked".
  std::string_view query;
  std::uint64_t vertex = 0;
  std::uint32_t k = 0;
  std::string_view status;  ///< StatusName() of the outcome.
  std::uint64_t latency_us = 0;  ///< Admission to response encoded.
  std::uint64_t trace_id = 0;        ///< 0 = request carried no context.
  std::uint64_t parent_span_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t queue_us = 0;   ///< Admission sojourn (EDF queue wait).
  bool degraded = false;        ///< Served under brownout.
  QueryStats stats;
};

/// Renders one trace event as a single JSON object (no trailing newline).
std::string FormatQueryTrace(const QueryTraceEvent& event);

/// Thread-safe JSON-lines writer. Append-mode; one mutex-guarded write +
/// flush per line so concurrent workers never interleave and a killed
/// server keeps every completed line. An unopenable path disables the
/// sink (the server logs and keeps serving) rather than failing startup.
///
/// With `max_bytes` > 0 the sink rotates by size: when the file reaches
/// the limit it is renamed to `<path>.1` (existing `<path>.1` shifts to
/// `<path>.2` and so on, the oldest beyond `keep` is deleted) and a
/// fresh file is opened — bounded disk use on long-running servers.
class TraceSink {
 public:
  explicit TraceSink(const std::string& path, std::uint64_t max_bytes = 0,
                     std::uint32_t keep = 3);

  bool enabled() const { return enabled_; }

  /// Appends `json_line` + '\n'. No-op when the sink is disabled.
  void Write(const std::string& json_line);

  /// Completed rotations so far (tests / METRICS). Atomic so scrapers
  /// read it without taking the write mutex.
  std::uint64_t rotations() const {
    return rotations_.load(std::memory_order_relaxed);
  }

 private:
  void RotateLocked();

  std::mutex mutex_;
  std::ofstream out_;
  std::string path_;
  std::uint64_t max_bytes_ = 0;  ///< 0 = never rotate.
  std::uint32_t keep_ = 3;
  std::uint64_t bytes_ = 0;      ///< Size of the current file.
  std::atomic<std::uint64_t> rotations_{0};
  bool enabled_ = false;
};

}  // namespace kspin::server

#endif  // KSPIN_SERVER_TRACE_H_
