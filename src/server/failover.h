// Client-side failover across a replicated deployment.
//
// FailoverClient wraps one RetryingClient per endpoint and routes by
// operation class:
//
//  - Reads (ping/stats/metrics/health/search) prefer a healthy replica — keeping
//    read traffic off the primary — and fail over to the next endpoint on
//    any transport failure (connect refused, timeout, torn stream). The
//    endpoint that last answered is sticky, so steady state costs no
//    extra probing.
//  - Writes (poi updates, snapshot/reload) go to the endpoint believed to
//    be the primary. A NOT_PRIMARY rejection carries the real primary's
//    "host:port"; the client follows the redirect (adding the endpoint if
//    it was not configured) a bounded number of times.
//
// Like Client/RetryingClient, NOT thread-safe.
#ifndef KSPIN_SERVER_FAILOVER_H_
#define KSPIN_SERVER_FAILOVER_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "server/replication.h"
#include "server/retry.h"

namespace kspin::server {

class FailoverClient {
 public:
  /// `endpoints` must be non-empty; the first is the initial guess for
  /// both reads and writes until health probes say otherwise.
  explicit FailoverClient(std::vector<Endpoint> endpoints,
                          RetryPolicy policy = {});

  /// Forwards to every per-endpoint RetryingClient — test hook.
  void SetSleepFunction(RetryingClient::SleepFn sleep_fn);

  /// Endpoints currently known (configured + learned from redirects).
  const std::vector<Endpoint>& Endpoints() const { return endpoints_; }
  /// Index (into Endpoints()) that served the last successful operation.
  std::size_t LastEndpoint() const { return last_endpoint_; }

  /// Re-learns roles and epochs from a fresh health-probe round now.
  /// Writes also re-probe automatically when the last round is older than
  /// the probe interval, or after a STALE_EPOCH / redirect-exhausted
  /// rejection — so a promotion re-routes writes within one interval even
  /// when the old primary never answers NOT_PRIMARY.
  void RefreshRoles();
  /// Probe staleness bound for write routing (default 1000 ms).
  void SetProbeIntervalMs(std::uint32_t ms) { probe_interval_ms_ = ms; }
  /// Highest primary epoch observed across health probes and write acks;
  /// stamped into every mutation as its fence epoch.
  std::uint64_t ObservedEpoch() const { return fence_epoch_; }
  /// Seeds the fence epoch from outside (e.g. a CLI flag or a value
  /// persisted by a previous process); only ever raises it.
  void SetFenceEpoch(std::uint64_t epoch) { ObserveEpoch(epoch); }

  /// Trace id stamped on the most recent logical operation (0 before the
  /// first one). Every retry, endpoint failover, NOT_PRIMARY redirect,
  /// and RETRY_AFTER hop of that operation carried this same id, so one
  /// grep over server diag dumps reconstructs the whole journey.
  std::uint64_t LastTraceId() const { return trace_.trace_id; }

  // Reads — replica-preferred, endpoint failover on transport errors.
  // Throws ClientError only when every endpoint failed.
  Client::Reply Ping();
  Client::StatsReply Stats();
  Client::MetricsReply Metrics();
  Client::HealthReply Health();
  Client::SearchReply Search(std::string_view query, VertexId from,
                             std::uint32_t k, bool ranked = false,
                             std::uint32_t deadline_ms = 0);

  // Writes — primary-routed, NOT_PRIMARY redirects followed (at most
  // kMaxRedirects hops). A still-kNotPrimary reply after that surfaces
  // to the caller.
  Client::AddPoiReply AddPoi(std::string_view name, VertexId vertex,
                             std::span<const std::string> keywords);
  Client::Reply ClosePoi(ObjectId id);
  Client::Reply TagPoi(ObjectId id, std::string_view keyword);
  Client::Reply UntagPoi(ObjectId id, std::string_view keyword);
  Client::SnapshotReply Snapshot();
  Client::SnapshotReply Reload();

  // Keyed mutations (v3). `idempotency_key` 0 means "generate one": the
  // same key then rides across every retry and redirect of this call, so
  // the operation applies at most once even through a failover.
  Client::MutateReply InsertDoc(VertexId vertex, std::string_view name,
                                std::span<const std::string> keywords,
                                std::uint64_t idempotency_key = 0);
  Client::MutateReply DeleteDoc(ObjectId id,
                                std::uint64_t idempotency_key = 0);
  Client::MutateReply UpdateDoc(ObjectId id,
                                std::span<const std::string> add_keywords,
                                std::span<const std::string> remove_keywords,
                                std::uint64_t idempotency_key = 0);

  static constexpr std::size_t kMaxRedirects = 2;

 private:
  /// Health-probes endpoints once to learn roles: read order starts at a
  /// healthy replica, writes at the endpoint claiming primary — among
  /// concurrent primary claimants the highest epoch wins. Best effort —
  /// unreachable endpoints just keep their defaults.
  void ProbeRoles();
  std::size_t FindOrAddEndpoint(const Endpoint& endpoint);
  /// Fresh nonzero idempotency key (xorshift stream seeded per client).
  std::uint64_t NextIdempotencyKey();
  /// Latches the max epoch seen and fences every per-endpoint client
  /// with it.
  void ObserveEpoch(std::uint64_t epoch);
  /// Mints a fresh trace context for one logical operation and stamps it
  /// onto every per-endpoint client, so the id survives failover hops.
  void BeginTrace();

  template <typename Op>
  auto ExecuteRead(Op&& op) -> decltype(op(std::declval<RetryingClient&>()));
  template <typename Op>
  auto ExecuteWrite(Op&& op) -> decltype(op(std::declval<RetryingClient&>()));

  std::vector<Endpoint> endpoints_;
  // unique_ptr: RetryingClient is not movable (owns a Client with fd).
  std::vector<std::unique_ptr<RetryingClient>> clients_;
  RetryPolicy policy_;
  RetryingClient::SleepFn sleep_;
  std::size_t read_index_ = 0;     ///< Sticky read endpoint.
  std::size_t primary_index_ = 0;  ///< Believed primary.
  std::size_t last_endpoint_ = 0;
  bool probed_ = false;
  std::uint64_t key_state_ = 0;    ///< Idempotency-key xorshift state.
  std::uint64_t trace_state_ = 0;  ///< Trace-id xorshift state.
  TraceContext trace_;             ///< Context of the current operation.
  std::uint64_t fence_epoch_ = 0;  ///< Max primary epoch ever observed.
  std::uint32_t probe_interval_ms_ = 1000;
  std::chrono::steady_clock::time_point last_probe_{};
};

template <typename Op>
auto FailoverClient::ExecuteRead(Op&& op)
    -> decltype(op(std::declval<RetryingClient&>())) {
  if (!probed_) ProbeRoles();
  // One trace id per logical read: every endpoint tried below (and every
  // retry inside each RetryingClient) carries the same id.
  BeginTrace();
  // Try every endpoint once, starting from the sticky one. Each attempt
  // already carries the per-endpoint retry policy, so a ClientError here
  // means "this endpoint is down" — move on. An in-band OVERLOADED reply
  // means "up but shedding": try the next replica too, but keep the
  // sticky index where it was — a shedding node is healthy and will
  // take reads again once its queue drains.
  using ReplyT = decltype(op(std::declval<RetryingClient&>()));
  std::optional<ReplyT> overloaded;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    const std::size_t index = (read_index_ + i) % clients_.size();
    try {
      auto reply = op(*clients_[index]);
      if (reply.status == StatusCode::kOverloaded) {
        if (!overloaded) overloaded = std::move(reply);
        continue;
      }
      read_index_ = index;
      last_endpoint_ = index;
      return reply;
    } catch (const ClientError&) {
      if (i + 1 == clients_.size() && !overloaded) throw;
    }
  }
  // Every endpoint was down or shedding; surface the first shed reply
  // (it carries the strongest retry-after signal for the caller).
  if (overloaded) return std::move(*overloaded);
  throw ClientError("no endpoints");  // Unreachable; clients_ non-empty.
}

template <typename Op>
auto FailoverClient::ExecuteWrite(Op&& op)
    -> decltype(op(std::declval<RetryingClient&>())) {
  // Routing intel goes stale the moment a replica is promoted; re-probe
  // when the last round is old so writes re-route within one interval.
  if (!probed_ ||
      std::chrono::steady_clock::now() - last_probe_ >
          std::chrono::milliseconds(probe_interval_ms_)) {
    ProbeRoles();
  }
  // One trace id per logical write: NOT_PRIMARY redirects and the
  // post-STALE_EPOCH re-probe below all ride under the same id.
  BeginTrace();
  bool reprobed = false;
  for (std::size_t redirects = 0;; ++redirects) {
    auto reply = op(*clients_[primary_index_]);
    const bool stale = reply.status == StatusCode::kStaleEpoch;
    const bool exhausted =
        reply.status == StatusCode::kNotPrimary && redirects >= kMaxRedirects;
    if (stale || exhausted) {
      // Redirects cannot resolve these (a fenced ex-primary redirects
      // nowhere useful); a fresh probe round can — the newly promoted
      // primary claims the highest epoch in HEALTH.
      if (!reprobed) {
        reprobed = true;
        const std::size_t before = primary_index_;
        ProbeRoles();
        if (primary_index_ != before) continue;
      }
      last_endpoint_ = primary_index_;
      return reply;
    }
    if (reply.status != StatusCode::kNotPrimary) {
      if constexpr (requires { reply.primary_epoch; }) {
        // Acks carry the primary's epoch; remember the newest so future
        // writes fence anything older.
        if (reply.ok()) ObserveEpoch(reply.primary_epoch);
      }
      last_endpoint_ = primary_index_;
      return reply;
    }
    // The replica told us who the primary is; follow the redirect.
    const auto redirect = ParseEndpoint(reply.error);
    if (!redirect) return reply;
    const std::size_t target = FindOrAddEndpoint(*redirect);
    if (target == primary_index_) return reply;  // Would loop; give up.
    primary_index_ = target;
  }
}

}  // namespace kspin::server

#endif  // KSPIN_SERVER_FAILOVER_H_
