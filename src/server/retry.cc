#include "server/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace kspin::server {

RetryingClient::RetryingClient(std::string host, std::uint16_t port,
                               RetryPolicy policy)
    : host_(std::move(host)),
      port_(port),
      policy_(policy),
      sleep_([](std::uint32_t ms) {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      }),
      rng_state_(policy.jitter_seed | 1) {}

std::uint64_t RetryingClient::NextRandom() {
  // xorshift64* — deterministic, seedable, good enough for jitter.
  std::uint64_t x = rng_state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  rng_state_ = x;
  return x * 0x2545f4914f6cdd1dull;
}

std::uint32_t RetryingClient::BackoffMs(std::uint32_t attempt) {
  double base = static_cast<double>(policy_.initial_backoff_ms) *
                std::pow(policy_.multiplier, static_cast<double>(attempt));
  base = std::min(base, static_cast<double>(policy_.max_backoff_ms));
  const auto cap = static_cast<std::uint64_t>(std::max(base, 1.0));
  // Uniform in [cap/2, cap]: half deterministic floor, half jitter, so
  // synchronized clients de-correlate without ever sleeping too briefly.
  const std::uint64_t half = cap / 2;
  return static_cast<std::uint32_t>(half + NextRandom() % (cap - half + 1));
}

Client::Reply RetryingClient::Ping() {
  return Execute(true, [this] { return client_.Ping(); });
}

Client::StatsReply RetryingClient::Stats() {
  return Execute(true, [this] { return client_.Stats(); });
}

Client::MetricsReply RetryingClient::Metrics() {
  return Execute(true, [this] { return client_.Metrics(); });
}

Client::HealthReply RetryingClient::Health() {
  return Execute(true, [this] { return client_.Health(); });
}

Client::MetricsReply RetryingClient::DumpDiag() {
  return Execute(true, [this] { return client_.DumpDiag(); });
}

Client::FetchSnapshotReply RetryingClient::FetchSnapshotChunk(
    std::uint64_t sequence, std::uint64_t offset, std::uint32_t max_bytes) {
  return Execute(true, [&] {
    // Chunks are pure range reads — idempotent, safe to re-request.
    return client_.FetchSnapshotChunk(sequence, offset, max_bytes);
  });
}

std::uint32_t RetryingClient::ClampedDeadlineMs(std::uint32_t requested) const {
  if (remaining_budget_ms_ == 0) return requested;  // No budget configured.
  if (requested == 0) return remaining_budget_ms_;
  return std::min(requested, remaining_budget_ms_);
}

Client::SearchReply RetryingClient::Search(std::string_view query,
                                           VertexId from, std::uint32_t k,
                                           bool ranked,
                                           std::uint32_t deadline_ms) {
  return Execute(true, [&] {
    return client_.Search(query, from, k, ranked,
                          ClampedDeadlineMs(deadline_ms));
  });
}

Client::SnapshotReply RetryingClient::Snapshot() {
  return Execute(true, [this] { return client_.Snapshot(); });
}

Client::SnapshotReply RetryingClient::Reload() {
  return Execute(true, [this] { return client_.Reload(); });
}

Client::AddPoiReply RetryingClient::AddPoi(
    std::string_view name, VertexId vertex,
    std::span<const std::string> keywords) {
  return Execute(false, [&] { return client_.AddPoi(name, vertex, keywords); });
}

Client::Reply RetryingClient::ClosePoi(ObjectId id) {
  return Execute(false, [&] { return client_.ClosePoi(id); });
}

Client::Reply RetryingClient::TagPoi(ObjectId id, std::string_view keyword) {
  return Execute(false, [&] { return client_.TagPoi(id, keyword); });
}

Client::Reply RetryingClient::UntagPoi(ObjectId id,
                                       std::string_view keyword) {
  return Execute(false, [&] { return client_.UntagPoi(id, keyword); });
}

Client::MutateReply RetryingClient::InsertDoc(
    std::uint64_t idempotency_key, VertexId vertex, std::string_view name,
    std::span<const std::string> keywords) {
  return Execute(idempotency_key != 0, [&] {
    return client_.InsertDoc(idempotency_key, vertex, name, keywords);
  });
}

Client::MutateReply RetryingClient::DeleteDoc(std::uint64_t idempotency_key,
                                              ObjectId id) {
  return Execute(idempotency_key != 0,
                 [&] { return client_.DeleteDoc(idempotency_key, id); });
}

Client::MutateReply RetryingClient::UpdateDoc(
    std::uint64_t idempotency_key, ObjectId id,
    std::span<const std::string> add_keywords,
    std::span<const std::string> remove_keywords) {
  return Execute(idempotency_key != 0, [&] {
    return client_.UpdateDoc(idempotency_key, id, add_keywords,
                             remove_keywords);
  });
}

}  // namespace kspin::server
