#include "server/failover.h"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace kspin::server {

FailoverClient::FailoverClient(std::vector<Endpoint> endpoints,
                               RetryPolicy policy)
    : endpoints_(std::move(endpoints)), policy_(policy) {
  if (endpoints_.empty()) {
    throw std::invalid_argument("FailoverClient needs at least one endpoint");
  }
  // Seed the idempotency-key stream so two client processes started at
  // different instants do not collide (keys only need to be unique within
  // the server's dedup window, not cryptographically random).
  key_state_ = policy_.jitter_seed ^
               static_cast<std::uint64_t>(
                   std::chrono::steady_clock::now().time_since_epoch()
                       .count()) ^
               reinterpret_cast<std::uintptr_t>(this);
  // Independent stream for trace ids (same uniqueness bar: distinct
  // within the window an operator would grep diag dumps over).
  trace_state_ = key_state_ * 0x9e3779b97f4a7c15ull + 1;
  clients_.reserve(endpoints_.size());
  for (const Endpoint& endpoint : endpoints_) {
    clients_.push_back(std::make_unique<RetryingClient>(
        endpoint.host, endpoint.port, policy_));
  }
}

void FailoverClient::SetSleepFunction(RetryingClient::SleepFn sleep_fn) {
  sleep_ = sleep_fn;
  for (const auto& client : clients_) client->SetSleepFunction(sleep_fn);
}

void FailoverClient::RefreshRoles() { ProbeRoles(); }

void FailoverClient::ObserveEpoch(std::uint64_t epoch) {
  if (epoch <= fence_epoch_) return;
  fence_epoch_ = epoch;
  for (const auto& client : clients_) client->SetFenceEpoch(epoch);
}

void FailoverClient::BeginTrace() {
  // xorshift64; skip 0 (0 means "no trace" on the wire).
  do {
    trace_state_ ^= trace_state_ << 13;
    trace_state_ ^= trace_state_ >> 7;
    trace_state_ ^= trace_state_ << 17;
  } while (trace_state_ == 0);
  trace_.trace_id = trace_state_;
  trace_.parent_span_id = 0;
  trace_.flags = kTraceFlagSampled;
  for (const auto& client : clients_) client->SetTraceContext(trace_);
}

void FailoverClient::ProbeRoles() {
  probed_ = true;
  last_probe_ = std::chrono::steady_clock::now();
  if (clients_.size() < 2) return;  // Single endpoint: nothing to learn.
  // One non-retried health probe per endpoint; unreachable ones keep
  // their defaults and reads simply fail over past them.
  RetryPolicy probe_policy = policy_;
  probe_policy.max_attempts = 1;
  bool found_replica = false;
  bool found_primary = false;
  std::uint64_t best_primary_epoch = 0;
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    RetryingClient probe(endpoints_[i].host, endpoints_[i].port,
                         probe_policy);
    if (sleep_) probe.SetSleepFunction(sleep_);
    try {
      const auto reply = probe.Health();
      if (!reply.ok()) continue;
      ObserveEpoch(reply.health.primary_epoch);
      if (reply.health.role == 1 && !found_replica) {
        read_index_ = i;
        found_replica = true;
      }
      if (reply.health.role == 0) {
        // During a failover two endpoints may both claim primary (the
        // fenced ex-primary and the freshly promoted replica); the
        // highest epoch is the live reign.
        if (!found_primary ||
            reply.health.primary_epoch > best_primary_epoch) {
          primary_index_ = i;
          best_primary_epoch = reply.health.primary_epoch;
          found_primary = true;
        }
      }
    } catch (const ClientError&) {
      // Down or unreachable; skip.
    }
  }
}

std::size_t FailoverClient::FindOrAddEndpoint(const Endpoint& endpoint) {
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (endpoints_[i].host == endpoint.host &&
        endpoints_[i].port == endpoint.port) {
      return i;
    }
  }
  endpoints_.push_back(endpoint);
  clients_.push_back(std::make_unique<RetryingClient>(
      endpoint.host, endpoint.port, policy_));
  if (sleep_) clients_.back()->SetSleepFunction(sleep_);
  clients_.back()->SetFenceEpoch(fence_epoch_);
  // Redirect targets inherit the in-flight operation's trace context so
  // the hop shows up under the same trace_id on the new primary.
  clients_.back()->SetTraceContext(trace_);
  return endpoints_.size() - 1;
}

Client::Reply FailoverClient::Ping() {
  return ExecuteRead([](RetryingClient& c) { return c.Ping(); });
}

Client::StatsReply FailoverClient::Stats() {
  return ExecuteRead([](RetryingClient& c) { return c.Stats(); });
}

Client::MetricsReply FailoverClient::Metrics() {
  return ExecuteRead([](RetryingClient& c) { return c.Metrics(); });
}

Client::HealthReply FailoverClient::Health() {
  auto reply = ExecuteRead([](RetryingClient& c) { return c.Health(); });
  if (reply.ok()) ObserveEpoch(reply.health.primary_epoch);
  return reply;
}

Client::SearchReply FailoverClient::Search(std::string_view query,
                                           VertexId from, std::uint32_t k,
                                           bool ranked,
                                           std::uint32_t deadline_ms) {
  return ExecuteRead([&](RetryingClient& c) {
    return c.Search(query, from, k, ranked, deadline_ms);
  });
}

Client::AddPoiReply FailoverClient::AddPoi(
    std::string_view name, VertexId vertex,
    std::span<const std::string> keywords) {
  return ExecuteWrite(
      [&](RetryingClient& c) { return c.AddPoi(name, vertex, keywords); });
}

Client::Reply FailoverClient::ClosePoi(ObjectId id) {
  return ExecuteWrite([&](RetryingClient& c) { return c.ClosePoi(id); });
}

Client::Reply FailoverClient::TagPoi(ObjectId id, std::string_view keyword) {
  return ExecuteWrite(
      [&](RetryingClient& c) { return c.TagPoi(id, keyword); });
}

std::uint64_t FailoverClient::NextIdempotencyKey() {
  // xorshift64; skip 0 (0 means "no key" on the wire).
  do {
    key_state_ ^= key_state_ << 13;
    key_state_ ^= key_state_ >> 7;
    key_state_ ^= key_state_ << 17;
  } while (key_state_ == 0);
  return key_state_;
}

Client::MutateReply FailoverClient::InsertDoc(
    VertexId vertex, std::string_view name,
    std::span<const std::string> keywords, std::uint64_t idempotency_key) {
  const std::uint64_t key =
      idempotency_key != 0 ? idempotency_key : NextIdempotencyKey();
  return ExecuteWrite([&](RetryingClient& c) {
    return c.InsertDoc(key, vertex, name, keywords);
  });
}

Client::MutateReply FailoverClient::DeleteDoc(ObjectId id,
                                              std::uint64_t idempotency_key) {
  const std::uint64_t key =
      idempotency_key != 0 ? idempotency_key : NextIdempotencyKey();
  return ExecuteWrite(
      [&](RetryingClient& c) { return c.DeleteDoc(key, id); });
}

Client::MutateReply FailoverClient::UpdateDoc(
    ObjectId id, std::span<const std::string> add_keywords,
    std::span<const std::string> remove_keywords,
    std::uint64_t idempotency_key) {
  const std::uint64_t key =
      idempotency_key != 0 ? idempotency_key : NextIdempotencyKey();
  return ExecuteWrite([&](RetryingClient& c) {
    return c.UpdateDoc(key, id, add_keywords, remove_keywords);
  });
}

Client::Reply FailoverClient::UntagPoi(ObjectId id,
                                       std::string_view keyword) {
  return ExecuteWrite(
      [&](RetryingClient& c) { return c.UntagPoi(id, keyword); });
}

Client::SnapshotReply FailoverClient::Snapshot() {
  return ExecuteWrite([](RetryingClient& c) { return c.Snapshot(); });
}

Client::SnapshotReply FailoverClient::Reload() {
  return ExecuteWrite([](RetryingClient& c) { return c.Reload(); });
}

}  // namespace kspin::server
