// Durable append-only operation log for live mutations (docs/persistence.md,
// "The operation log").
//
// The log is a directory of segment files named oplog-<first-seq>.log. Each
// segment starts with a fixed header and holds consecutive records:
//
//   segment header : magic "KSOPLOG1" (8) | u64 first_sequence
//   record         : u32 payload_size | u32 crc32c(sequence_le || payload)
//                    | u64 sequence | payload bytes
//
// Integers are little-endian. Sequences are dense and monotonic across
// segments: record N+1 always carries sequence(record N) + 1, and a
// segment's first record carries the header's first_sequence. Replay
// validates size bounds, CRC, and sequence continuity for every record and
// stops cleanly at the first violation — a torn tail from a crash (or bit
// rot anywhere) truncates the log to its longest valid prefix instead of
// surfacing garbage.
//
// Durability discipline:
//  - Append writes one record with a single write(2); Sync() fsyncs the
//    segment. Sync is group-committed: concurrent writers that appended
//    before an in-flight fsync are covered by it and do not issue another
//    (the fsync_batches counter over the appends counter is the batching
//    ratio).
//  - Rotation seals the active segment (final fsync) and creates the next
//    one with the same temp-write/fsync/rename/dir-fsync discipline as
//    io::WriteFileAtomically, so a crash mid-rotation leaves either the old
//    tail or the old tail plus one complete empty successor.
//  - TruncateThrough deletes sealed segments whose records are all covered
//    by a snapshot; the active segment is never deleted, so recent history
//    stays available for replica tailing.
#ifndef KSPIN_SERVER_OPLOG_H_
#define KSPIN_SERVER_OPLOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace kspin::server {

/// Phases of the append/sync/rotate cycle where tests can simulate a
/// crash. The hook returns false to "crash": the call stops immediately,
/// leaving the files exactly as a real kill -9 at that instant would.
enum class OplogPhase {
  kAfterRecordWrite,   ///< Record written to the segment, not yet synced.
  kAfterSync,          ///< fsync completed.
  kBeforeRotate,       ///< Active segment full; rotation about to start.
  kAfterRotateTemp,    ///< Successor temp file written + synced, not renamed.
  kAfterRotateRename,  ///< Successor renamed into place, dir not yet synced.
};

struct OplogHooks {
  /// Crash simulation; return false to stop at that phase.
  std::function<bool(OplogPhase)> on_phase;
};

struct OplogOptions {
  /// Directory holding the segment files. Empty disables the log: Append
  /// assigns sequences in memory and Sync is a no-op (no durability).
  std::string dir;
  /// Rotate the active segment once it exceeds this many bytes.
  std::uint64_t segment_bytes = 4u << 20;
  /// Fault injection (tests only).
  OplogHooks hooks;
};

/// One decoded log record.
struct OplogRecord {
  std::uint64_t sequence = 0;
  std::vector<std::uint8_t> payload;
};

/// Outcome of replaying a log directory.
struct OplogReplayResult {
  /// Records delivered to the callback (sequence > from_sequence).
  std::uint64_t records_applied = 0;
  /// Highest valid sequence seen (0 when the log is empty).
  std::uint64_t last_sequence = 0;
  /// True when replay stopped at a torn or corrupt record rather than the
  /// genuine end of the log; everything before it was still delivered.
  bool stopped_at_corruption = false;
  /// Human-readable reason when stopped_at_corruption is set.
  std::string corruption_detail;
};

/// Scans every segment of `dir` in sequence order and invokes `apply` for
/// each valid record with sequence > from_sequence. Records at or below
/// from_sequence are validated but skipped (they are covered by the
/// snapshot being replayed on top of). Stops at the first invalid record.
/// A missing directory is an empty log.
OplogReplayResult ReplayOplog(
    const std::string& dir, std::uint64_t from_sequence,
    const std::function<void(const OplogRecord&)>& apply);

/// Segment files in `dir` with their parsed first sequences, oldest first.
/// Temp files and foreign names are ignored; missing directory = empty.
std::vector<std::pair<std::uint64_t, std::string>> FindOplogSegments(
    const std::string& dir);

/// Segment file name for a first sequence: "oplog-000042.log".
std::string OplogSegmentFileName(std::uint64_t first_sequence);

/// The writer side of the log. Thread-safe: Append and Sync may be called
/// from any worker; a mutex serializes appends and Sync group-commits.
class Oplog {
 public:
  explicit Oplog(OplogOptions options);
  ~Oplog();

  Oplog(const Oplog&) = delete;
  Oplog& operator=(const Oplog&) = delete;

  /// Opens the log for appending: scans existing segments, seats the
  /// writer after the last valid record (a torn tail is truncated away),
  /// and seeds the sequence counter at last_sequence + 1 unless
  /// `next_sequence` is larger (a restored snapshot may be ahead of a
  /// truncated log). Returns false on I/O failure or simulated crash.
  bool Open(std::uint64_t next_sequence = 1);

  /// Appends one record and returns its assigned sequence (0 on failure
  /// or simulated crash). The record is written but NOT yet durable —
  /// call Sync() before acknowledging. With an explicit `sequence` (a
  /// replica applying records shipped from its primary) the counter jumps
  /// to it; the sequence must exceed LastSequence().
  std::uint64_t Append(std::span<const std::uint8_t> payload,
                       std::uint64_t sequence = 0);

  /// Makes every record appended so far durable. Group-committed: if a
  /// concurrent Sync already covered this caller's appends, it returns
  /// without issuing another fsync. Returns false on failure/crash.
  bool Sync();

  /// Discards every segment and restarts the log at `next_sequence` — a
  /// replica that just installed a snapshot jumps its applied position
  /// past a gap, which a dense log cannot represent. Returns false on
  /// I/O failure.
  bool Reset(std::uint64_t next_sequence);

  /// Deletes sealed segments whose records all have sequence <= through.
  /// The active segment always survives. Returns segments deleted.
  std::size_t TruncateThrough(std::uint64_t sequence);

  /// Copies every record with sequence >= first_quarantined into
  /// `<dir>/quarantine/divergent-<first_quarantined>.log` (standard
  /// segment format, readable by ReplayOplog / any oplog tooling) so a
  /// demoted ex-primary's divergent tail survives for operators after the
  /// snapshot-install Reset() discards the live log. Idempotent: an
  /// existing quarantine file for the same boundary is left untouched.
  /// Returns the number of records preserved (0 when none exist past the
  /// boundary or the log is disabled); sets `*out_path` (if non-null) to
  /// the quarantine file when records were preserved. Returns
  /// std::size_t(-1) on I/O failure.
  std::size_t QuarantineTail(std::uint64_t first_quarantined,
                             std::string* out_path = nullptr);

  /// Reads records with sequence > from_sequence into `out` (appended).
  /// `max_bytes` budgets payload bytes plus a fixed per-record overhead
  /// matching the FETCH_OPLOG wire envelope, so a caller that passes a
  /// frame-sized budget gets a chunk that encodes within one frame; at
  /// least one record is always returned when any is available. Sets
  /// `*truncated` when from_sequence predates the oldest retained record
  /// (the caller must fall back to a snapshot transfer). Safe
  /// concurrently with appends: a partially visible tail record fails
  /// validation and simply ends the batch.
  bool ReadRange(std::uint64_t from_sequence, std::uint64_t max_bytes,
                 std::vector<OplogRecord>* out, bool* truncated) const;

  /// Highest sequence ever assigned (durable or not); 0 = none.
  std::uint64_t LastSequence() const;
  /// Smallest sequence still retained on disk; 0 when the log is empty.
  std::uint64_t OldestSequence() const;
  /// Highest sequence covered by a completed fsync.
  std::uint64_t DurableSequence() const;

  bool Enabled() const { return !options_.dir.empty(); }
  const std::string& Dir() const { return options_.dir; }

  /// Counters for ServerMetrics (monotonic; readable from any thread).
  std::uint64_t Appends() const {
    return appends_.load(std::memory_order_relaxed);
  }
  std::uint64_t FsyncBatches() const {
    return fsync_batches_.load(std::memory_order_relaxed);
  }

  void Close();

 private:
  bool Crash(OplogPhase phase);
  bool CreateSegmentLocked(std::uint64_t first_sequence);
  bool OpenSegmentForAppend(const std::string& path, std::uint64_t size);
  bool RotateLocked();

  OplogOptions options_;
  mutable std::mutex mutex_;
  int fd_ = -1;
  std::string active_path_;
  std::uint64_t active_first_sequence_ = 0;
  std::uint64_t active_bytes_ = 0;
  std::uint64_t last_sequence_ = 0;
  std::uint64_t oldest_sequence_ = 0;
  std::uint64_t durable_sequence_ = 0;   ///< Covered by a finished fsync.
  std::uint64_t appended_sequence_ = 0;  ///< Written, possibly unsynced.
  bool crashed_ = false;  ///< A simulated crash latches the writer dead.
  std::atomic<std::uint64_t> appends_{0};
  std::atomic<std::uint64_t> fsync_batches_{0};
};

}  // namespace kspin::server

#endif  // KSPIN_SERVER_OPLOG_H_
