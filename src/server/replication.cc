#include "server/replication.h"

#include <charconv>
#include <chrono>
#include <cstdio>

namespace kspin::server {
namespace {

std::uint64_t SteadyNowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string Endpoint::ToString() const {
  return host + ":" + std::to_string(port);
}

std::optional<Endpoint> ParseEndpoint(std::string_view spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    return std::nullopt;
  }
  const std::string_view port_str = spec.substr(colon + 1);
  std::uint32_t port = 0;
  const auto [ptr, ec] =
      std::from_chars(port_str.data(), port_str.data() + port_str.size(),
                      port);
  if (ec != std::errc{} || ptr != port_str.data() + port_str.size() ||
      port == 0 || port > 65535) {
    return std::nullopt;
  }
  Endpoint endpoint;
  endpoint.host = std::string(spec.substr(0, colon));
  endpoint.port = static_cast<std::uint16_t>(port);
  return endpoint;
}

std::string_view RoleName(ServerRole role) {
  return role == ServerRole::kPrimary ? "primary" : "replica";
}

bool FetchSnapshotBytes(Client& client, std::uint64_t sequence,
                        std::uint32_t chunk_bytes,
                        std::uint64_t* out_sequence, std::string* out_bytes,
                        std::string* error) {
  std::uint64_t pinned = sequence;
  std::uint64_t total = 0;
  std::uint64_t offset = 0;
  std::string bytes;
  for (;;) {
    const auto reply = client.FetchSnapshotChunk(pinned, offset, chunk_bytes);
    if (!reply.ok()) {
      *error = std::string(StatusName(reply.status)) + ": " + reply.error;
      return false;
    }
    const SnapshotChunk& chunk = reply.chunk;
    if (offset == 0) {
      pinned = chunk.sequence;
      total = chunk.total_size;
      bytes.reserve(static_cast<std::size_t>(total));
    } else if (chunk.sequence != pinned || chunk.total_size != total) {
      *error = "snapshot changed mid-transfer (sequence " +
               std::to_string(pinned) + " -> " +
               std::to_string(chunk.sequence) + ")";
      return false;
    }
    if (chunk.offset != offset) {
      *error = "chunk offset mismatch: asked " + std::to_string(offset) +
               ", got " + std::to_string(chunk.offset);
      return false;
    }
    offset += chunk.bytes.size();
    bytes += chunk.bytes;
    if (offset >= total) break;
    if (chunk.bytes.empty()) {
      *error = "empty chunk before end of snapshot";
      return false;
    }
  }
  if (bytes.size() != total) {
    *error = "snapshot size mismatch: expected " + std::to_string(total) +
             " bytes, assembled " + std::to_string(bytes.size());
    return false;
  }
  *out_sequence = pinned;
  *out_bytes = std::move(bytes);
  return true;
}

Replicator::Replicator(ReplicationOptions options, ServerMetrics& metrics,
                       Hooks hooks)
    : options_(std::move(options)),
      metrics_(metrics),
      hooks_(std::move(hooks)) {
  trace_state_ = static_cast<std::uint64_t>(
                     std::chrono::steady_clock::now().time_since_epoch()
                         .count()) ^
                 reinterpret_cast<std::uintptr_t>(this) ^
                 0x9e3779b97f4a7c15ull;
}

void Replicator::NoteSource(int source) {
  if (last_source_ == source) return;
  last_source_ = source;
  if (hooks_.source_switched) hooks_.source_switched(source == 1);
}

Replicator::~Replicator() { Stop(); }

void Replicator::Start() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void Replicator::Stop() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Replicator::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> guard(mutex_);
      cv_.wait_for(guard,
                   std::chrono::milliseconds(options_.poll_interval_ms),
                   [this] { return stop_; });
      if (stop_) return;
    }
    PollOnce();
  }
}

Replicator::TailOutcome Replicator::TailOplog() {
  // Cap the batches per poll so one cycle cannot monopolize the thread
  // against a faster writer; the next poll simply continues tailing.
  constexpr int kMaxBatchesPerPoll = 64;
  std::uint64_t applied_total = 0;
  std::uint64_t behind = 0;
  for (int i = 0; i < kMaxBatchesPerPoll; ++i) {
    const std::uint64_t from = hooks_.local_mutation_sequence();
    const std::uint64_t local_epoch =
        hooks_.local_epoch ? hooks_.local_epoch() : 0;
    const auto reply =
        client_.FetchOplog(from, options_.fetch_chunk_bytes, local_epoch);
    if (!reply.ok()) {
      // kUnsupported: no op log over there (old server or no --oplog-dir).
      return TailOutcome::kFallback;
    }
    const OplogChunk& chunk = reply.chunk;
    if (chunk.primary_epoch < local_epoch) {
      // A fenced ex-primary still running its old reign. Nothing it
      // serves — records or snapshots — may be trusted anymore.
      std::fprintf(stderr,
                   "replication: primary %s is stale (epoch %llu < local "
                   "%llu); refusing to tail it\n",
                   options_.primary.ToString().c_str(),
                   static_cast<unsigned long long>(chunk.primary_epoch),
                   static_cast<unsigned long long>(local_epoch));
      return TailOutcome::kStalePrimary;
    }
    if (chunk.primary_epoch > local_epoch &&
        chunk.epoch_boundary_sequence != 0 &&
        from >= chunk.epoch_boundary_sequence) {
      // Divergence on rejoin: our applied position reaches past the new
      // primary's epoch boundary, so our records from the boundary on
      // were never part of the new reign. Preserve them for operators,
      // then resync via the snapshot path (whose install resets the log).
      std::fprintf(stderr,
                   "replication: applied %llu reaches past epoch %llu "
                   "boundary %llu; quarantining the divergent tail and "
                   "resyncing via snapshot\n",
                   static_cast<unsigned long long>(from),
                   static_cast<unsigned long long>(chunk.primary_epoch),
                   static_cast<unsigned long long>(
                       chunk.epoch_boundary_sequence));
      if (hooks_.quarantine_divergent) {
        hooks_.quarantine_divergent(chunk.epoch_boundary_sequence);
      }
      if (hooks_.observe_epoch) {
        hooks_.observe_epoch(chunk.primary_epoch,
                             chunk.epoch_boundary_sequence);
      }
      return TailOutcome::kFallback;
    }
    if (chunk.truncated != 0) {
      std::fprintf(stderr,
                   "replication: primary log starts at %llu, need %llu; "
                   "falling back to snapshot transfer\n",
                   static_cast<unsigned long long>(chunk.oldest_sequence),
                   static_cast<unsigned long long>(from + 1));
      return TailOutcome::kFallback;
    }
    if (chunk.records.empty()) {
      if (chunk.last_sequence < from) {
        // The primary is BEHIND us (restarted from an older snapshot, or
        // a different primary entirely): self-heal via snapshot.
        return TailOutcome::kFallback;
      }
      behind = chunk.last_sequence - from;
      break;  // In sync.
    }
    std::string error;
    if (!hooks_.apply_mutations(chunk.records, &error)) {
      std::fprintf(stderr,
                   "replication: applying shipped records failed: %s; "
                   "falling back to snapshot transfer\n",
                   error.c_str());
      return TailOutcome::kFallback;
    }
    applied_total += chunk.records.size();
    metrics_.replication_oplog_records.fetch_add(chunk.records.size(),
                                                 std::memory_order_relaxed);
    const std::uint64_t now_at = hooks_.local_mutation_sequence();
    behind = chunk.last_sequence > now_at ? chunk.last_sequence - now_at : 0;
    if (behind == 0) break;
  }
  metrics_.replication_source.store(1, std::memory_order_relaxed);
  NoteSource(1);
  metrics_.replication_sequence_delta.store(behind,
                                            std::memory_order_relaxed);
  metrics_.replication_last_success_ms.store(SteadyNowMs(),
                                             std::memory_order_relaxed);
  return applied_total > 0 ? TailOutcome::kApplied : TailOutcome::kInSync;
}

bool Replicator::PollOnce() {
  metrics_.replication_polls.fetch_add(1, std::memory_order_relaxed);
  // One fresh trace id per poll cycle: every FETCH_OPLOG / HEALTH /
  // FETCH_SNAPSHOT request this cycle issues carries it, so the primary's
  // flight recorder groups a replica's whole catch-up pass under one id.
  do {
    trace_state_ ^= trace_state_ << 13;
    trace_state_ ^= trace_state_ >> 7;
    trace_state_ ^= trace_state_ << 17;
  } while (trace_state_ == 0);
  client_.SetTraceContext(TraceContext{trace_state_, 0, kTraceFlagSampled});
  try {
    if (!client_.Connected()) {
      client_.Connect(options_.primary.host, options_.primary.port);
    }
    // Delta path first: ship only the records we are missing. Snapshots
    // become the bootstrap / repair mechanism. Tailing only means
    // anything on top of a baseline shared with the primary — a freshly
    // booted replica with no installed snapshot may match the primary's
    // mutation sequence (both 0) while holding entirely different state,
    // so until a snapshot baseline exists the snapshot path runs.
    if (hooks_.local_mutation_sequence && hooks_.apply_mutations &&
        hooks_.local_sequence() > 0) {
      switch (TailOplog()) {
        case TailOutcome::kApplied:
          return true;
        case TailOutcome::kInSync:
          return false;
        case TailOutcome::kStalePrimary:
          metrics_.replication_poll_errors.fetch_add(
              1, std::memory_order_relaxed);
          return false;  // No snapshot fallback from a stale primary.
        case TailOutcome::kFallback:
          break;  // Snapshot transfer below.
      }
    }
    const auto health = client_.Health();
    if (!health.ok()) {
      metrics_.replication_poll_errors.fetch_add(1,
                                                 std::memory_order_relaxed);
      return false;
    }
    const std::uint64_t local_epoch =
        hooks_.local_epoch ? hooks_.local_epoch() : 0;
    if (health.health.primary_epoch < local_epoch) {
      // Stale primary (see TailOplog): its snapshots are from a dead
      // reign; wait for it to be repointed or restarted instead.
      metrics_.replication_poll_errors.fetch_add(1,
                                                 std::memory_order_relaxed);
      std::fprintf(stderr,
                   "replication: primary %s is stale (epoch %llu < local "
                   "%llu); refusing its snapshots\n",
                   options_.primary.ToString().c_str(),
                   static_cast<unsigned long long>(
                       health.health.primary_epoch),
                   static_cast<unsigned long long>(local_epoch));
      return false;
    }
    if (health.health.primary_epoch > local_epoch && hooks_.observe_epoch) {
      // Snapshot-only replicas never see the in-stream epoch record;
      // health is how they learn the reign changed.
      hooks_.observe_epoch(health.health.primary_epoch, 0);
    }
    const std::uint64_t remote = health.health.snapshot_sequence;
    const std::uint64_t local = hooks_.local_sequence();
    metrics_.replication_sequence_delta.store(
        remote > local ? remote - local : 0, std::memory_order_relaxed);
    if (remote == 0 || remote <= local) {
      // In sync (or the primary has nothing to ship yet).
      metrics_.replication_last_success_ms.store(SteadyNowMs(),
                                                 std::memory_order_relaxed);
      return false;
    }

    std::uint64_t sequence = 0;
    std::string bytes;
    std::string error;
    // Ask for "newest valid" rather than the health-reported sequence:
    // the primary may have pruned or advanced it since the health probe.
    if (!FetchSnapshotBytes(client_, 0, options_.fetch_chunk_bytes,
                            &sequence, &bytes, &error)) {
      metrics_.replication_fetches_failed.fetch_add(
          1, std::memory_order_relaxed);
      std::fprintf(stderr, "replication: fetch from %s failed: %s\n",
                   options_.primary.ToString().c_str(), error.c_str());
      return false;
    }
    metrics_.replication_fetches_ok.fetch_add(1, std::memory_order_relaxed);
    if (options_.test_mutate_fetched) options_.test_mutate_fetched(bytes);
    if (sequence <= local) return false;  // Raced with a local install.

    if (!hooks_.install(sequence, bytes, &error)) {
      metrics_.replication_installs_rejected.fetch_add(
          1, std::memory_order_relaxed);
      std::fprintf(stderr,
                   "replication: rejected snapshot %llu from %s: %s\n",
                   static_cast<unsigned long long>(sequence),
                   options_.primary.ToString().c_str(), error.c_str());
      return false;
    }
    metrics_.replication_installs_ok.fetch_add(1, std::memory_order_relaxed);
    metrics_.replication_source.store(0, std::memory_order_relaxed);
    NoteSource(0);
    metrics_.replication_last_sequence.store(sequence,
                                             std::memory_order_relaxed);
    const std::uint64_t now_local = hooks_.local_sequence();
    metrics_.replication_sequence_delta.store(
        remote > now_local ? remote - now_local : 0,
        std::memory_order_relaxed);
    metrics_.replication_last_success_ms.store(SteadyNowMs(),
                                               std::memory_order_relaxed);
    return true;
  } catch (const ClientError& e) {
    client_.Close();
    metrics_.replication_poll_errors.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "replication: poll of %s failed: %s\n",
                 options_.primary.ToString().c_str(), e.what());
    return false;
  }
}

}  // namespace kspin::server
