// ROAD-style baseline (Lee et al., TKDE'12, applied to spatial keyword
// queries as in Rocha-Junior & Norvag, EDBT'12).
//
// ROAD organizes the network as a hierarchy of regional sub-networks
// (Rnets) with border-to-border "shortcuts"; a query expands Dijkstra from
// the query vertex, and whenever the search enters an Rnet whose
// aggregated keyword information rules out relevant objects, it bypasses
// the entire region by jumping across its shortcuts. Keyword aggregation
// makes the bypass decision — and inherits the same false-positive
// problems the paper describes (an Rnet that "looks" relevant is expanded
// vertex by vertex).
//
// This implementation reuses the partition hierarchy and the exact border
// distance matrices of the shared GTree as the Rnet hierarchy / shortcut
// source (the two systems differ mainly in traversal strategy, which is
// what we reproduce; see DESIGN.md).
#ifndef KSPIN_BASELINES_ROAD_H_
#define KSPIN_BASELINES_ROAD_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "baselines/gtree_spatial_keyword.h"
#include "common/types.h"
#include "graph/graph.h"
#include "kspin/query_processor.h"
#include "routing/gtree.h"
#include "text/document_store.h"
#include "text/relevance.h"

namespace kspin {

/// Route-overlay expansion baseline.
class RoadBaseline {
 public:
  RoadBaseline(const Graph& graph, const GTree& gtree,
               const DocumentStore& store, const RelevanceModel& relevance,
               const NodeKeywordAggregates& aggregates);

  /// Top-k spatial keyword query by guided expansion (exact).
  std::vector<TopKResult> TopK(VertexId q, std::uint32_t k,
                               std::span<const KeywordId> keywords,
                               QueryStats* stats = nullptr);

  /// Boolean kNN by guided expansion (exact).
  std::vector<BkNNResult> BooleanKnn(VertexId q, std::uint32_t k,
                                     std::span<const KeywordId> keywords,
                                     BooleanOp op,
                                     QueryStats* stats = nullptr);

  /// Overlay memory: border shortcut lists (on top of the shared G-tree).
  std::size_t MemoryBytes() const;

 private:
  // Expansion core: settles vertices in distance order; `relevant(node)`
  // says whether an Rnet may contain useful objects; `visit(v, d)` returns
  // false to stop.
  void Expand(VertexId q,
              const std::function<bool(GTree::NodeId)>& relevant,
              const std::function<bool(VertexId, Distance)>& visit,
              QueryStats* stats);

  // Largest ancestor Rnet of `v` that excludes `q` and is irrelevant; or
  // kInvalidNode.
  GTree::NodeId BypassRnet(
      VertexId v, VertexId q,
      const std::function<bool(GTree::NodeId)>& relevant) const;

  const Graph& graph_;
  const GTree& gtree_;
  const DocumentStore& store_;
  const RelevanceModel& relevance_;
  const NodeKeywordAggregates& aggregates_;
  std::unordered_map<VertexId, std::vector<ObjectId>> objects_at_;
  // Shortcuts: for each tree node, exact pairwise distances between its
  // borders (extracted once from the parent matrices).
  mutable std::unordered_map<GTree::NodeId, std::vector<Distance>>
      shortcut_cache_;
};

}  // namespace kspin

#endif  // KSPIN_BASELINES_ROAD_H_
