#include "baselines/fs_fbs.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <unordered_set>

namespace kspin {

std::uint64_t FsFbs::KeywordBit(KeywordId t) {
  // SplitMix64 finalizer spreads keyword ids over the 64 signature bits.
  std::uint64_t x = t + 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return 1ull << (x & 63u);
}

std::uint64_t FsFbs::QueryMask(std::span<const KeywordId> keywords) const {
  std::uint64_t mask = 0;
  for (KeywordId t : keywords) mask |= KeywordBit(t);
  return mask;
}

FsFbs::FsFbs(const Graph& graph, const HubLabeling& labels,
             const DocumentStore& store, const InvertedIndex& inverted,
             FsFbsOptions options)
    : graph_(graph),
      labels_(labels),
      store_(store),
      inverted_(inverted),
      options_(options) {
  if (options_.block_size == 0) {
    throw std::invalid_argument("FsFbs: block_size must be >= 1");
  }
  for (ObjectId o = 0; o < store.NumSlots(); ++o) {
    if (store.IsLive(o)) objects_at_[store.ObjectVertex(o)].push_back(o);
  }

  // Invert the forward labels into per-hub backward lists.
  const std::size_t n = graph.NumVertices();
  hub_offsets_.assign(n + 1, 0);
  std::size_t total_entries = 0;
  for (VertexId v = 0; v < n; ++v) {
    for (const LabelEntry& e : labels.Label(v)) {
      ++hub_offsets_[e.hub + 1];
      ++total_entries;
    }
  }
  if (options_.max_backward_entries != 0 &&
      total_entries > options_.max_backward_entries) {
    throw std::runtime_error(
        "FsFbs: backward index would exceed the configured memory budget (" +
        std::to_string(total_entries) + " entries)");
  }
  for (std::size_t h = 0; h < n; ++h) hub_offsets_[h + 1] += hub_offsets_[h];
  backward_.resize(total_entries);
  std::vector<std::size_t> cursor(hub_offsets_.begin(),
                                  hub_offsets_.end() - 1);
  for (VertexId v = 0; v < n; ++v) {
    for (const LabelEntry& e : labels.Label(v)) {
      backward_[cursor[e.hub]++] = {v, e.distance};
    }
  }
  for (std::size_t h = 0; h < n; ++h) {
    std::sort(backward_.begin() + hub_offsets_[h],
              backward_.begin() + hub_offsets_[h + 1],
              [](const BackwardEntry& a, const BackwardEntry& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return a.vertex < b.vertex;
              });
  }

  // Block keyword signatures.
  sig_offsets_.assign(n + 1, 0);
  for (std::size_t h = 0; h < n; ++h) {
    const std::size_t entries = hub_offsets_[h + 1] - hub_offsets_[h];
    sig_offsets_[h + 1] =
        sig_offsets_[h] + (entries + options_.block_size - 1) /
                              options_.block_size;
  }
  signatures_.assign(sig_offsets_[n], 0);
  for (std::size_t h = 0; h < n; ++h) {
    for (std::size_t i = hub_offsets_[h]; i < hub_offsets_[h + 1]; ++i) {
      const std::size_t block =
          sig_offsets_[h] + (i - hub_offsets_[h]) / options_.block_size;
      auto it = objects_at_.find(backward_[i].vertex);
      if (it == objects_at_.end()) continue;
      for (ObjectId o : it->second) {
        for (const DocEntry& e : store_.Document(o)) {
          signatures_[block] |= KeywordBit(e.keyword);
        }
      }
    }
  }
}

std::vector<BkNNResult> FsFbs::BooleanKnn(
    VertexId q, std::uint32_t k, std::span<const KeywordId> keywords,
    BooleanOp op, QueryStats* stats) {
  if (k == 0 || keywords.empty()) return {};

  std::vector<KeywordId> frequent, infrequent;
  for (KeywordId t : keywords) {
    (inverted_.ListSize(t) >= options_.frequent_threshold ? frequent
                                                          : infrequent)
        .push_back(t);
  }

  if (op == BooleanOp::kConjunctive) {
    // Any infrequent keyword bounds the candidate set: scan its list.
    if (!infrequent.empty()) {
      KeywordId rarest = infrequent.front();
      for (KeywordId t : infrequent) {
        if (inverted_.ListSize(t) < inverted_.ListSize(rarest)) rarest = t;
      }
      return ScanList(q, k, keywords, rarest, op, stats);
    }
    return FrequentSearch(q, k, keywords, op, stats);
  }

  // Disjunctive: merge the frequent forward-backward search with direct
  // evaluations of the infrequent lists.
  std::vector<BkNNResult> merged;
  if (!frequent.empty()) {
    merged = FrequentSearch(q, k, frequent, op, stats);
  }
  for (KeywordId t : infrequent) {
    std::vector<BkNNResult> part = ScanList(q, k, keywords, t, op, stats);
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const BkNNResult& a, const BkNNResult& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.object < b.object;
            });
  merged.erase(std::unique(merged.begin(), merged.end(),
                           [](const BkNNResult& a, const BkNNResult& b) {
                             return a.object == b.object;
                           }),
               merged.end());
  if (merged.size() > k) merged.resize(k);
  return merged;
}

std::vector<BkNNResult> FsFbs::ScanList(VertexId q, std::uint32_t k,
                                        std::span<const KeywordId> keywords,
                                        KeywordId scan_keyword, BooleanOp op,
                                        QueryStats* stats) const {
  // "For infrequent keywords, FS-FBS simply computes network distances to
  // all vertices containing the infrequent keyword": no ordered access, no
  // early termination.
  std::vector<BkNNResult> results;
  QueryStats local;
  for (ObjectId o : inverted_.Objects(scan_keyword)) {
    if (op == BooleanOp::kConjunctive) {
      bool all = true;
      for (KeywordId t : keywords) {
        if (!store_.Contains(o, t)) {
          all = false;
          break;
        }
      }
      if (!all) continue;
    }
    const Distance d = labels_.Query(q, store_.ObjectVertex(o));
    ++local.network_distance_computations;
    ++local.candidates_extracted;
    results.push_back({o, d});
  }
  std::sort(results.begin(), results.end(),
            [](const BkNNResult& a, const BkNNResult& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.object < b.object;
            });
  if (results.size() > k) results.resize(k);
  if (stats != nullptr) {
    stats->network_distance_computations +=
        local.network_distance_computations;
    stats->candidates_extracted += local.candidates_extracted;
  }
  return results;
}

std::vector<BkNNResult> FsFbs::FrequentSearch(
    VertexId q, std::uint32_t k, std::span<const KeywordId> keywords,
    BooleanOp op, QueryStats* stats) const {
  const std::uint64_t mask = QueryMask(keywords);
  auto block_passes = [this, mask, op](std::uint64_t signature) {
    return op == BooleanOp::kDisjunctive ? (signature & mask) != 0
                                         : (signature & mask) == mask;
  };
  auto satisfies = [this, &keywords, op](ObjectId o) {
    for (KeywordId t : keywords) {
      const bool has = store_.Contains(o, t);
      if (op == BooleanOp::kDisjunctive && has) return true;
      if (op == BooleanOp::kConjunctive && !has) return false;
    }
    return op == BooleanOp::kConjunctive;
  };

  // One cursor per hub of L(q), advanced past signature-rejected blocks.
  struct Cursor {
    Distance bound;
    Distance hub_distance;
    std::uint32_t hub;
    std::size_t index;  // Into backward_.
    bool operator>(const Cursor& o) const { return bound > o.bound; }
  };
  QueryStats local;
  auto advance = [this, &block_passes, &local](std::uint32_t hub,
                                               std::size_t index)
      -> std::size_t {
    const std::size_t end = hub_offsets_[hub + 1];
    while (index < end) {
      const std::size_t local_idx = index - hub_offsets_[hub];
      if (local_idx % options_.block_size == 0) {
        const std::size_t block =
            sig_offsets_[hub] + local_idx / options_.block_size;
        if (!block_passes(signatures_[block])) {
          index += options_.block_size;  // Keyword aggregation says skip.
          continue;
        }
      }
      // Within an accepted block, emit entries one by one (object-level
      // checks weed out the bit-collision false positives).
      return index;
    }
    return end;
  };

  std::priority_queue<Cursor, std::vector<Cursor>, std::greater<Cursor>> pq;
  for (const LabelEntry& e : labels_.Label(q)) {
    const std::size_t index = advance(e.hub, hub_offsets_[e.hub]);
    if (index < hub_offsets_[e.hub + 1]) {
      pq.push({e.distance + backward_[index].distance, e.distance, e.hub,
               index});
    }
  }

  std::vector<BkNNResult> results;
  std::unordered_set<VertexId> seen;
  while (!pq.empty() && results.size() < k) {
    Cursor top = pq.top();
    pq.pop();
    const BackwardEntry& entry = backward_[top.index];
    ++local.candidates_extracted;
    // Advance this cursor.
    const std::size_t next = advance(top.hub, top.index + 1);
    if (next < hub_offsets_[top.hub + 1]) {
      pq.push({top.hub_distance + backward_[next].distance,
               top.hub_distance, top.hub, next});
    }
    if (!seen.insert(entry.vertex).second) continue;
    // First surfacing of a vertex carries its exact distance (the
    // minimizing common hub pops first).
    auto it = objects_at_.find(entry.vertex);
    if (it == objects_at_.end()) continue;
    for (ObjectId o : it->second) {
      if (satisfies(o) && results.size() < k) {
        results.push_back({o, top.bound});
      }
    }
  }
  if (stats != nullptr) {
    stats->network_distance_computations +=
        local.network_distance_computations;
    stats->candidates_extracted += local.candidates_extracted;
  }
  return results;
}

std::size_t FsFbs::MemoryBytes() const {
  return backward_.size() * sizeof(BackwardEntry) +
         hub_offsets_.size() * sizeof(std::size_t) +
         signatures_.size() * sizeof(std::uint64_t) +
         sig_offsets_.size() * sizeof(std::size_t);
}

}  // namespace kspin
