#include "baselines/road.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace kspin {

RoadBaseline::RoadBaseline(const Graph& graph, const GTree& gtree,
                           const DocumentStore& store,
                           const RelevanceModel& relevance,
                           const NodeKeywordAggregates& aggregates)
    : graph_(graph),
      gtree_(gtree),
      store_(store),
      relevance_(relevance),
      aggregates_(aggregates) {
  for (ObjectId o = 0; o < store.NumSlots(); ++o) {
    if (store.IsLive(o)) objects_at_[store.ObjectVertex(o)].push_back(o);
  }
}

GTree::NodeId RoadBaseline::BypassRnet(
    VertexId v, VertexId q,
    const std::function<bool(GTree::NodeId)>& relevant) const {
  // Walk the ancestor chain of leaf(v) upward. All three bypass conditions
  // are monotone along the chain (see header), so the last node satisfying
  // them is the maximal bypassable Rnet.
  GTree::NodeId best = GTree::kInvalidNode;
  GTree::NodeId node = gtree_.LeafOf(v);
  const GTree::NodeId q_leaf = gtree_.LeafOf(q);
  while (node != GTree::kInvalidNode) {
    if (gtree_.IsInSubtree(q_leaf, node)) break;  // Contains the query.
    if (relevant(node)) break;  // May hold useful objects: must expand.
    const auto& borders = gtree_.Borders(node);
    if (!std::binary_search(borders.begin(), borders.end(), v)) break;
    best = node;
    node = gtree_.Parent(node);
  }
  return best;
}

void RoadBaseline::Expand(
    VertexId q, const std::function<bool(GTree::NodeId)>& relevant,
    const std::function<bool(VertexId, Distance)>& visit,
    QueryStats* stats) {
  std::unordered_map<VertexId, Distance> dist;
  std::unordered_map<VertexId, bool> settled;
  using Entry = std::pair<Distance, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  dist[q] = 0;
  pq.push({0, q});
  std::uint64_t settle_count = 0;

  auto relax = [&dist, &pq](VertexId v, Distance d) {
    auto [it, inserted] = dist.try_emplace(v, d);
    if (inserted || d < it->second) {
      it->second = d;
      pq.push({d, v});
    }
  };

  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (auto it = settled.find(v); it != settled.end()) continue;
    settled[v] = true;
    ++settle_count;
    if (!visit(v, d)) break;

    const GTree::NodeId bypass = BypassRnet(v, q, relevant);
    if (bypass != GTree::kInvalidNode) {
      // Jump border-to-border across the irrelevant Rnet; only edges that
      // leave it are expanded normally.
      const auto& borders = gtree_.Borders(bypass);
      auto& shortcuts = shortcut_cache_[bypass];
      if (shortcuts.empty()) {
        shortcuts.resize(borders.size() * borders.size(), kInfDistance);
        for (std::size_t i = 0; i < borders.size(); ++i) {
          for (std::size_t j = i; j < borders.size(); ++j) {
            const Distance bd =
                i == j ? 0 : gtree_.BorderPairDistance(bypass, i, j);
            shortcuts[i * borders.size() + j] = bd;
            shortcuts[j * borders.size() + i] = bd;
          }
        }
      }
      const std::size_t row =
          std::lower_bound(borders.begin(), borders.end(), v) -
          borders.begin();
      for (std::size_t j = 0; j < borders.size(); ++j) {
        const Distance bd = shortcuts[row * borders.size() + j];
        if (bd != kInfDistance) relax(borders[j], d + bd);
      }
      for (const Arc& arc : graph_.Neighbors(v)) {
        if (!gtree_.IsInSubtree(gtree_.LeafOf(arc.head), bypass)) {
          relax(arc.head, d + arc.weight);
        }
      }
      continue;
    }
    for (const Arc& arc : graph_.Neighbors(v)) {
      relax(arc.head, d + arc.weight);
    }
  }
  if (stats != nullptr) stats->candidates_extracted += settle_count;
}

std::vector<TopKResult> RoadBaseline::TopK(
    VertexId q, std::uint32_t k, std::span<const KeywordId> keywords,
    QueryStats* stats) {
  std::vector<TopKResult> out;
  if (k == 0 || keywords.empty()) return out;
  const PreparedQuery prepared = relevance_.PrepareQuery(keywords);
  double tr_global = 0.0;
  for (std::size_t j = 0; j < prepared.keywords.size(); ++j) {
    tr_global +=
        prepared.impacts[j] * relevance_.MaxImpact(prepared.keywords[j]);
  }
  if (tr_global <= 0.0) return out;

  auto relevant = [this, &prepared](GTree::NodeId node) {
    for (KeywordId t : prepared.keywords) {
      if (aggregates_.NodeContains(node, t)) return true;
    }
    return false;
  };

  struct ScoreLess {
    bool operator()(const std::pair<double, TopKResult>& a,
                    const std::pair<double, TopKResult>& b) const {
      return a.first < b.first;
    }
  };
  std::priority_queue<std::pair<double, TopKResult>,
                      std::vector<std::pair<double, TopKResult>>, ScoreLess>
      best;
  auto dk = [&best, k] {
    return best.size() < k ? std::numeric_limits<double>::infinity()
                           : best.top().first;
  };
  Expand(
      q, relevant,
      [&](VertexId v, Distance d) {
        if (static_cast<double>(d) / tr_global >= dk()) return false;
        auto it = objects_at_.find(v);
        if (it != objects_at_.end()) {
          for (ObjectId o : it->second) {
            const double tr = relevance_.TextualRelevance(prepared, o);
            if (tr <= 0.0) continue;
            const double score = RelevanceModel::Score(d, tr);
            if (score < dk()) {
              if (best.size() == k) best.pop();
              best.push({score, TopKResult{o, score, d, tr}});
            }
          }
        }
        return true;
      },
      stats);
  while (!best.empty()) {
    out.push_back(best.top().second);
    best.pop();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<BkNNResult> RoadBaseline::BooleanKnn(
    VertexId q, std::uint32_t k, std::span<const KeywordId> keywords,
    BooleanOp op, QueryStats* stats) {
  std::vector<BkNNResult> results;
  if (k == 0 || keywords.empty()) return results;
  auto relevant = [this, &keywords, op](GTree::NodeId node) {
    for (KeywordId t : keywords) {
      const bool has = aggregates_.NodeContains(node, t);
      if (op == BooleanOp::kDisjunctive && has) return true;
      if (op == BooleanOp::kConjunctive && !has) return false;
    }
    return op == BooleanOp::kConjunctive;
  };
  auto satisfies = [this, &keywords, op](ObjectId o) {
    for (KeywordId t : keywords) {
      const bool has = store_.Contains(o, t);
      if (op == BooleanOp::kDisjunctive && has) return true;
      if (op == BooleanOp::kConjunctive && !has) return false;
    }
    return op == BooleanOp::kConjunctive;
  };
  Expand(
      q, relevant,
      [&](VertexId v, Distance d) {
        auto it = objects_at_.find(v);
        if (it != objects_at_.end()) {
          for (ObjectId o : it->second) {
            if (satisfies(o)) results.push_back({o, d});
          }
        }
        return results.size() < k;
      },
      stats);
  if (results.size() > k) results.resize(k);
  return results;
}

std::size_t RoadBaseline::MemoryBytes() const {
  std::size_t total = 0;
  for (const auto& [node, shortcuts] : shortcut_cache_) {
    total += shortcuts.size() * sizeof(Distance);
  }
  for (const auto& [v, objects] : objects_at_) {
    total += objects.size() * sizeof(ObjectId) + sizeof(VertexId);
  }
  return total;
}

}  // namespace kspin
