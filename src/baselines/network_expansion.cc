#include "baselines/network_expansion.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace kspin {

NetworkExpansionBaseline::NetworkExpansionBaseline(
    const Graph& graph, const DocumentStore& store,
    const InvertedIndex& inverted, const RelevanceModel& relevance)
    : graph_(graph),
      store_(store),
      inverted_(inverted),
      relevance_(relevance),
      workspace_(graph.NumVertices()) {
  for (ObjectId o = 0; o < store.NumSlots(); ++o) {
    if (store.IsLive(o)) objects_at_[store.ObjectVertex(o)].push_back(o);
  }
}

std::vector<BkNNResult> NetworkExpansionBaseline::BooleanKnn(
    VertexId q, std::uint32_t k, std::span<const KeywordId> keywords,
    BooleanOp op, QueryStats* stats) {
  std::vector<BkNNResult> results;
  if (k == 0 || keywords.empty()) return results;
  auto satisfies = [this, &keywords, op](ObjectId o) {
    for (KeywordId t : keywords) {
      const bool has = store_.Contains(o, t);
      if (op == BooleanOp::kDisjunctive && has) return true;
      if (op == BooleanOp::kConjunctive && !has) return false;
    }
    return op == BooleanOp::kConjunctive;
  };
  std::uint64_t settled = 0;
  workspace_.Search(
      graph_, q, kInfDistance,
      [&](VertexId v, Distance d) {
        ++settled;
        auto it = objects_at_.find(v);
        if (it != objects_at_.end()) {
          for (ObjectId o : it->second) {
            if (satisfies(o)) results.push_back({o, d});
          }
        }
        return results.size() < k;
      });
  if (stats != nullptr) stats->candidates_extracted += settled;
  if (results.size() > k) results.resize(k);
  return results;
}

std::vector<TopKResult> NetworkExpansionBaseline::TopK(
    VertexId q, std::uint32_t k, std::span<const KeywordId> keywords,
    const ScoringFunction& scoring, QueryStats* stats) {
  std::vector<TopKResult> out;
  if (k == 0 || keywords.empty()) return out;
  const PreparedQuery prepared = relevance_.PrepareQuery(keywords);
  double tr_max = 0.0;
  for (std::size_t i = 0; i < prepared.keywords.size(); ++i) {
    tr_max += prepared.impacts[i] * relevance_.MaxImpact(prepared.keywords[i]);
  }
  if (tr_max <= 0.0) return out;

  // Max-heap of the k best scores for the termination bound D_k.
  struct ScoreLess {
    bool operator()(const std::pair<double, TopKResult>& a,
                    const std::pair<double, TopKResult>& b) const {
      return a.first < b.first;
    }
  };
  std::priority_queue<std::pair<double, TopKResult>,
                      std::vector<std::pair<double, TopKResult>>, ScoreLess>
      best;
  auto dk = [&best, k] {
    return best.size() < k ? std::numeric_limits<double>::infinity()
                           : best.top().first;
  };
  std::uint64_t settled = 0;
  workspace_.Search(
      graph_, q, kInfDistance,
      [&](VertexId v, Distance d) {
        ++settled;
        // Any object at distance >= d scores at least Score(d, TR_max).
        if (scoring.LowerBoundScore(d, tr_max) >= dk()) return false;
        auto it = objects_at_.find(v);
        if (it != objects_at_.end()) {
          for (ObjectId o : it->second) {
            const double tr = relevance_.TextualRelevance(prepared, o);
            if (tr <= 0.0) continue;
            const double score = scoring.Score(d, tr);
            if (score < dk()) {
              if (best.size() == k) best.pop();
              best.push({score, TopKResult{o, score, d, tr}});
            }
          }
        }
        return true;
      });
  if (stats != nullptr) stats->candidates_extracted += settled;
  while (!best.empty()) {
    out.push_back(best.top().second);
    best.pop();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace kspin
