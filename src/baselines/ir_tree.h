// IR-tree style Euclidean spatial keyword baseline (Cong, Jensen & Wu,
// PVLDB'09): an R-tree over object locations whose nodes aggregate their
// subtree's keywords, queried by best-first browsing with *Euclidean*
// distance.
//
// This is the class of technique the paper's introduction contrasts K-SPIN
// against: in Euclidean space keyword aggregation is cheap (a false
// positive costs one arithmetic distance), but the metric itself is wrong
// for road networks — "as-the-crow-flies" neighbours can be far by travel
// time. The motivation bench quantifies both effects.
//
// All distances returned by this engine are Euclidean (in coordinate
// units); converting or comparing to network distances is the caller's
// business.
#ifndef KSPIN_BASELINES_IR_TREE_H_
#define KSPIN_BASELINES_IR_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "kspin/query_processor.h"
#include "text/document_store.h"
#include "text/relevance.h"

namespace kspin {

/// One Euclidean result: object + squared-root Euclidean distance.
struct EuclideanResult {
  ObjectId object = kInvalidObject;
  double distance = 0.0;
};

/// Euclidean spatial keyword engine with keyword-aggregated R-tree nodes.
class IrTree {
 public:
  /// Builds over the live objects of `store` (coordinates from their
  /// vertices). Requires graph coordinates.
  IrTree(const Graph& graph, const DocumentStore& store,
         const RelevanceModel& relevance, std::uint32_t node_capacity = 16);

  /// Boolean kNN by Euclidean distance.
  std::vector<EuclideanResult> BooleanKnn(const Coordinate& q,
                                          std::uint32_t k,
                                          std::span<const KeywordId> keywords,
                                          BooleanOp op) const;

  /// Top-k by Euclidean weighted distance (euclid / TR).
  std::vector<EuclideanResult> TopK(const Coordinate& q, std::uint32_t k,
                                    std::span<const KeywordId> keywords) const;

  std::size_t NumObjects() const { return num_objects_; }
  std::size_t MemoryBytes() const;

 private:
  struct Rect {
    std::int32_t min_x, min_y, max_x, max_y;
  };
  struct Node {
    Rect rect;
    ObjectId object = kInvalidObject;  // Leaf entries only.
    std::uint32_t child_begin = 0;     // Into children_.
    std::uint32_t num_children = 0;    // 0 marks a leaf entry.
    std::uint32_t doc_begin = 0;       // Into node_keywords_.
    std::uint32_t doc_size = 0;
  };

  static double MinDistance(const Rect& rect, const Coordinate& q);
  bool NodeAdmissible(const Node& node, std::span<const KeywordId> keywords,
                      BooleanOp op) const;
  bool NodeHasKeyword(const Node& node, KeywordId t) const;

  const Graph& graph_;
  const DocumentStore& store_;
  const RelevanceModel& relevance_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> children_;
  std::vector<KeywordId> node_keywords_;  // Sorted per node.
  std::uint32_t root_ = 0;
  std::size_t num_objects_ = 0;
};

}  // namespace kspin

#endif  // KSPIN_BASELINES_IR_TREE_H_
