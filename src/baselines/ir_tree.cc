#include "baselines/ir_tree.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>
#include <stdexcept>

namespace kspin {

IrTree::IrTree(const Graph& graph, const DocumentStore& store,
               const RelevanceModel& relevance, std::uint32_t node_capacity)
    : graph_(graph), store_(store), relevance_(relevance) {
  if (!graph.HasCoordinates()) {
    throw std::invalid_argument("IrTree: graph coordinates required");
  }
  if (node_capacity < 2) {
    throw std::invalid_argument("IrTree: node_capacity must be >= 2");
  }

  // Leaf entries: one per live object.
  std::vector<std::uint32_t> level;
  for (ObjectId o = 0; o < store.NumSlots(); ++o) {
    if (!store.IsLive(o)) continue;
    const Coordinate& c = graph.VertexCoordinate(store.ObjectVertex(o));
    Node node;
    node.rect = {c.x, c.y, c.x, c.y};
    node.object = o;
    node.doc_begin = static_cast<std::uint32_t>(node_keywords_.size());
    for (const DocEntry& e : store.Document(o)) {
      node_keywords_.push_back(e.keyword);
    }
    node.doc_size =
        static_cast<std::uint32_t>(node_keywords_.size()) - node.doc_begin;
    nodes_.push_back(node);
    level.push_back(static_cast<std::uint32_t>(nodes_.size() - 1));
    ++num_objects_;
  }
  if (level.empty()) {
    // Degenerate empty tree: a sentinel root covering nothing.
    nodes_.push_back({{0, 0, -1, -1}, kInvalidObject, 0, 0, 0, 0});
    root_ = 0;
    return;
  }

  auto centre_x = [this](std::uint32_t id) {
    return nodes_[id].rect.min_x + nodes_[id].rect.max_x;
  };
  auto centre_y = [this](std::uint32_t id) {
    return nodes_[id].rect.min_y + nodes_[id].rect.max_y;
  };

  // STR bulk load with per-node keyword union (the "pseudo document").
  while (level.size() > 1) {
    std::sort(level.begin(), level.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return centre_x(a) < centre_x(b);
              });
    const std::size_t num_groups =
        (level.size() + node_capacity - 1) / node_capacity;
    const std::size_t num_strips = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(num_groups))));
    const std::size_t strip_size =
        (level.size() + num_strips - 1) / num_strips;
    std::vector<std::uint32_t> next_level;
    for (std::size_t s = 0; s < num_strips; ++s) {
      const std::size_t begin = s * strip_size;
      if (begin >= level.size()) break;
      const std::size_t end = std::min(level.size(), begin + strip_size);
      std::sort(level.begin() + begin, level.begin() + end,
                [&](std::uint32_t a, std::uint32_t b) {
                  return centre_y(a) < centre_y(b);
                });
      for (std::size_t g = begin; g < end; g += node_capacity) {
        const std::size_t gend = std::min(end, g + node_capacity);
        Node parent;
        parent.child_begin = static_cast<std::uint32_t>(children_.size());
        parent.rect = nodes_[level[g]].rect;
        std::set<KeywordId> keywords;
        for (std::size_t i = g; i < gend; ++i) {
          children_.push_back(level[i]);
          const Node& child = nodes_[level[i]];
          parent.rect.min_x = std::min(parent.rect.min_x, child.rect.min_x);
          parent.rect.min_y = std::min(parent.rect.min_y, child.rect.min_y);
          parent.rect.max_x = std::max(parent.rect.max_x, child.rect.max_x);
          parent.rect.max_y = std::max(parent.rect.max_y, child.rect.max_y);
          keywords.insert(
              node_keywords_.begin() + child.doc_begin,
              node_keywords_.begin() + child.doc_begin + child.doc_size);
        }
        parent.num_children = static_cast<std::uint32_t>(gend - g);
        parent.doc_begin = static_cast<std::uint32_t>(node_keywords_.size());
        node_keywords_.insert(node_keywords_.end(), keywords.begin(),
                              keywords.end());
        parent.doc_size = static_cast<std::uint32_t>(node_keywords_.size()) -
                          parent.doc_begin;
        nodes_.push_back(parent);
        next_level.push_back(static_cast<std::uint32_t>(nodes_.size() - 1));
      }
    }
    level = std::move(next_level);
  }
  root_ = level.front();
}

double IrTree::MinDistance(const Rect& rect, const Coordinate& q) {
  const double dx = q.x < rect.min_x   ? rect.min_x - q.x
                    : q.x > rect.max_x ? q.x - rect.max_x
                                       : 0.0;
  const double dy = q.y < rect.min_y   ? rect.min_y - q.y
                    : q.y > rect.max_y ? q.y - rect.max_y
                                       : 0.0;
  return std::sqrt(dx * dx + dy * dy);
}

bool IrTree::NodeHasKeyword(const Node& node, KeywordId t) const {
  const auto begin = node_keywords_.begin() + node.doc_begin;
  const auto end = begin + node.doc_size;
  return std::binary_search(begin, end, t);
}

bool IrTree::NodeAdmissible(const Node& node,
                            std::span<const KeywordId> keywords,
                            BooleanOp op) const {
  for (KeywordId t : keywords) {
    const bool has = NodeHasKeyword(node, t);
    if (op == BooleanOp::kDisjunctive && has) return true;
    if (op == BooleanOp::kConjunctive && !has) return false;
  }
  return op == BooleanOp::kConjunctive;
}

std::vector<EuclideanResult> IrTree::BooleanKnn(
    const Coordinate& q, std::uint32_t k,
    std::span<const KeywordId> keywords, BooleanOp op) const {
  std::vector<EuclideanResult> results;
  if (k == 0 || keywords.empty() || num_objects_ == 0) return results;

  auto object_satisfies = [this, &keywords, op](ObjectId o) {
    for (KeywordId t : keywords) {
      const bool has = store_.Contains(o, t);
      if (op == BooleanOp::kDisjunctive && has) return true;
      if (op == BooleanOp::kConjunctive && !has) return false;
    }
    return op == BooleanOp::kConjunctive;
  };

  using Entry = std::pair<double, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  pq.push({MinDistance(nodes_[root_].rect, q), root_});
  while (!pq.empty() && results.size() < k) {
    const auto [d, id] = pq.top();
    pq.pop();
    const Node& node = nodes_[id];
    if (node.num_children == 0) {
      // Distance browsing: entries pop in exact ascending distance, so a
      // popped leaf entry is final.
      if (node.object != kInvalidObject && object_satisfies(node.object)) {
        results.push_back({node.object, d});
      }
      continue;
    }
    for (std::uint32_t c = 0; c < node.num_children; ++c) {
      const std::uint32_t child = children_[node.child_begin + c];
      if (!NodeAdmissible(nodes_[child], keywords, op)) continue;
      pq.push({MinDistance(nodes_[child].rect, q), child});
    }
  }
  return results;
}

std::vector<EuclideanResult> IrTree::TopK(
    const Coordinate& q, std::uint32_t k,
    std::span<const KeywordId> keywords) const {
  std::vector<EuclideanResult> results;
  if (k == 0 || keywords.empty() || num_objects_ == 0) return results;
  const PreparedQuery prepared = relevance_.PrepareQuery(keywords);

  auto tr_max = [this, &prepared](const Node& node) {
    double bound = 0.0;
    for (std::size_t j = 0; j < prepared.keywords.size(); ++j) {
      if (NodeHasKeyword(node, prepared.keywords[j])) {
        bound += prepared.impacts[j] *
                 relevance_.MaxImpact(prepared.keywords[j]);
      }
    }
    return bound;
  };

  struct Entry {
    double score;
    std::uint32_t node;
    bool is_object;
    double distance;
    bool operator>(const Entry& o) const { return score > o.score; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  pq.push({0.0, root_, false, 0.0});
  while (!pq.empty() && results.size() < k) {
    const Entry top = pq.top();
    pq.pop();
    const Node& node = nodes_[top.node];
    if (top.is_object) {
      results.push_back({node.object, top.distance});
      continue;
    }
    if (node.num_children == 0) {
      if (node.object == kInvalidObject) continue;
      const double tr = relevance_.TextualRelevance(prepared, node.object);
      if (tr <= 0.0) continue;
      const double d = MinDistance(node.rect, q);  // Point rect: exact.
      pq.push({d / tr, top.node, true, d});
      continue;
    }
    for (std::uint32_t c = 0; c < node.num_children; ++c) {
      const std::uint32_t child = children_[node.child_begin + c];
      const double bound = tr_max(nodes_[child]);
      if (bound <= 0.0) continue;
      pq.push({MinDistance(nodes_[child].rect, q) / bound, child, false,
               0.0});
    }
  }
  return results;
}

std::size_t IrTree::MemoryBytes() const {
  return nodes_.size() * sizeof(Node) +
         children_.size() * sizeof(std::uint32_t) +
         node_keywords_.size() * sizeof(KeywordId);
}

}  // namespace kspin
