#include "baselines/gtree_spatial_keyword.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <queue>
#include <stdexcept>

namespace kspin {
namespace {

inline std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Post-order listing of tree nodes (children before parents).
std::vector<GTree::NodeId> PostOrder(const GTree& gtree) {
  std::vector<GTree::NodeId> order;
  order.reserve(gtree.NumNodes());
  std::vector<std::pair<GTree::NodeId, bool>> stack = {
      {gtree.RootNode(), false}};
  while (!stack.empty()) {
    auto [node, expanded] = stack.back();
    stack.pop_back();
    if (expanded || gtree.IsLeaf(node)) {
      order.push_back(node);
      continue;
    }
    stack.push_back({node, true});
    for (GTree::NodeId child : gtree.Children(node)) {
      stack.push_back({child, false});
    }
  }
  return order;
}

}  // namespace

NodeKeywordAggregates::NodeKeywordAggregates(const GTree& gtree,
                                             const DocumentStore& store) {
  docs_.resize(gtree.NumNodes());
  occupancy_.assign(gtree.NumNodes(), 0);
  leaf_objects_.resize(gtree.NumNodes());
  std::vector<std::uint32_t> object_counts(gtree.NumNodes(), 0);

  for (ObjectId o = 0; o < store.NumSlots(); ++o) {
    if (!store.IsLive(o)) continue;
    leaf_objects_[gtree.LeafOf(store.ObjectVertex(o))].push_back(o);
  }

  for (GTree::NodeId node : PostOrder(gtree)) {
    PseudoDoc& doc = docs_[node];
    if (gtree.IsLeaf(node)) {
      // Aggregate object documents (sorted merge via map-then-sort).
      std::unordered_map<KeywordId, std::uint32_t> agg;
      for (ObjectId o : leaf_objects_[node]) {
        for (const DocEntry& e : store.Document(o)) {
          agg[e.keyword] += e.frequency;
        }
      }
      doc.keywords.reserve(agg.size());
      for (const auto& [t, f] : agg) doc.keywords.push_back(t);
      std::sort(doc.keywords.begin(), doc.keywords.end());
      doc.frequencies.resize(doc.keywords.size());
      doc.child_masks.assign(doc.keywords.size(), 0);
      for (std::size_t i = 0; i < doc.keywords.size(); ++i) {
        doc.frequencies[i] = agg[doc.keywords[i]];
      }
      object_counts[node] =
          static_cast<std::uint32_t>(leaf_objects_[node].size());
      continue;
    }
    const std::vector<GTree::NodeId>& children = gtree.Children(node);
    if (children.size() > 8) {
      throw std::invalid_argument(
          "NodeKeywordAggregates: fanout > 8 unsupported by child masks");
    }
    std::unordered_map<KeywordId, std::pair<std::uint32_t, std::uint8_t>>
        agg;  // keyword -> (summed frequency, child mask)
    for (std::size_t c = 0; c < children.size(); ++c) {
      const PseudoDoc& child_doc = docs_[children[c]];
      for (std::size_t i = 0; i < child_doc.keywords.size(); ++i) {
        auto& slot = agg[child_doc.keywords[i]];
        slot.first += child_doc.frequencies[i];
        slot.second |= static_cast<std::uint8_t>(1u << c);
      }
      object_counts[node] += object_counts[children[c]];
      if (object_counts[children[c]] > 0) {
        occupancy_[node] |= (1u << c);
      }
    }
    doc.keywords.reserve(agg.size());
    for (const auto& [t, entry] : agg) doc.keywords.push_back(t);
    std::sort(doc.keywords.begin(), doc.keywords.end());
    doc.frequencies.resize(doc.keywords.size());
    doc.child_masks.resize(doc.keywords.size());
    for (std::size_t i = 0; i < doc.keywords.size(); ++i) {
      const auto& entry = agg[doc.keywords[i]];
      doc.frequencies[i] = entry.first;
      doc.child_masks[i] = entry.second;
    }
  }
}

bool NodeKeywordAggregates::NodeContains(GTree::NodeId node,
                                         KeywordId t) const {
  return NodeFrequency(node, t) > 0;
}

std::uint32_t NodeKeywordAggregates::NodeFrequency(GTree::NodeId node,
                                                   KeywordId t) const {
  const PseudoDoc& doc = docs_[node];
  const auto it =
      std::lower_bound(doc.keywords.begin(), doc.keywords.end(), t);
  if (it == doc.keywords.end() || *it != t) return 0;
  return doc.frequencies[it - doc.keywords.begin()];
}

std::uint32_t NodeKeywordAggregates::KeywordOccupancyMask(GTree::NodeId node,
                                                          KeywordId t) const {
  const PseudoDoc& doc = docs_[node];
  const auto it =
      std::lower_bound(doc.keywords.begin(), doc.keywords.end(), t);
  if (it == doc.keywords.end() || *it != t) return 0;
  return doc.child_masks[it - doc.keywords.begin()];
}

std::size_t NodeKeywordAggregates::MemoryBytes() const {
  std::size_t total = occupancy_.size() * sizeof(std::uint32_t);
  for (const PseudoDoc& doc : docs_) {
    total += doc.keywords.size() *
             (sizeof(KeywordId) + sizeof(std::uint32_t) + 1);
  }
  for (const auto& list : leaf_objects_) {
    total += list.size() * sizeof(ObjectId);
  }
  return total;
}

GTreeSpatialKeyword::GTreeSpatialKeyword(const Graph& graph,
                                         const GTree& gtree,
                                         const DocumentStore& store,
                                         const InvertedIndex& inverted,
                                         const RelevanceModel& relevance,
                                         bool use_per_keyword_occurrence)
    : graph_(graph),
      gtree_(gtree),
      store_(store),
      inverted_(inverted),
      relevance_(relevance),
      aggregates_(gtree, store),
      per_keyword_occurrence_(use_per_keyword_occurrence) {}

std::vector<TopKResult> GTreeSpatialKeyword::TopK(
    VertexId q, std::uint32_t k, std::span<const KeywordId> keywords,
    QueryStats* stats) {
  std::vector<TopKResult> results;
  if (k == 0 || keywords.empty()) return results;
  const PreparedQuery prepared = relevance_.PrepareQuery(keywords);
  QueryStats local;
  const std::uint64_t build_start_ns = stats != nullptr ? NowNs() : 0;
  GTree::SourceCache cache = gtree_.MakeSourceCache(q);
  if (stats != nullptr) local.heap_build_ns = NowNs() - build_start_ns;
  const std::uint64_t search_start_ns = stats != nullptr ? NowNs() : 0;

  // Best possible textual relevance of any object under `node`.
  auto tr_max = [this, &prepared](GTree::NodeId node) {
    double bound = 0.0;
    for (std::size_t j = 0; j < prepared.keywords.size(); ++j) {
      if (aggregates_.NodeContains(node, prepared.keywords[j])) {
        bound += prepared.impacts[j] *
                 relevance_.MaxImpact(prepared.keywords[j]);
      }
    }
    return bound;
  };

  struct Entry {
    double score;
    GTree::NodeId node;      // kInvalidNode for object entries.
    ObjectId object;         // Valid for object entries.
    Distance distance;       // Object entries only.
    double relevance;        // Object entries only.
    bool operator>(const Entry& o) const { return score > o.score; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  pq.push({0.0, gtree_.RootNode(), kInvalidObject, 0, 0.0});

  while (!pq.empty() && results.size() < k) {
    const Entry top = pq.top();
    pq.pop();
    ++local.candidates_extracted;
    if (top.node == GTree::kInvalidNode) {
      results.push_back({top.object, top.score, top.distance, top.relevance});
      continue;
    }
    if (gtree_.IsLeaf(top.node)) {
      // The aggregation penalty: every textually matching object in the
      // leaf gets a network distance computation, result or not.
      for (ObjectId o : aggregates_.LeafObjects(top.node)) {
        const double tr = relevance_.TextualRelevance(prepared, o);
        if (tr <= 0.0) continue;
        const Distance d = gtree_.Query(cache, store_.ObjectVertex(o));
        ++local.network_distance_computations;
        pq.push({RelevanceModel::Score(d, tr), GTree::kInvalidNode, o, d,
                 tr});
      }
      continue;
    }
    const std::vector<GTree::NodeId>& children =
        gtree_.Children(top.node);
    std::uint32_t mask;
    if (per_keyword_occurrence_) {
      // Gtree-Opt: per-keyword occurrence lists prune children lacking
      // every query keyword without touching their pseudo-documents.
      mask = 0;
      for (KeywordId t : prepared.keywords) {
        mask |= aggregates_.KeywordOccupancyMask(top.node, t);
      }
    } else {
      mask = aggregates_.OccupancyMask(top.node);
    }
    for (std::size_t c = 0; c < children.size(); ++c) {
      if ((mask & (1u << c)) == 0) continue;
      const double bound = tr_max(children[c]);
      if (bound <= 0.0) continue;
      Distance mind = 0;
      if (!gtree_.IsInSubtree(gtree_.LeafOf(q), children[c])) {
        mind = gtree_.MinBorderDistance(cache, children[c]);
        ++local.lower_bounds_computed;
      }
      if (mind == kInfDistance) continue;
      pq.push({static_cast<double>(mind) / bound, children[c],
               kInvalidObject, 0, 0.0});
    }
  }
  if (stats != nullptr) {
    // Entries never expanded because the k-th result beat their bound.
    local.candidates_pruned_lb = pq.size();
    local.false_positive_distances =
        local.network_distance_computations - results.size();
    local.results_returned = results.size();
    local.search_ns = NowNs() - search_start_ns;
    *stats += local;
  }
  return results;
}

std::vector<BkNNResult> GTreeSpatialKeyword::BooleanKnn(
    VertexId q, std::uint32_t k, std::span<const KeywordId> keywords,
    BooleanOp op, QueryStats* stats) {
  std::vector<BkNNResult> results;
  if (k == 0 || keywords.empty()) return results;
  QueryStats local;
  const std::uint64_t build_start_ns = stats != nullptr ? NowNs() : 0;
  GTree::SourceCache cache = gtree_.MakeSourceCache(q);
  if (stats != nullptr) local.heap_build_ns = NowNs() - build_start_ns;
  const std::uint64_t search_start_ns = stats != nullptr ? NowNs() : 0;

  auto node_admissible = [this, &keywords, op](GTree::NodeId node) {
    for (KeywordId t : keywords) {
      const bool has = aggregates_.NodeContains(node, t);
      if (op == BooleanOp::kDisjunctive && has) return true;
      if (op == BooleanOp::kConjunctive && !has) return false;
    }
    return op == BooleanOp::kConjunctive;
  };
  auto object_satisfies = [this, &keywords, op](ObjectId o) {
    for (KeywordId t : keywords) {
      const bool has = store_.Contains(o, t);
      if (op == BooleanOp::kDisjunctive && has) return true;
      if (op == BooleanOp::kConjunctive && !has) return false;
    }
    return op == BooleanOp::kConjunctive;
  };

  struct Entry {
    Distance key;
    GTree::NodeId node;
    ObjectId object;
    bool operator>(const Entry& o) const {
      if (key != o.key) return key > o.key;
      return object > o.object;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  pq.push({0, gtree_.RootNode(), kInvalidObject});

  while (!pq.empty() && results.size() < k) {
    const Entry top = pq.top();
    pq.pop();
    ++local.candidates_extracted;
    if (top.node == GTree::kInvalidNode) {
      results.push_back({top.object, top.key});
      continue;
    }
    if (gtree_.IsLeaf(top.node)) {
      for (ObjectId o : aggregates_.LeafObjects(top.node)) {
        if (!object_satisfies(o)) continue;
        const Distance d = gtree_.Query(cache, store_.ObjectVertex(o));
        ++local.network_distance_computations;
        pq.push({d, GTree::kInvalidNode, o});
      }
      continue;
    }
    const std::vector<GTree::NodeId>& children =
        gtree_.Children(top.node);
    std::uint32_t mask;
    if (per_keyword_occurrence_) {
      if (op == BooleanOp::kDisjunctive) {
        mask = 0;
        for (KeywordId t : keywords) {
          mask |= aggregates_.KeywordOccupancyMask(top.node, t);
        }
      } else {
        mask = ~0u;
        for (KeywordId t : keywords) {
          mask &= aggregates_.KeywordOccupancyMask(top.node, t);
        }
      }
    } else {
      mask = aggregates_.OccupancyMask(top.node);
    }
    for (std::size_t c = 0; c < children.size(); ++c) {
      if ((mask & (1u << c)) == 0) continue;
      if (!node_admissible(children[c])) continue;
      Distance mind = 0;
      if (!gtree_.IsInSubtree(gtree_.LeafOf(q), children[c])) {
        mind = gtree_.MinBorderDistance(cache, children[c]);
        ++local.lower_bounds_computed;
      }
      if (mind == kInfDistance) continue;
      pq.push({mind, children[c], kInvalidObject});
    }
  }
  if (stats != nullptr) {
    local.candidates_pruned_lb = pq.size();
    local.false_positive_distances =
        local.network_distance_computations - results.size();
    local.results_returned = results.size();
    local.search_ns = NowNs() - search_start_ns;
    *stats += local;
  }
  return results;
}

}  // namespace kspin
