// Network-expansion baseline: plain incremental Dijkstra from the query
// vertex, checking every settled vertex's objects against the keyword
// criteria. No index beyond a vertex -> objects map. The paper excludes
// expansion methods from its main charts because they are orders of
// magnitude slower; we include one as the sanity floor and as an exactness
// oracle for the spatial keyword semantics.
#ifndef KSPIN_BASELINES_NETWORK_EXPANSION_H_
#define KSPIN_BASELINES_NETWORK_EXPANSION_H_

#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "kspin/query_processor.h"
#include "routing/dijkstra.h"
#include "text/document_store.h"
#include "text/inverted_index.h"
#include "text/relevance.h"

namespace kspin {

/// Dijkstra-based spatial keyword baseline (exact).
class NetworkExpansionBaseline {
 public:
  /// Snapshot of the store at construction time (mutations afterwards are
  /// not reflected; rebuild to pick them up).
  NetworkExpansionBaseline(const Graph& graph, const DocumentStore& store,
                           const InvertedIndex& inverted,
                           const RelevanceModel& relevance);

  /// Boolean kNN by expanding until k satisfying objects settle.
  std::vector<BkNNResult> BooleanKnn(VertexId q, std::uint32_t k,
                                     std::span<const KeywordId> keywords,
                                     BooleanOp op,
                                     QueryStats* stats = nullptr);

  /// Top-k by expansion with the d / TR_max termination bound.
  std::vector<TopKResult> TopK(VertexId q, std::uint32_t k,
                               std::span<const KeywordId> keywords,
                               QueryStats* stats = nullptr) {
    return TopK(q, k, keywords, ScoringFunction{}, stats);
  }

  /// Top-k under an explicit scoring function; the expansion bound uses
  /// Score(d, TR_max), valid for any score monotone in distance and
  /// relevance.
  std::vector<TopKResult> TopK(VertexId q, std::uint32_t k,
                               std::span<const KeywordId> keywords,
                               const ScoringFunction& scoring,
                               QueryStats* stats = nullptr);

 private:
  const Graph& graph_;
  const DocumentStore& store_;
  const InvertedIndex& inverted_;
  const RelevanceModel& relevance_;
  std::unordered_map<VertexId, std::vector<ObjectId>> objects_at_;
  DijkstraWorkspace workspace_;
};

}  // namespace kspin

#endif  // KSPIN_BASELINES_NETWORK_EXPANSION_H_
