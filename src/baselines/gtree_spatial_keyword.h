// Keyword-aggregated G-tree spatial keyword baseline (Zhong et al.'s
// algorithms adapted as in the paper's Sections 1.1 and 7.4).
//
// Every tree node aggregates its subtree's keywords into a pseudo-document
// (keyword -> summed frequency) plus occurrence lists that say which
// children contain objects. Queries traverse the hierarchy best-first:
// nodes are ranked by an optimistic score combining the minimum network
// distance to the node's borders (computed with G-tree matrix operations)
// and the best textual relevance its pseudo-document allows; when a leaf
// is reached, network distances are computed to all matching objects in
// it. False positives — nodes and objects that look promising only because
// of aggregation — are exactly the cost K-SPIN removes.
//
// Two variants share the implementation (Section 7.4.1):
//  - original: one occurrence list per node (children containing any
//    object at all);
//  - Gtree-Opt: per-keyword occurrence lists (children containing an
//    object with that keyword), the "keyword separation principles applied
//    to G-tree" refinement the paper shows is not enough.
#ifndef KSPIN_BASELINES_GTREE_SPATIAL_KEYWORD_H_
#define KSPIN_BASELINES_GTREE_SPATIAL_KEYWORD_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "kspin/query_processor.h"
#include "routing/gtree.h"
#include "text/document_store.h"
#include "text/inverted_index.h"
#include "text/relevance.h"

namespace kspin {

/// Per-tree-node keyword aggregation shared by the G-tree and ROAD
/// baselines.
class NodeKeywordAggregates {
 public:
  /// Aggregates the live objects of `store` up the G-tree hierarchy.
  NodeKeywordAggregates(const GTree& gtree, const DocumentStore& store);

  /// True if keyword t occurs anywhere in the subtree of `node`.
  bool NodeContains(GTree::NodeId node, KeywordId t) const;

  /// Aggregated frequency of t in the subtree (0 when absent).
  std::uint32_t NodeFrequency(GTree::NodeId node, KeywordId t) const;

  /// Bitmask over Children(node): which children contain any object.
  std::uint32_t OccupancyMask(GTree::NodeId node) const {
    return occupancy_[node];
  }

  /// Bitmask over Children(node): which children contain an object with
  /// keyword t (the per-keyword occurrence list of Gtree-Opt).
  std::uint32_t KeywordOccupancyMask(GTree::NodeId node, KeywordId t) const;

  /// Live objects in a leaf node.
  const std::vector<ObjectId>& LeafObjects(GTree::NodeId leaf) const {
    return leaf_objects_[leaf];
  }

  /// Approximate memory in bytes.
  std::size_t MemoryBytes() const;

 private:
  struct PseudoDoc {
    // Sorted by keyword; parallel arrays keep it compact.
    std::vector<KeywordId> keywords;
    std::vector<std::uint32_t> frequencies;
    std::vector<std::uint8_t> child_masks;  // Per-keyword occurrence bits.
  };

  const PseudoDoc& Doc(GTree::NodeId node) const { return docs_[node]; }

  std::vector<PseudoDoc> docs_;
  std::vector<std::uint32_t> occupancy_;
  std::vector<std::vector<ObjectId>> leaf_objects_;
};

/// The baseline query engine.
class GTreeSpatialKeyword {
 public:
  /// `use_per_keyword_occurrence` selects Gtree-Opt.
  GTreeSpatialKeyword(const Graph& graph, const GTree& gtree,
                      const DocumentStore& store,
                      const InvertedIndex& inverted,
                      const RelevanceModel& relevance,
                      bool use_per_keyword_occurrence);

  /// Keyword-aggregated top-k (exact results, aggregation costs only).
  std::vector<TopKResult> TopK(VertexId q, std::uint32_t k,
                               std::span<const KeywordId> keywords,
                               QueryStats* stats = nullptr);

  /// Keyword-aggregated Boolean kNN.
  std::vector<BkNNResult> BooleanKnn(VertexId q, std::uint32_t k,
                                     std::span<const KeywordId> keywords,
                                     BooleanOp op,
                                     QueryStats* stats = nullptr);

  const NodeKeywordAggregates& Aggregates() const { return aggregates_; }

  /// Baseline-side index memory (pseudo-documents + occurrence lists),
  /// excluding the shared G-tree matrices.
  std::size_t MemoryBytes() const { return aggregates_.MemoryBytes(); }

 private:
  const Graph& graph_;
  const GTree& gtree_;
  const DocumentStore& store_;
  const InvertedIndex& inverted_;
  const RelevanceModel& relevance_;
  NodeKeywordAggregates aggregates_;
  bool per_keyword_occurrence_;
};

}  // namespace kspin

#endif  // KSPIN_BASELINES_GTREE_SPATIAL_KEYWORD_H_
