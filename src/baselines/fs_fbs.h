// FS-FBS baseline (Jiang, Fu & Wong, SIGMOD'15): Boolean kNN keyword
// search over a 2-hop labeling and its inverse.
//
// Forward labels give d(q, h) to each hub h of the query vertex; backward
// labels list, for each hub, the vertices carrying it in ascending
// distance. A BkNN query merges the |L(q)| backward lists by candidate
// bound d(q,h) + d(h,v) — the first time a vertex surfaces, the bound is
// its exact distance.
//
// Keyword handling follows the original split:
//  - frequent keywords use keyword aggregation: every backward-label block
//    carries a bit-array signature of the keywords present on its
//    vertices' objects, so irrelevant blocks are skipped. Hash collisions
//    create false positives — the aggregation weakness the paper
//    highlights.
//  - infrequent keywords are answered by computing distances to the whole
//    inverted list (no ordered access — the second weakness).
//
// The backward index roughly doubles the (already large) label memory,
// reproducing FS-FBS's prohibitive footprint; `max_backward_entries`
// models the paper's "dataset too large to build index" failure mode.
#ifndef KSPIN_BASELINES_FS_FBS_H_
#define KSPIN_BASELINES_FS_FBS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "kspin/query_processor.h"
#include "routing/hub_labeling.h"
#include "text/document_store.h"
#include "text/inverted_index.h"

namespace kspin {

/// FS-FBS construction parameters.
struct FsFbsOptions {
  /// Keywords with |inv(t)| >= this use the frequent (aggregated) path.
  std::uint32_t frequent_threshold = 64;
  /// Backward-label entries per keyword-signature block.
  std::uint32_t block_size = 16;
  /// Construction aborts (std::runtime_error) past this many backward
  /// entries; 0 disables the guard.
  std::size_t max_backward_entries = 0;
};

/// Forward-backward search engine over hub labels.
class FsFbs {
 public:
  FsFbs(const Graph& graph, const HubLabeling& labels,
        const DocumentStore& store, const InvertedIndex& inverted,
        FsFbsOptions options = {});

  /// Boolean kNN (exact). FS-FBS does not support top-k queries.
  std::vector<BkNNResult> BooleanKnn(VertexId q, std::uint32_t k,
                                     std::span<const KeywordId> keywords,
                                     BooleanOp op,
                                     QueryStats* stats = nullptr);

  /// Backward index memory (entries + signatures), on top of the forward
  /// labels.
  std::size_t MemoryBytes() const;

 private:
  struct BackwardEntry {
    VertexId vertex;
    Distance distance;
  };

  static std::uint64_t KeywordBit(KeywordId t);
  std::uint64_t QueryMask(std::span<const KeywordId> keywords) const;

  std::vector<BkNNResult> FrequentSearch(
      VertexId q, std::uint32_t k, std::span<const KeywordId> keywords,
      BooleanOp op, QueryStats* stats) const;
  std::vector<BkNNResult> ScanList(VertexId q, std::uint32_t k,
                                   std::span<const KeywordId> keywords,
                                   KeywordId scan_keyword, BooleanOp op,
                                   QueryStats* stats) const;

  const Graph& graph_;
  const HubLabeling& labels_;
  const DocumentStore& store_;
  const InvertedIndex& inverted_;
  FsFbsOptions options_;

  std::vector<std::size_t> hub_offsets_;      // |V|+1.
  std::vector<BackwardEntry> backward_;       // Grouped by hub, by distance.
  std::vector<std::size_t> sig_offsets_;      // |V|+1, into signatures_.
  std::vector<std::uint64_t> signatures_;     // One per block.
  std::unordered_map<VertexId, std::vector<ObjectId>> objects_at_;
};

}  // namespace kspin

#endif  // KSPIN_BASELINES_FS_FBS_H_
