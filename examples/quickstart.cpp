// Quickstart: the paper's running example (Figure 1) in ~80 lines.
//
// Build a small road network, place eight points of interest with keyword
// documents, and answer the two motivating queries:
//   1. Boolean 1NN: the closest POI containing "thai" AND "restaurant".
//   2. Top-1: the best POI for {"italian", "restaurant", "takeaway"} by
//      weighted network distance.
//
// Run: ./example_quickstart
#include <cstdio>

#include "graph/road_network_generator.h"
#include "kspin/kspin.h"
#include "routing/contraction_hierarchy.h"
#include "text/vocabulary.h"

int main() {
  using namespace kspin;

  // 1. A small synthetic road network (travel-time weights).
  RoadNetworkOptions road;
  road.grid_width = 24;
  road.grid_height = 24;
  road.seed = 2026;
  const Graph graph = GenerateRoadNetwork(road);
  std::printf("road network: %zu vertices, %zu edges\n",
              graph.NumVertices(), graph.NumEdges());

  // 2. Eight POIs in the spirit of the paper's Figure 1.
  Vocabulary vocab;
  const KeywordId italian = vocab.AddOrGet("italian");
  const KeywordId restaurant = vocab.AddOrGet("restaurant");
  const KeywordId takeaway = vocab.AddOrGet("takeaway");
  const KeywordId thai = vocab.AddOrGet("thai");
  const KeywordId grocer = vocab.AddOrGet("grocer");
  const KeywordId petrol = vocab.AddOrGet("petrol");

  DocumentStore store;
  store.AddObject(10, {{italian, 1}, {restaurant, 1}});            // o1
  store.AddObject(55, {{takeaway, 1}, {thai, 1}});                 // o2
  store.AddObject(120, {{grocer, 1}});                             // o3
  store.AddObject(180, {{petrol, 1}});                             // o4
  store.AddObject(240, {{thai, 1}, {restaurant, 1}, {takeaway, 1}});  // o5
  store.AddObject(300, {{thai, 1}, {restaurant, 1}});              // o6
  store.AddObject(410, {{thai, 1}, {grocer, 1}});                  // o7
  store.AddObject(500, {{restaurant, 1}, {takeaway, 1}});          // o8

  // 3. Pick a Network Distance Module (any DistanceOracle works) and
  //    build the K-SPIN engine.
  ContractionHierarchy ch(graph);
  ChOracle oracle(ch);
  KSpin engine(graph, std::move(store), oracle);

  const VertexId q = 150;

  // 4. Boolean 1NN, conjunctive: "thai" AND "restaurant".
  {
    const std::vector<KeywordId> keywords = {thai, restaurant};
    const auto results =
        engine.BooleanKnn(q, 1, keywords, BooleanOp::kConjunctive);
    for (const BkNNResult& r : results) {
      std::printf("closest thai restaurant: object o%u at travel time %llu\n",
                  r.object + 1,
                  static_cast<unsigned long long>(r.distance));
    }
  }

  // 5. Top-1 spatial keyword query (weighted network distance).
  {
    const std::vector<KeywordId> keywords = {italian, restaurant, takeaway};
    const auto results = engine.TopK(q, 1, keywords);
    for (const TopKResult& r : results) {
      std::printf(
          "best {italian,restaurant,takeaway}: o%u score %.1f "
          "(distance %llu, relevance %.3f)\n",
          r.object + 1, r.score,
          static_cast<unsigned long long>(r.distance), r.relevance);
    }
  }

  // 6. The mixed-operator extension: thai AND (takeaway OR restaurant).
  {
    const std::vector<std::vector<KeywordId>> clauses = {
        {thai}, {takeaway, restaurant}};
    const auto results = engine.BooleanKnnCnf(q, 2, clauses);
    std::printf("thai AND (takeaway OR restaurant), 2NN:\n");
    for (const BkNNResult& r : results) {
      std::printf("  o%u at travel time %llu\n", r.object + 1,
                  static_cast<unsigned long long>(r.distance));
    }
  }
  return 0;
}
