// Live updates: a day in the life of a map service (paper Section 6.2).
//
// POIs open, close, and change their descriptions while queries keep
// flowing. The rho-Approximate NVDs absorb the churn with lazy updates
// (tombstones + Theorem-2 affected-set attachment); every answer stays
// exact; periodic maintenance rebuilds only the indexes whose lazy budget
// ran out. The example cross-checks a sample of answers against a
// brute-force Dijkstra baseline after every phase.
//
// Run: ./example_live_updates
#include <cstdio>
#include <vector>

#include "baselines/network_expansion.h"
#include "common/random.h"
#include "common/timer.h"
#include "graph/road_network_generator.h"
#include "kspin/kspin.h"
#include "routing/contraction_hierarchy.h"
#include "text/zipf_generator.h"

namespace {

using namespace kspin;

// Cross-checks k-NN answers for `keyword` against a fresh brute-force
// baseline; returns the number of mismatching ranks.
int CrossCheck(const Graph& graph, KSpin& engine, KeywordId keyword) {
  InvertedIndex inverted(engine.Store(), engine.Inverted().NumKeywords());
  RelevanceModel relevance(engine.Store(), inverted);
  NetworkExpansionBaseline brute(graph, engine.Store(), inverted,
                                 relevance);
  Rng rng(4242);
  int mismatches = 0;
  const std::vector<KeywordId> keywords = {keyword};
  for (int i = 0; i < 10; ++i) {
    const VertexId q = static_cast<VertexId>(
        rng.UniformInt(0, graph.NumVertices() - 1));
    const auto got =
        engine.BooleanKnn(q, 5, keywords, BooleanOp::kDisjunctive);
    const auto want =
        brute.BooleanKnn(q, 5, keywords, BooleanOp::kDisjunctive);
    if (got.size() != want.size()) {
      ++mismatches;
      continue;
    }
    for (std::size_t r = 0; r < got.size(); ++r) {
      if (got[r].distance != want[r].distance) {
        ++mismatches;
        break;
      }
    }
  }
  return mismatches;
}

}  // namespace

int main() {
  RoadNetworkOptions road;
  road.grid_width = 80;
  road.grid_height = 80;
  road.seed = 33;
  const Graph graph = GenerateRoadNetwork(road);

  KeywordDatasetOptions keywords;
  keywords.num_keywords = 300;
  keywords.object_fraction = 0.06;
  keywords.seed = 33;
  DocumentStore store = GenerateKeywordDataset(graph, keywords);

  ContractionHierarchy ch(graph);
  ChOracle oracle(ch);
  KSpinOptions options;
  options.lazy_insert_threshold = 32;
  KSpin engine(graph, store, oracle, options);

  // The busiest keyword is our canary.
  KeywordId busy = 0;
  std::printf("initial: %zu POIs, |inv(busy)| = %zu\n",
              engine.Store().NumLiveObjects(),
              engine.Inverted().ListSize(busy));
  std::printf("cross-check mismatches: %d\n",
              CrossCheck(graph, engine, busy));

  Rng rng(99);
  Timer timer;

  // Morning: 60 new POIs open.
  std::vector<ObjectId> new_pois;
  for (int i = 0; i < 60; ++i) {
    const VertexId v = static_cast<VertexId>(
        rng.UniformInt(0, graph.NumVertices() - 1));
    new_pois.push_back(engine.InsertObject(
        v, {{busy, 1},
            {static_cast<KeywordId>(rng.UniformInt(1, 200)), 1}}));
  }
  std::printf("\nmorning: +60 POIs in %.1f ms (lazy)\n",
              timer.ElapsedMillis());
  std::printf("cross-check mismatches: %d\n",
              CrossCheck(graph, engine, busy));

  // Midday: 20 close, 15 change their menus.
  timer.Restart();
  for (int i = 0; i < 20; ++i) engine.DeleteObject(new_pois[i]);
  for (int i = 20; i < 35; ++i) {
    engine.AddKeywordToObject(new_pois[i],
                              static_cast<KeywordId>(201 + i), 2);
    engine.RemoveKeywordFromObject(new_pois[i], busy);
  }
  std::printf("\nmidday: 20 closures + 15 re-labels in %.1f ms\n",
              timer.ElapsedMillis());
  std::printf("cross-check mismatches: %d\n",
              CrossCheck(graph, engine, busy));

  // Evening: maintenance window rebuilds saturated indexes.
  timer.Restart();
  const std::size_t rebuilt = engine.MaintainIndexes();
  std::printf("\nevening: rebuilt %zu keyword indexes in %.1f ms\n",
              rebuilt, timer.ElapsedMillis());
  std::printf("cross-check mismatches: %d\n",
              CrossCheck(graph, engine, busy));

  std::printf("\nall phases served exact results.\n");
  return 0;
}
