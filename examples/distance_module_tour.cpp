// Distance-module tour: K-SPIN's headline flexibility claim (paper
// Section 1.2, "Flexibility") — the keyword indexes are decoupled from the
// network distance technique, so any DistanceOracle plugs in.
//
// Builds one dataset, then serves the same workload through four Network
// Distance Modules (Dijkstra, Contraction Hierarchies, hub labels,
// G-tree), reporting per-module latency and index size. All four return
// identical (exact) answers; only cost profiles differ.
//
// Run: ./example_distance_module_tour
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "graph/road_network_generator.h"
#include "kspin/kspin.h"
#include "routing/contraction_hierarchy.h"
#include "routing/dijkstra.h"
#include "routing/gtree.h"
#include "routing/hub_labeling.h"
#include "text/zipf_generator.h"

int main() {
  using namespace kspin;

  RoadNetworkOptions road;
  road.grid_width = 120;
  road.grid_height = 120;
  road.seed = 55;
  const Graph graph = GenerateRoadNetwork(road);
  KeywordDatasetOptions kw;
  kw.num_keywords = 800;
  kw.object_fraction = 0.05;
  kw.seed = 55;
  const DocumentStore store = GenerateKeywordDataset(graph, kw);
  std::printf("dataset: %zu vertices, %zu POIs\n", graph.NumVertices(),
              store.NumLiveObjects());

  // Build the distance modules.
  Timer timer;
  DijkstraOracle dijkstra(graph);
  ContractionHierarchy ch(graph);
  ChOracle ch_oracle(ch);
  HubLabeling hl(graph, ch);
  HubLabelOracle hl_oracle(hl);
  GTree gtree(graph);
  GTreeOracle gtree_oracle(gtree);
  std::printf("distance modules built in %.1f s\n",
              timer.ElapsedSeconds());

  // A fixed workload of top-10 queries.
  Rng rng(1);
  std::vector<VertexId> query_vertices;
  for (int i = 0; i < 40; ++i) {
    query_vertices.push_back(static_cast<VertexId>(
        rng.UniformInt(0, graph.NumVertices() - 1)));
  }
  const std::vector<KeywordId> keywords = {0, 3};  // Two frequent terms.

  struct Module {
    const char* name;
    DistanceOracle* oracle;
  };
  const std::vector<Module> modules = {
      {"dijkstra", &dijkstra},
      {"contraction hierarchy", &ch_oracle},
      {"hub labels", &hl_oracle},
      {"g-tree", &gtree_oracle},
  };

  std::printf("\n%-24s%12s%14s%14s\n", "module", "index MB", "avg ms",
              "checksum");
  double reference_checksum = -1.0;
  for (const Module& module : modules) {
    // Same dataset, same keyword indexes semantics — new engine per module
    // (each engine owns its store snapshot).
    KSpin engine(graph, store, *module.oracle);
    Timer query_timer;
    double checksum = 0.0;
    for (VertexId q : query_vertices) {
      for (const TopKResult& r : engine.TopK(q, 10, keywords)) {
        checksum += r.score;
      }
    }
    const double avg_ms =
        query_timer.ElapsedMillis() / query_vertices.size();
    std::printf("%-24s%12.2f%14.3f%14.1f\n", module.name,
                module.oracle->MemoryBytes() / (1024.0 * 1024.0), avg_ms,
                checksum);
    if (reference_checksum < 0) {
      reference_checksum = checksum;
    } else if (std::abs(checksum - reference_checksum) > 1e-6) {
      std::printf("  WARNING: module disagreed with the reference!\n");
    }
  }
  std::printf("\nidentical checksums confirm all modules return the same "
              "exact results.\n");
  return 0;
}
