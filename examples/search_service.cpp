// Search service: the string-level facade end-to-end — named POIs,
// free-text boolean queries with AND/OR and parentheses, ranked search,
// live catalogue changes, and route retrieval to the winning POI.
//
// Run: ./example_search_service
#include <cstdio>
#include <string>
#include <vector>

#include "graph/road_network_generator.h"
#include "routing/contraction_hierarchy.h"
#include "service/poi_service.h"

int main() {
  using namespace kspin;

  RoadNetworkOptions road;
  road.grid_width = 60;
  road.grid_height = 60;
  road.seed = 12;
  const Graph graph = GenerateRoadNetwork(road);
  ContractionHierarchy ch(graph);
  ChOracle oracle(ch);
  PoiService service(graph, oracle);

  // Build a small catalogue.
  struct Entry {
    const char* name;
    VertexId vertex;
    std::vector<std::string> tags;
  };
  const std::vector<Entry> catalogue = {
      {"Bangkok Palace", 120, {"thai", "restaurant"}},
      {"Wok To Go", 950, {"thai", "takeaway"}},
      {"Luigi's", 300, {"italian", "restaurant", "pizza"}},
      {"Slice Shack", 1500, {"pizza", "takeaway"}},
      {"Beans & Co", 210, {"cafe", "bakery"}},
      {"Corner Bakery", 2000, {"bakery", "takeaway"}},
      {"Night Owl", 1800, {"bar", "restaurant"}},
  };
  for (const Entry& e : catalogue) {
    service.AddPoi(e.name, e.vertex, e.tags);
  }
  std::printf("catalogue: %zu POIs over a %zu-vertex city\n",
              service.NumLivePois(), graph.NumVertices());

  const VertexId here = 400;
  auto show = [&service](const char* query,
                         const std::vector<PoiResult>& hits) {
    std::printf("\n> %s\n", query);
    if (hits.empty()) std::printf("  (no results)\n");
    for (const PoiResult& hit : hits) {
      std::printf("  %-16s travel %6llu", hit.name.c_str(),
                  static_cast<unsigned long long>(hit.travel_time));
      if (hit.score > 0) std::printf("  score %.1f", hit.score);
      std::printf("\n");
    }
  };

  show("thai and (takeaway or restaurant)",
       service.Search("thai and (takeaway or restaurant)", here, 3));
  show("pizza or bakery", service.Search("pizza or bakery", here, 3));
  show("ranked: pizza takeaway",
       service.SearchRanked("pizza takeaway", here, 3));
  show("sushi (unknown keyword)", service.Search("sushi", here, 3));

  // The catalogue changes: Luigi's closes, the bakery starts selling pizza.
  service.ClosePoi(2);  // Luigi's.
  service.TagPoi(5, "pizza");
  show("pizza (after updates)", service.Search("pizza", here, 3));

  // Route to the best pizza place.
  const auto best = service.Search("pizza", here, 1);
  if (!best.empty()) {
    const VertexId target =
        service.Engine().Store().ObjectVertex(best[0].id);
    const auto path = ch.PathQuery(here, target);
    std::printf("\nroute to %s: %zu road segments, first hops:",
                best[0].name.c_str(), path.size() - 1);
    for (std::size_t i = 0; i < path.size() && i < 6; ++i) {
      std::printf(" %u", path[i]);
    }
    std::printf(" ...\n");
  }
  return 0;
}
