// City-scale local search: the workload the paper's introduction motivates
// ("find the nearest relevant POIs") on a mid-size synthetic city.
//
// Generates a ~30k-vertex road network with a Zipfian keyword corpus, maps
// the most frequent synthetic keywords onto human-readable terms, builds a
// K-SPIN engine, and serves a mix of disjunctive, conjunctive and top-k
// searches, printing per-query work statistics so the lazy-heap behaviour
// is visible.
//
// Run: ./example_city_poi_search
#include <cstdio>
#include <string>
#include <vector>

#include "graph/road_network_generator.h"
#include "kspin/kspin.h"
#include "routing/contraction_hierarchy.h"
#include "text/vocabulary.h"
#include "text/zipf_generator.h"

int main() {
  using namespace kspin;

  RoadNetworkOptions road;
  road.grid_width = 180;
  road.grid_height = 180;
  road.seed = 7;
  const Graph graph = GenerateRoadNetwork(road);

  KeywordDatasetOptions keywords;
  keywords.num_keywords = 1200;
  keywords.object_fraction = 0.05;
  keywords.seed = 7;
  DocumentStore store = GenerateKeywordDataset(graph, keywords);
  std::printf("city: %zu intersections, %zu road segments, %zu POIs\n",
              graph.NumVertices(), graph.NumEdges(),
              store.NumLiveObjects());

  // Human-readable names for the most frequent keyword ids (the generator
  // assigns ids in frequency-rank order).
  Vocabulary vocab;
  const std::vector<std::string> names = {
      "restaurant", "cafe",   "hotel",     "supermarket", "bank",
      "pharmacy",   "school", "petrol",    "bar",         "bakery",
      "thai",       "pizza",  "takeaway",  "gym",         "cinema"};
  for (const std::string& name : names) vocab.AddOrGet(name);
  auto id = [&vocab](const std::string& term) {
    return vocab.IdOf(term);
  };

  ContractionHierarchy ch(graph);
  ChOracle oracle(ch);
  KSpinOptions options;
  options.rho = 5;
  KSpin engine(graph, std::move(store), oracle, options);
  std::printf("keyword indexes: %zu total, %zu with Voronoi structures\n",
              engine.Keywords().NumIndexes(),
              engine.Keywords().NumVoronoiIndexes());

  const VertexId here = static_cast<VertexId>(graph.NumVertices() / 2);
  auto show_stats = [](const QueryStats& stats) {
    std::printf(
        "    [%llu candidates, %llu network distances, %llu lower "
        "bounds]\n",
        static_cast<unsigned long long>(stats.candidates_extracted),
        static_cast<unsigned long long>(
            stats.network_distance_computations),
        static_cast<unsigned long long>(stats.lower_bounds_computed));
  };

  // 1. "Pharmacy or supermarket, whichever is closest" (disjunctive 3NN).
  {
    std::printf("\nnearest pharmacy or supermarket:\n");
    QueryStats stats;
    const std::vector<KeywordId> kw = {id("pharmacy"), id("supermarket")};
    for (const auto& r :
         engine.BooleanKnn(here, 3, kw, BooleanOp::kDisjunctive, &stats)) {
      std::printf("  POI %u, travel time %llu\n", r.object,
                  static_cast<unsigned long long>(r.distance));
    }
    show_stats(stats);
  }

  // 2. "A hotel that also has a restaurant" (conjunctive 3NN).
  {
    std::printf("\nhotels with a restaurant:\n");
    QueryStats stats;
    const std::vector<KeywordId> kw = {id("hotel"), id("restaurant")};
    for (const auto& r :
         engine.BooleanKnn(here, 3, kw, BooleanOp::kConjunctive, &stats)) {
      std::printf("  POI %u, travel time %llu\n", r.object,
                  static_cast<unsigned long long>(r.distance));
    }
    show_stats(stats);
  }

  // 3. Ranked search balancing distance and relevance (top-5).
  {
    std::printf("\ntop-5 for {thai, takeaway, restaurant}:\n");
    QueryStats stats;
    const std::vector<KeywordId> kw = {id("thai"), id("takeaway"),
                                       id("restaurant")};
    for (const auto& r : engine.TopK(here, 5, kw, &stats)) {
      std::printf("  POI %u score %.1f (travel %llu, relevance %.3f)\n",
                  r.object, r.score,
                  static_cast<unsigned long long>(r.distance), r.relevance);
    }
    show_stats(stats);
  }

  // 4. Mixed operators: cafe AND (bakery OR pizza).
  {
    std::printf("\ncafe AND (bakery OR pizza):\n");
    const std::vector<std::vector<KeywordId>> clauses = {
        {id("cafe")}, {id("bakery"), id("pizza")}};
    for (const auto& r : engine.BooleanKnnCnf(here, 3, clauses)) {
      std::printf("  POI %u, travel time %llu\n", r.object,
                  static_cast<unsigned long long>(r.distance));
    }
  }
  return 0;
}
