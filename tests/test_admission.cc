// Unit tests for the deadline-aware admission scheduler
// (server/admission_queue.h): capacity + adaptive-limit bounds, EDF
// dequeue ordering, enqueue-time expiry rejection, the CoDel sojourn
// verdict, close/drain semantics, and concurrent producers/consumers.
// The queue takes `now` and deadlines as parameters, so every scheduling
// decision here is deterministic — no sleeps except where a real
// sojourn must accrue.
#include "server/admission_queue.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace kspin::server {
namespace {

using Clock = AdmissionQueue<int>::Clock;
using std::chrono::milliseconds;

TEST(AdmissionQueueTest, CapacityBoundIsHard) {
  AdmissionQueue<int> queue(2);
  const Clock::time_point now = Clock::now();
  EXPECT_EQ(queue.TryPush(1, {}, now), AdmissionResult::kAdmitted);
  EXPECT_EQ(queue.TryPush(2, {}, now), AdmissionResult::kAdmitted);
  EXPECT_EQ(queue.TryPush(3, {}, now), AdmissionResult::kQueueFull);
  EXPECT_EQ(queue.Size(), 2u);
}

TEST(AdmissionQueueTest, ZeroCapacityAdmitsNothing) {
  AdmissionQueue<int> queue(0);
  EXPECT_EQ(queue.TryPush(1, {}, Clock::now()),
            AdmissionResult::kQueueFull);
  EXPECT_EQ(queue.Size(), 0u);
}

TEST(AdmissionQueueTest, ExpiredDeadlineRejectedAtEnqueue) {
  AdmissionQueue<int> queue(8);
  const Clock::time_point now = Clock::now();
  // Already past and exactly-now deadlines are both doomed work.
  EXPECT_EQ(queue.TryPush(1, now - milliseconds(1), now),
            AdmissionResult::kExpired);
  EXPECT_EQ(queue.TryPush(2, now, now), AdmissionResult::kExpired);
  EXPECT_EQ(queue.Size(), 0u);
  // A future deadline is admitted.
  EXPECT_EQ(queue.TryPush(3, now + milliseconds(50), now),
            AdmissionResult::kAdmitted);
  EXPECT_EQ(queue.Size(), 1u);
}

TEST(AdmissionQueueTest, DequeueIsEarliestDeadlineFirst) {
  AdmissionQueue<int> queue(8);
  const Clock::time_point now = Clock::now();
  // Admit out of deadline order; no-deadline items (0ms) sort last.
  ASSERT_EQ(queue.TryPush(30, now + milliseconds(30), now),
            AdmissionResult::kAdmitted);
  ASSERT_EQ(queue.TryPush(99, {}, now), AdmissionResult::kAdmitted);
  ASSERT_EQ(queue.TryPush(10, now + milliseconds(10), now),
            AdmissionResult::kAdmitted);
  ASSERT_EQ(queue.TryPush(20, now + milliseconds(20), now),
            AdmissionResult::kAdmitted);
  EXPECT_EQ(queue.Pop()->item, 10);
  EXPECT_EQ(queue.Pop()->item, 20);
  EXPECT_EQ(queue.Pop()->item, 30);
  EXPECT_EQ(queue.Pop()->item, 99);
}

TEST(AdmissionQueueTest, EqualDeadlinesAndNoDeadlinesStayFifo) {
  AdmissionQueue<int> queue(8);
  const Clock::time_point now = Clock::now();
  const Clock::time_point deadline = now + milliseconds(10);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(queue.TryPush(int(i), deadline, now),
              AdmissionResult::kAdmitted);
  }
  for (int i = 10; i < 13; ++i) {
    ASSERT_EQ(queue.TryPush(int(i), {}, now), AdmissionResult::kAdmitted);
  }
  // Same deadline: admission order. Then the no-deadline FIFO tail.
  for (int expected : {0, 1, 2, 10, 11, 12}) {
    EXPECT_EQ(queue.Pop()->item, expected);
  }
}

TEST(AdmissionQueueTest, AdaptiveLimitRejectsBeforeCapacity) {
  AdmissionQueue<int> queue(8);
  const Clock::time_point now = Clock::now();
  queue.SetLimit(2);
  EXPECT_EQ(queue.Limit(), 2u);
  EXPECT_EQ(queue.TryPush(1, {}, now), AdmissionResult::kAdmitted);
  EXPECT_EQ(queue.TryPush(2, {}, now), AdmissionResult::kAdmitted);
  // Below capacity (8) but over the soft limit: kLimited, not kQueueFull.
  EXPECT_EQ(queue.TryPush(3, {}, now), AdmissionResult::kLimited);
  // Raising the limit re-opens admission without touching queued items.
  queue.SetLimit(3);
  EXPECT_EQ(queue.TryPush(3, {}, now), AdmissionResult::kAdmitted);
  // The limit clamps into [1, capacity].
  queue.SetLimit(0);
  EXPECT_EQ(queue.Limit(), 1u);
  queue.SetLimit(100);
  EXPECT_EQ(queue.Limit(), 8u);
}

TEST(AdmissionQueueTest, CodelShedsOverstayedItemsWhenCongested) {
  // Target 1 ms, congestion interval 10 ms: after the queue has stayed
  // non-empty for 10 ms, any item that waited > 1 ms pops shed.
  AdmissionQueue<int> queue(8, milliseconds(1), milliseconds(10));
  ASSERT_EQ(queue.TryPush(1, {}, Clock::now()),
            AdmissionResult::kAdmitted);
  ASSERT_EQ(queue.TryPush(2, {}, Clock::now()),
            AdmissionResult::kAdmitted);
  std::this_thread::sleep_for(milliseconds(20));
  const auto first = queue.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->shed);
  EXPECT_GE(first->sojourn, std::chrono::microseconds(10000));
  const auto second = queue.Pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->shed);
}

TEST(AdmissionQueueTest, CodelToleratesSojournWhileUncongested) {
  // Same target, but the queue empties between pushes: the tolerated
  // sojourn stays at the (long) interval, so nothing sheds.
  AdmissionQueue<int> queue(8, milliseconds(1), milliseconds(1000));
  ASSERT_EQ(queue.TryPush(1, {}, Clock::now()),
            AdmissionResult::kAdmitted);
  std::this_thread::sleep_for(milliseconds(20));
  const auto popped = queue.Pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_FALSE(popped->shed);
}

TEST(AdmissionQueueTest, CodelOffByDefault) {
  AdmissionQueue<int> queue(8);
  ASSERT_EQ(queue.TryPush(1, {}, Clock::now()),
            AdmissionResult::kAdmitted);
  std::this_thread::sleep_for(milliseconds(5));
  EXPECT_FALSE(queue.Pop()->shed);
}

TEST(AdmissionQueueTest, SojournIsMeasured) {
  AdmissionQueue<int> queue(4);
  ASSERT_EQ(queue.TryPush(1, {}, Clock::now()),
            AdmissionResult::kAdmitted);
  std::this_thread::sleep_for(milliseconds(5));
  const auto popped = queue.Pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_GE(popped->sojourn, std::chrono::microseconds(4000));
}

TEST(AdmissionQueueTest, CloseDrainsPendingThenReturnsNullopt) {
  AdmissionQueue<int> queue(4);
  const Clock::time_point now = Clock::now();
  ASSERT_EQ(queue.TryPush(1, {}, now), AdmissionResult::kAdmitted);
  ASSERT_EQ(queue.TryPush(2, {}, now), AdmissionResult::kAdmitted);
  queue.Close();
  EXPECT_EQ(queue.TryPush(3, {}, now), AdmissionResult::kClosed);
  EXPECT_EQ(queue.Pop()->item, 1);
  EXPECT_EQ(queue.Pop()->item, 2);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(AdmissionQueueTest, PopBlocksUntilPush) {
  AdmissionQueue<int> queue(4);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    const auto popped = queue.Pop();
    if (popped.has_value() && popped->item == 42) got = true;
  });
  std::this_thread::sleep_for(milliseconds(10));
  EXPECT_FALSE(got.load());
  EXPECT_EQ(queue.TryPush(42, {}, Clock::now()),
            AdmissionResult::kAdmitted);
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(AdmissionQueueTest, ConcurrentProducersConsumers) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  AdmissionQueue<int> queue(64);
  std::atomic<int> admitted{0};
  std::atomic<int> rejected{0};
  std::atomic<long long> popped_sum{0};
  std::atomic<int> popped_count{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto popped = queue.Pop()) {
        popped_sum += popped->item;
        ++popped_count;
      }
    });
  }
  std::vector<std::thread> producers;
  std::atomic<long long> admitted_sum{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int item = p * kPerProducer + i;
        if (queue.TryPush(int(item), {}, Clock::now()) ==
            AdmissionResult::kAdmitted) {
          ++admitted;
          admitted_sum += item;
        } else {
          ++rejected;
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();

  // Every admitted item was delivered exactly once, rejects were never
  // queued, and nothing was invented.
  EXPECT_EQ(popped_count.load(), admitted.load());
  EXPECT_EQ(popped_sum.load(), admitted_sum.load());
  EXPECT_EQ(admitted.load() + rejected.load(), kProducers * kPerProducer);
  EXPECT_EQ(queue.Size(), 0u);
}

}  // namespace
}  // namespace kspin::server
