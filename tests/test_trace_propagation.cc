// End-to-end trace-context propagation tests: a trace id stamped on the
// client side must show up in the flight-recorder spans of every server
// the request touched — through RetryingClient retries, the
// FailoverClient's NOT_PRIMARY redirect, and a RETRY_AFTER (overloaded)
// failover hop — so one grep over `kspin_cli diag` output reconstructs a
// request's whole journey across the deployment.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "routing/contraction_hierarchy.h"
#include "server/client.h"
#include "server/failover.h"
#include "server/flight_recorder.h"
#include "server/retry.h"
#include "server/server.h"
#include "service/poi_service.h"
#include "service/synthetic_catalog.h"
#include "test_util.h"

namespace kspin::server {
namespace {

std::string HexTraceId(std::uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, id);
  return buf;
}

std::size_t CountOccurrences(const std::string& haystack,
                             const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// Spans are recorded after the reply is written (reply_us is part of
/// the span), so a dump taken right after the client saw its response
/// can race the worker by a few microseconds — poll briefly.
bool WaitFor(const std::function<bool()>& predicate) {
  for (int i = 0; i < 500; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return predicate();
}

std::string ScratchDir(const std::string& tag) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("kspin_trace_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

class TracePropagationTest : public ::testing::Test {
 protected:
  TracePropagationTest()
      : graph_(testing::SmallRoadNetwork()), ch_(graph_), oracle_(ch_) {}

  std::unique_ptr<PoiService> MakeService() {
    auto service = std::make_unique<PoiService>(graph_, oracle_);
    SyntheticCatalogOptions catalog;
    catalog.num_pois = 120;
    catalog.num_keywords = 16;
    PopulateSyntheticCatalog(*service, graph_, catalog);
    return service;
  }

  /// Starts a standalone server; returns its index into servers_.
  std::size_t StartServer(ServerOptions options = {}) {
    services_.push_back(MakeService());
    servers_.push_back(
        std::make_unique<Server>(*services_.back(), options));
    servers_.back()->Start();
    return servers_.size() - 1;
  }

  Graph graph_;
  ContractionHierarchy ch_;
  ChOracle oracle_;
  std::vector<std::unique_ptr<PoiService>> services_;
  std::vector<std::unique_ptr<Server>> servers_;
};

TEST_F(TracePropagationTest, ClientTraceContextAppearsInServerSpan) {
  const std::size_t s = StartServer();
  Client client;
  client.Connect("127.0.0.1", servers_[s]->Port());
  TraceContext context;
  context.trace_id = 0x00ABCDEF01234567ull;
  context.parent_span_id = 0x1234123412341234ull;
  context.flags = kTraceFlagSampled;
  client.SetTraceContext(context);
  ASSERT_TRUE(client.Search("kw1", 5, 4).ok());

  ASSERT_TRUE(WaitFor([&] {
    return servers_[s]->Recorder().Dump().find("\"kind\":\"span\"") !=
           std::string::npos;
  }));
  const std::string dump = servers_[s]->Recorder().Dump();
  EXPECT_NE(dump.find("\"trace_id\":\"00abcdef01234567\""),
            std::string::npos);
  EXPECT_NE(dump.find("\"parent_span_id\":\"1234123412341234\""),
            std::string::npos);
  EXPECT_NE(dump.find("\"opcode\":\"SEARCH_BOOLEAN\""), std::string::npos);
  EXPECT_NE(dump.find("\"status\":\"OK\""), std::string::npos);
}

TEST_F(TracePropagationTest, UntracedRequestStillRecordsSpan) {
  const std::size_t s = StartServer();
  Client client;
  client.Connect("127.0.0.1", servers_[s]->Port());
  ASSERT_TRUE(client.Search("kw1", 5, 4).ok());
  ASSERT_TRUE(WaitFor([&] {
    return servers_[s]->Recorder().Dump().find("\"kind\":\"span\"") !=
           std::string::npos;
  }));
  const std::string dump = servers_[s]->Recorder().Dump();
  // The span exists; its trace id is the all-zero "no context" value.
  EXPECT_NE(dump.find("\"opcode\":\"SEARCH_BOOLEAN\""), std::string::npos);
  EXPECT_NE(dump.find("\"trace_id\":\"0000000000000000\""),
            std::string::npos);
}

TEST_F(TracePropagationTest, TraceIdSurvivesRetryingClientRetries) {
  // Token bucket with a 1-token burst and a glacial refill: the first
  // search is admitted, every later one is rate-limited (OVERLOADED),
  // which RetryingClient retries until its attempts run out.
  ServerOptions options;
  options.overload.per_client_qps = 0.001;
  options.overload.per_client_burst = 1.0;
  const std::size_t s = StartServer(options);

  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryingClient client("127.0.0.1", servers_[s]->Port(), policy);
  client.SetSleepFunction([](std::uint32_t) {});
  TraceContext context;
  context.trace_id = 0x00000000FACEFEEDull;
  context.flags = kTraceFlagSampled;
  client.SetTraceContext(context);

  ASSERT_TRUE(client.Search("kw1", 5, 4).ok());  // Consumes the token.
  const auto shed = client.Search("kw2", 5, 4);
  EXPECT_EQ(shed.status, StatusCode::kOverloaded);
  EXPECT_EQ(client.LastAttempts(), 3u);

  // Every rate-limited attempt left an envelope span under the SAME
  // trace id on the shedding server.
  const std::string hex =
      "\"trace_id\":\"" + HexTraceId(context.trace_id) + "\"";
  ASSERT_TRUE(WaitFor([&] {
    return CountOccurrences(servers_[s]->Recorder().Dump(), hex) >= 4;
  }));  // 1 OK + 3 shed attempts.
  const std::string dump = servers_[s]->Recorder().Dump();
  EXPECT_NE(dump.find("\"status\":\"OVERLOADED\""), std::string::npos);
}

TEST_F(TracePropagationTest,
       NotPrimaryRedirectCarriesOneTraceIdAcrossBothNodes) {
  ServerOptions primary_options;
  primary_options.snapshot.dir = ScratchDir("primary");
  const std::size_t primary = StartServer(primary_options);

  ServerOptions replica_options;
  replica_options.snapshot.dir = ScratchDir("replica");
  replica_options.replication.role = ServerRole::kReplica;
  replica_options.replication.primary = {"127.0.0.1",
                                         servers_[primary]->Port()};
  const std::size_t replica = StartServer(replica_options);

  // Only the replica is configured: the write is rejected NOT_PRIMARY
  // there and chased to the primary — one logical operation, one id.
  FailoverClient client({{"127.0.0.1", servers_[replica]->Port()}});
  client.SetSleepFunction([](std::uint32_t) {});
  const std::vector<std::string> keywords = {"kw1"};
  ASSERT_TRUE(client.AddPoi("redirected", 5, keywords).ok());
  const std::uint64_t trace_id = client.LastTraceId();
  ASSERT_NE(trace_id, 0u);
  const std::string hex = "\"trace_id\":\"" + HexTraceId(trace_id) + "\"";

  // Redirecting node: an envelope span for the NOT_PRIMARY rejection.
  const std::string replica_dump = servers_[replica]->Recorder().Dump();
  EXPECT_NE(replica_dump.find(hex), std::string::npos);
  EXPECT_NE(replica_dump.find("\"status\":\"NOT_PRIMARY\""),
            std::string::npos);
  // Serving node: the executed write span, same id.
  ASSERT_TRUE(WaitFor([&] {
    return servers_[primary]->Recorder().Dump().find(hex) !=
           std::string::npos;
  }));
  const std::string primary_dump = servers_[primary]->Recorder().Dump();
  EXPECT_NE(primary_dump.find(hex), std::string::npos);
  EXPECT_NE(primary_dump.find("\"opcode\":\"POI_ADD\""),
            std::string::npos);
}

TEST_F(TracePropagationTest, RetryAfterFailoverHopCarriesTraceId) {
  // Node A sheds all reads after its single burst token is spent; node B
  // is healthy. The second read is refused OVERLOADED (with RETRY_AFTER)
  // on A and hops to B — both recorders must show the same trace id.
  ServerOptions shed_options;
  shed_options.overload.per_client_qps = 0.001;
  shed_options.overload.per_client_burst = 1.0;
  const std::size_t a = StartServer(shed_options);
  const std::size_t b = StartServer();

  RetryPolicy policy;
  policy.max_attempts = 2;
  FailoverClient client({{"127.0.0.1", servers_[a]->Port()},
                         {"127.0.0.1", servers_[b]->Port()}},
                        policy);
  client.SetSleepFunction([](std::uint32_t) {});
  ASSERT_TRUE(client.Search("kw1", 5, 4).ok());  // A's token spent.
  const auto hopped = client.Search("kw2", 5, 4);
  ASSERT_TRUE(hopped.ok());  // Served by B after the hop.
  const std::uint64_t trace_id = client.LastTraceId();
  ASSERT_NE(trace_id, 0u);
  const std::string hex = "\"trace_id\":\"" + HexTraceId(trace_id) + "\"";

  const std::string a_dump = servers_[a]->Recorder().Dump();
  EXPECT_NE(a_dump.find(hex), std::string::npos);
  EXPECT_NE(a_dump.find("\"status\":\"OVERLOADED\""), std::string::npos);
  ASSERT_TRUE(WaitFor([&] {
    return servers_[b]->Recorder().Dump().find(hex) != std::string::npos;
  }));
  const std::string b_dump = servers_[b]->Recorder().Dump();
  EXPECT_NE(b_dump.find(hex), std::string::npos);
  EXPECT_NE(b_dump.find("\"status\":\"OK\""), std::string::npos);
}

TEST_F(TracePropagationTest, DumpDiagOpcodeServesTheRecorder) {
  const std::size_t s = StartServer();
  Client client;
  client.Connect("127.0.0.1", servers_[s]->Port());
  TraceContext context;
  context.trace_id = 0x00000000DEADBEEFull;
  client.SetTraceContext(context);
  ASSERT_TRUE(client.Search("kw1", 5, 4).ok());
  ASSERT_TRUE(WaitFor([&] {
    return servers_[s]->Recorder().Dump().find("\"kind\":\"span\"") !=
           std::string::npos;
  }));

  // The diag dump goes over the wire (DUMP_DIAG) and must carry the same
  // spans the in-process recorder holds.
  const auto reply = client.DumpDiag();
  ASSERT_TRUE(reply.ok());
  EXPECT_NE(reply.text.find("\"trace_id\":\"" +
                            HexTraceId(context.trace_id) + "\""),
            std::string::npos);
  EXPECT_NE(reply.text.find("\"kind\":\"span\""), std::string::npos);
}

}  // namespace
}  // namespace kspin::server
