// Colour quadtree tests: Morton codec, the rho colour bound, point
// location correctness, and space behaviour versus rho (Figure 6a's
// mechanism).
#include <gtest/gtest.h>

#include "common/morton.h"
#include "common/random.h"
#include "nvd/quadtree.h"
#include "nvd/nvd.h"
#include "test_util.h"

namespace kspin {
namespace {

TEST(Morton, EncodeDecodeRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.UniformInt(0, UINT32_MAX));
    const auto y = static_cast<std::uint32_t>(rng.UniformInt(0, UINT32_MAX));
    std::uint32_t dx, dy;
    MortonDecode(MortonEncode(x, y), &dx, &dy);
    EXPECT_EQ(dx, x);
    EXPECT_EQ(dy, y);
  }
}

TEST(Morton, PreservesQuadrantOrder) {
  // Z-order: (0,0) < (1,0) < (0,1) < (1,1) for the lowest bit.
  EXPECT_LT(MortonEncode(0, 0), MortonEncode(1, 0));
  EXPECT_LT(MortonEncode(1, 0), MortonEncode(0, 1));
  EXPECT_LT(MortonEncode(0, 1), MortonEncode(1, 1));
}

TEST(ColorQuadtree, LocateReturnsOwnColor) {
  Graph graph = testing::SmallRoadNetwork();
  Rng rng(2);
  std::vector<std::uint32_t> colors(graph.NumVertices());
  for (auto& c : colors) {
    c = static_cast<std::uint32_t>(rng.UniformInt(0, 20));
  }
  ColorQuadtree tree(graph.Coordinates(), colors, /*max_colors=*/4);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const auto cell = tree.Locate(graph.VertexCoordinate(v));
    EXPECT_TRUE(std::find(cell.begin(), cell.end(), colors[v]) != cell.end())
        << "vertex " << v;
  }
}

TEST(ColorQuadtree, RespectsColorBoundAwayFromMaxDepth) {
  Graph graph = testing::MediumRoadNetwork();
  // Voronoi colours (spatially coherent) keep leaves under the bound.
  Rng rng(3);
  auto sample = rng.SampleWithoutReplacement(
      static_cast<std::uint32_t>(graph.NumVertices()), 40);
  std::vector<VertexId> sites(sample.begin(), sample.end());
  NetworkVoronoiDiagram nvd = BuildNvd(graph, sites);
  const std::uint32_t rho = 5;
  ColorQuadtree tree(graph.Coordinates(), nvd.owner, rho);
  for (VertexId v = 0; v < graph.NumVertices(); v += 3) {
    const auto cell = tree.Locate(graph.VertexCoordinate(v));
    EXPECT_LE(cell.size(), rho) << "vertex " << v;
  }
}

TEST(ColorQuadtree, SmallerRhoMeansMoreLeaves) {
  Graph graph = testing::MediumRoadNetwork();
  Rng rng(4);
  auto sample = rng.SampleWithoutReplacement(
      static_cast<std::uint32_t>(graph.NumVertices()), 60);
  std::vector<VertexId> sites(sample.begin(), sample.end());
  NetworkVoronoiDiagram nvd = BuildNvd(graph, sites);
  ColorQuadtree exact(graph.Coordinates(), nvd.owner, 1);
  ColorQuadtree apx(graph.Coordinates(), nvd.owner, 5);
  // The rho=1 ("exact region quadtree") must be strictly larger — the
  // space saving of Figure 6a.
  EXPECT_GT(exact.NumLeaves(), apx.NumLeaves());
  EXPECT_GT(exact.MemoryBytes(), apx.MemoryBytes());
  EXPECT_GE(exact.MaxLeafDepth(), apx.MaxLeafDepth());
}

TEST(ColorQuadtree, SingleColorYieldsOneLeaf) {
  std::vector<Coordinate> points = {{0, 0}, {100, 0}, {0, 100}, {37, 59}};
  std::vector<std::uint32_t> colors = {7, 7, 7, 7};
  ColorQuadtree tree(points, colors, 3);
  EXPECT_EQ(tree.NumLeaves(), 1u);
  const auto cell = tree.Locate({50, 50});
  ASSERT_EQ(cell.size(), 1u);
  EXPECT_EQ(cell[0], 7u);
}

TEST(ColorQuadtree, CoincidentPointsOfDifferentColorsStopAtMaxDepth) {
  std::vector<Coordinate> points = {{5, 5}, {5, 5}, {5, 5}, {90, 90}};
  std::vector<std::uint32_t> colors = {1, 2, 3, 4};
  ColorQuadtree tree(points, colors, 1, /*max_depth=*/4);
  const auto cell = tree.Locate({5, 5});
  // The coincident cell must still report all colours (> rho is allowed at
  // max depth; correctness beats the bound).
  EXPECT_GE(cell.size(), 3u);
}

TEST(ColorQuadtree, ValidatesInput) {
  std::vector<Coordinate> points = {{0, 0}};
  std::vector<std::uint32_t> colors = {1, 2};
  EXPECT_THROW(ColorQuadtree(points, colors, 2), std::invalid_argument);
  std::vector<std::uint32_t> one = {1};
  EXPECT_THROW(ColorQuadtree(points, one, 0), std::invalid_argument);
  EXPECT_THROW(ColorQuadtree({}, {}, 2), std::invalid_argument);
}

}  // namespace
}  // namespace kspin
