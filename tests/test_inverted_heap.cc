// On-demand inverted heap tests: Property 1 (the heap's MINKEY lower-
// bounds the true distance of every not-yet-extracted object of the
// keyword), complete enumeration, laziness, and tombstone handling.
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "common/random.h"
#include "kspin/inverted_heap.h"
#include "kspin/keyword_index.h"
#include "routing/alt.h"
#include "routing/dijkstra.h"
#include "test_util.h"

namespace kspin {
namespace {

class InvertedHeapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = testing::SmallRoadNetwork();
    store_ = testing::TestDocuments(graph_, 40, 0.25, 71);
    inverted_ = std::make_unique<InvertedIndex>(store_, 40);
    alt_ = std::make_unique<AltIndex>(graph_, 8);
    KeywordIndexOptions options;
    options.nvd.rho = 4;
    options.num_threads = 2;
    keyword_index_ = std::make_unique<KeywordIndex>(graph_, store_,
                                                    *inverted_, options);
    generator_ =
        std::make_unique<HeapGenerator>(*keyword_index_, *alt_);
  }

  // True network distances from q to every object of keyword t.
  std::unordered_map<ObjectId, Distance> TrueDistances(KeywordId t,
                                                       VertexId q) {
    DijkstraWorkspace workspace(graph_.NumVertices());
    const auto& dist = workspace.SingleSource(graph_, q);
    std::unordered_map<ObjectId, Distance> result;
    for (ObjectId o : inverted_->Objects(t)) {
      result[o] = dist[store_.ObjectVertex(o)];
    }
    return result;
  }

  // A keyword whose inverted list is at least `min_size` long.
  KeywordId FrequentKeyword(std::size_t min_size) {
    for (KeywordId t = 0; t < inverted_->NumKeywords(); ++t) {
      if (inverted_->ListSize(t) >= min_size) return t;
    }
    ADD_FAILURE() << "no keyword with list size >= " << min_size;
    return 0;
  }

  Graph graph_;
  DocumentStore store_;
  std::unique_ptr<InvertedIndex> inverted_;
  std::unique_ptr<AltIndex> alt_;
  std::unique_ptr<KeywordIndex> keyword_index_;
  std::unique_ptr<HeapGenerator> generator_;
};

TEST_F(InvertedHeapTest, PropertyOneHoldsThroughoutExtraction) {
  const KeywordId t = FrequentKeyword(15);
  Rng rng(81);
  for (int trial = 0; trial < 5; ++trial) {
    const VertexId q =
        static_cast<VertexId>(rng.UniformInt(0, graph_.NumVertices() - 1));
    auto true_dist = TrueDistances(t, q);
    InvertedHeap heap = generator_->Make(t, q);
    std::set<ObjectId> extracted;
    while (!heap.Empty()) {
      const Distance min_key = heap.MinKey();
      // Property 1: every object of inv(t) not yet extracted has true
      // distance >= MINKEY.
      for (const auto& [o, d] : true_dist) {
        if (!extracted.contains(o)) {
          ASSERT_GE(d, min_key) << "object " << o << " q=" << q;
        }
      }
      extracted.insert(heap.ExtractMin().object);
    }
  }
}

TEST_F(InvertedHeapTest, EnumeratesExactlyTheInvertedList) {
  const KeywordId t = FrequentKeyword(10);
  InvertedHeap heap = generator_->Make(t, 7);
  std::set<ObjectId> extracted;
  while (!heap.Empty()) {
    EXPECT_TRUE(extracted.insert(heap.ExtractMin().object).second)
        << "duplicate extraction";
  }
  std::set<ObjectId> expected(inverted_->Objects(t).begin(),
                              inverted_->Objects(t).end());
  EXPECT_EQ(extracted, expected);
}

TEST_F(InvertedHeapTest, LowerBoundsNeverExceedTrueDistance) {
  const KeywordId t = FrequentKeyword(10);
  const VertexId q = 42;
  auto true_dist = TrueDistances(t, q);
  InvertedHeap heap = generator_->Make(t, q);
  while (!heap.Empty()) {
    const InvertedHeap::Candidate c = heap.ExtractMin();
    EXPECT_LE(c.lower_bound, true_dist.at(c.object));
    EXPECT_EQ(c.vertex, store_.ObjectVertex(c.object));
  }
}

TEST_F(InvertedHeapTest, PopulatesLazily) {
  // A frequent keyword's heap should not pay lower bounds for the whole
  // inverted list when only the first candidate is consumed.
  const KeywordId t = FrequentKeyword(20);
  InvertedHeap heap = generator_->Make(t, 3);
  heap.ExtractMin();
  EXPECT_LT(heap.Stats().lower_bounds_computed, inverted_->ListSize(t))
      << "heap was populated eagerly";
}

TEST_F(InvertedHeapTest, CountsBatchFlushesAndReusesPooledScratch) {
  const KeywordId t = FrequentKeyword(10);
  InvertedHeap::Scratch scratch;
  for (int pass = 0; pass < 2; ++pass) {  // Second pass reuses the pool.
    InvertedHeap heap = generator_->Make(t, 11, &scratch);
    while (!heap.Empty()) heap.ExtractMin();
    const HeapStats& stats = heap.Stats();
    // Every staged frontier is priced as one flush: items must add up to
    // the total lower-bound count, and each flush stages at least one.
    EXPECT_GE(stats.lb_batch_calls, 1u);
    EXPECT_EQ(stats.lb_batch_items, stats.lower_bounds_computed);
    EXPECT_GE(stats.lb_batch_items, stats.lb_batch_calls);
    EXPECT_EQ(stats.insertions, inverted_->ListSize(t));
  }
}

TEST_F(InvertedHeapTest, PooledAndOwnedScratchExtractIdentically) {
  const KeywordId t = FrequentKeyword(10);
  const VertexId q = 23;
  InvertedHeap::Scratch scratch;
  InvertedHeap pooled = generator_->Make(t, q, &scratch);
  InvertedHeap owned = generator_->Make(t, q);
  while (!pooled.Empty() && !owned.Empty()) {
    const auto a = pooled.ExtractMin();
    const auto b = owned.ExtractMin();
    ASSERT_EQ(a.object, b.object);
    ASSERT_EQ(a.lower_bound, b.lower_bound);
  }
  EXPECT_EQ(pooled.Empty(), owned.Empty());
}

TEST_F(InvertedHeapTest, EmptyKeywordYieldsEmptyHeap) {
  // Keyword universe extends beyond used ids.
  InvertedHeap heap = generator_->Make(39, 0);
  if (inverted_->ListSize(39) == 0) {
    EXPECT_TRUE(heap.Empty());
    EXPECT_EQ(heap.MinKey(), kInfDistance);
  }
}

TEST_F(InvertedHeapTest, DeletedObjectsAreFlaggedButStillExpand) {
  const KeywordId t = FrequentKeyword(8);
  const ObjectId victim = inverted_->Objects(t)[0];
  // Tombstone in the keyword's APX-NVD only (as the framework would).
  const_cast<ApxNvd*>(keyword_index_->Index(t))->Delete(victim);
  InvertedHeap heap = generator_->Make(t, 5);
  std::size_t live = 0, dead = 0;
  while (!heap.Empty()) {
    const auto c = heap.ExtractMin();
    if (c.object == victim) {
      EXPECT_TRUE(c.deleted);
      ++dead;
    } else {
      EXPECT_FALSE(c.deleted);
      ++live;
    }
  }
  EXPECT_EQ(dead, 1u);
  EXPECT_EQ(live, inverted_->ListSize(t) - 1);
}

}  // namespace
}  // namespace kspin
