// Baseline correctness: every competitor (G-tree spatial keyword in both
// variants, ROAD-style overlay, FS-FBS) must return exact results — the
// paper's comparison is about *cost*, not accuracy — all validated against
// the network-expansion brute force.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/fs_fbs.h"
#include "baselines/gtree_spatial_keyword.h"
#include "baselines/network_expansion.h"
#include "baselines/road.h"
#include "routing/contraction_hierarchy.h"
#include "routing/gtree.h"
#include "routing/hub_labeling.h"
#include "test_util.h"
#include "text/query_workload.h"

namespace kspin {
namespace {

class BaselineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = testing::SmallRoadNetwork(9);
    store_ = testing::TestDocuments(graph_, 50, 0.2, 109);
    inverted_ = std::make_unique<InvertedIndex>(store_, 50);
    relevance_ = std::make_unique<RelevanceModel>(store_, *inverted_);
    GTreeOptions gt;
    gt.leaf_size = 32;
    gt.num_threads = 2;
    gtree_ = std::make_unique<GTree>(graph_, gt);
    expansion_ = std::make_unique<NetworkExpansionBaseline>(
        graph_, store_, *inverted_, *relevance_);
    workload_ = MakeWorkload();
  }

  std::vector<SpatialKeywordQuery> MakeWorkload() {
    WorkloadOptions wl;
    wl.vector_lengths = {1, 2, 3};
    wl.num_seed_terms = 3;
    wl.objects_per_term = 2;
    wl.vertices_per_vector = 3;
    QueryWorkload workload(graph_, store_, *inverted_, wl);
    std::vector<SpatialKeywordQuery> queries;
    for (std::uint32_t len : wl.vector_lengths) {
      const auto batch = workload.QueriesForLength(len);
      queries.insert(queries.end(), batch.begin(), batch.end());
    }
    return queries;
  }

  Graph graph_;
  DocumentStore store_;
  std::unique_ptr<InvertedIndex> inverted_;
  std::unique_ptr<RelevanceModel> relevance_;
  std::unique_ptr<GTree> gtree_;
  std::unique_ptr<NetworkExpansionBaseline> expansion_;
  std::vector<SpatialKeywordQuery> workload_;
};

TEST_F(BaselineFixture, GtreeSpatialKeywordTopKExact) {
  for (bool opt : {false, true}) {
    GTreeSpatialKeyword baseline(graph_, *gtree_, store_, *inverted_,
                                 *relevance_, opt);
    for (const auto& query : workload_) {
      auto got = baseline.TopK(query.vertex, 5, query.keywords);
      auto expected = expansion_->TopK(query.vertex, 5, query.keywords);
      ASSERT_EQ(got.size(), expected.size())
          << "opt=" << opt << " q=" << query.vertex;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i].score, expected[i].score,
                    1e-9 * std::max(1.0, expected[i].score))
            << "opt=" << opt << " rank " << i;
      }
    }
  }
}

TEST_F(BaselineFixture, GtreeSpatialKeywordBknnExact) {
  for (bool opt : {false, true}) {
    GTreeSpatialKeyword baseline(graph_, *gtree_, store_, *inverted_,
                                 *relevance_, opt);
    for (const auto& query : workload_) {
      for (BooleanOp op :
           {BooleanOp::kDisjunctive, BooleanOp::kConjunctive}) {
        auto got = baseline.BooleanKnn(query.vertex, 4, query.keywords, op);
        auto expected =
            expansion_->BooleanKnn(query.vertex, 4, query.keywords, op);
        ASSERT_EQ(got.size(), expected.size()) << "opt=" << opt;
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].distance, expected[i].distance)
              << "opt=" << opt << " rank " << i;
        }
      }
    }
  }
}

TEST_F(BaselineFixture, RoadTopKAndBknnExact) {
  GTreeSpatialKeyword aggregates_holder(graph_, *gtree_, store_, *inverted_,
                                        *relevance_, false);
  RoadBaseline road(graph_, *gtree_, store_, *relevance_,
                    aggregates_holder.Aggregates());
  for (const auto& query : workload_) {
    auto got_topk = road.TopK(query.vertex, 5, query.keywords);
    auto expected_topk = expansion_->TopK(query.vertex, 5, query.keywords);
    ASSERT_EQ(got_topk.size(), expected_topk.size()) << "q=" << query.vertex;
    for (std::size_t i = 0; i < got_topk.size(); ++i) {
      EXPECT_NEAR(got_topk[i].score, expected_topk[i].score,
                  1e-9 * std::max(1.0, expected_topk[i].score));
    }
    for (BooleanOp op : {BooleanOp::kDisjunctive, BooleanOp::kConjunctive}) {
      auto got = road.BooleanKnn(query.vertex, 4, query.keywords, op);
      auto expected =
          expansion_->BooleanKnn(query.vertex, 4, query.keywords, op);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].distance, expected[i].distance) << "rank " << i;
      }
    }
  }
}

TEST_F(BaselineFixture, FsFbsBknnExact) {
  ContractionHierarchy ch(graph_);
  HubLabeling labels(graph_, ch, 2);
  FsFbsOptions options;
  options.frequent_threshold = 8;  // Exercise both paths on the test data.
  FsFbs fsfbs(graph_, labels, store_, *inverted_, options);
  for (const auto& query : workload_) {
    for (BooleanOp op : {BooleanOp::kDisjunctive, BooleanOp::kConjunctive}) {
      auto got = fsfbs.BooleanKnn(query.vertex, 4, query.keywords, op);
      auto expected =
          expansion_->BooleanKnn(query.vertex, 4, query.keywords, op);
      ASSERT_EQ(got.size(), expected.size()) << "q=" << query.vertex;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].distance, expected[i].distance) << "rank " << i;
      }
    }
  }
}

TEST_F(BaselineFixture, FsFbsMemoryBudgetGuardFires) {
  ContractionHierarchy ch(graph_);
  HubLabeling labels(graph_, ch, 2);
  FsFbsOptions options;
  options.max_backward_entries = 10;  // Far below any real label count.
  EXPECT_THROW(FsFbs(graph_, labels, store_, *inverted_, options),
               std::runtime_error);
}

TEST_F(BaselineFixture, NodeAggregatesAreConsistent) {
  NodeKeywordAggregates aggregates(*gtree_, store_);
  // Root pseudo-document covers exactly the keywords of all live objects.
  for (KeywordId t = 0; t < inverted_->NumKeywords(); ++t) {
    EXPECT_EQ(aggregates.NodeContains(gtree_->RootNode(), t),
              inverted_->ListSize(t) > 0)
        << "keyword " << t;
  }
  // Frequencies aggregate bottom-up: root frequency equals the corpus sum.
  std::vector<std::uint64_t> corpus(inverted_->NumKeywords(), 0);
  for (ObjectId o = 0; o < store_.NumSlots(); ++o) {
    if (!store_.IsLive(o)) continue;
    for (const DocEntry& e : store_.Document(o)) {
      corpus[e.keyword] += e.frequency;
    }
  }
  for (KeywordId t = 0; t < inverted_->NumKeywords(); ++t) {
    EXPECT_EQ(aggregates.NodeFrequency(gtree_->RootNode(), t), corpus[t]);
  }
  // Keyword occupancy masks refine plain occupancy.
  for (GTree::NodeId n = 0; n < gtree_->NumNodes(); ++n) {
    if (gtree_->IsLeaf(n)) continue;
    for (KeywordId t = 0; t < inverted_->NumKeywords(); t += 7) {
      const std::uint32_t mask = aggregates.KeywordOccupancyMask(n, t);
      EXPECT_EQ(mask & ~aggregates.OccupancyMask(n), 0u)
          << "keyword mask not a subset of occupancy at node " << n;
    }
  }
}

TEST_F(BaselineFixture, GtreeOptDoesNotBeatAggregationOnMatrixOps) {
  // Section 7.4.2's finding: per-keyword occurrence lists do not reduce
  // matrix operations, because the hierarchy is still evaluated to the
  // same depth. Allow a little slack for borderline pruning differences.
  GTreeSpatialKeyword original(graph_, *gtree_, store_, *inverted_,
                               *relevance_, false);
  GTreeSpatialKeyword optimized(graph_, *gtree_, store_, *inverted_,
                                *relevance_, true);
  std::uint64_t ops_original = 0, ops_optimized = 0;
  for (const auto& query : workload_) {
    gtree_->ResetMatrixOps();
    original.TopK(query.vertex, 5, query.keywords);
    ops_original += gtree_->MatrixOps();
    gtree_->ResetMatrixOps();
    optimized.TopK(query.vertex, 5, query.keywords);
    ops_optimized += gtree_->MatrixOps();
  }
  EXPECT_LE(ops_optimized, ops_original);
  EXPECT_GE(ops_optimized * 10, ops_original * 7)
      << "opt should not dramatically reduce matrix ops";
}

}  // namespace
}  // namespace kspin
