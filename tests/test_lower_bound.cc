// Lower Bounding Module tests: the Euclidean heuristic and the tightest-of
// composite must stay admissible (never exceed true distances) — the
// property every heap and pseudo-bound proof rests on.
#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "kspin/kspin.h"
#include "routing/alt.h"
#include "routing/contraction_hierarchy.h"
#include "routing/dijkstra.h"
#include "routing/lower_bound.h"
#include "test_util.h"

namespace kspin {
namespace {

TEST(EuclideanLowerBound, AdmissibleEverywhere) {
  Graph graph = testing::SmallRoadNetwork(71);
  EuclideanLowerBound euclid(graph);
  EXPECT_GT(euclid.CostRatio(), 0.0);
  DijkstraWorkspace workspace(graph.NumVertices());
  Rng rng(72);
  for (int i = 0; i < 20; ++i) {
    const VertexId s =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    const auto& dist = workspace.SingleSource(graph, s);
    for (VertexId t = 0; t < graph.NumVertices(); t += 19) {
      ASSERT_LE(euclid.LowerBound(s, t), dist[t])
          << "s=" << s << " t=" << t;
    }
  }
}

TEST(EuclideanLowerBound, NonTrivialOnStraightLines) {
  Graph graph = testing::SmallRoadNetwork(73);
  EuclideanLowerBound euclid(graph);
  // The bound must be positive for distinct, distant vertices.
  std::size_t positive = 0, total = 0;
  Rng rng(74);
  for (int i = 0; i < 200; ++i) {
    const VertexId s =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    const VertexId t =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    if (s == t) continue;
    ++total;
    if (euclid.LowerBound(s, t) > 0) ++positive;
  }
  EXPECT_GT(positive, total * 9 / 10);
  EXPECT_EQ(euclid.LowerBound(5, 5), 0u);
}

TEST(EuclideanLowerBound, RequiresCoordinates) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 1);
  Graph graph = builder.Build();
  EXPECT_THROW(EuclideanLowerBound{graph}, std::invalid_argument);
}

TEST(MaxLowerBound, DominatesItsChildrenAndStaysAdmissible) {
  Graph graph = testing::SmallRoadNetwork(75);
  AltIndex alt(graph, 4);
  EuclideanLowerBound euclid(graph);
  MaxLowerBound composite({&alt, &euclid});
  EXPECT_EQ(composite.Name(), "max(alt,euclidean)");
  EXPECT_GE(composite.MemoryBytes(), alt.MemoryBytes());
  DijkstraWorkspace workspace(graph.NumVertices());
  Rng rng(76);
  for (int i = 0; i < 10; ++i) {
    const VertexId s =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    const auto& dist = workspace.SingleSource(graph, s);
    for (VertexId t = 0; t < graph.NumVertices(); t += 23) {
      const Distance lb = composite.LowerBound(s, t);
      ASSERT_LE(lb, dist[t]);
      ASSERT_GE(lb, alt.LowerBound(s, t));
      ASSERT_GE(lb, euclid.LowerBound(s, t));
    }
  }
}

TEST(MaxLowerBound, RejectsEmptyChildList) {
  EXPECT_THROW(MaxLowerBound{{}}, std::invalid_argument);
}

// LowerBoundBatch must be value-identical to the per-pair loop for every
// module: the inverted heaps mix both granularities on the same heap, so
// any divergence would corrupt extraction order.
TEST(LowerBoundBatch, MatchesPerPairForEveryModule) {
  Graph graph = testing::SmallRoadNetwork(78);
  AltIndex alt(graph, 5);
  EuclideanLowerBound euclid(graph);
  const MaxLowerBound alt_only({&alt});          // Devirtualized ALT path.
  const MaxLowerBound composite({&alt, &euclid});
  const std::vector<const LowerBoundModule*> modules = {&alt, &euclid,
                                                        &alt_only, &composite};
  Rng rng(79);
  const VertexId src =
      static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
  std::vector<VertexId> targets(41);
  for (VertexId& t : targets) {
    t = static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
  }
  targets.push_back(src);  // s == t must come back as 0.
  for (const LowerBoundModule* module : modules) {
    std::vector<Distance> out(targets.size(), ~Distance{0});
    module->LowerBoundBatch(src, targets, out);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      ASSERT_EQ(out[i], module->LowerBound(src, targets[i]))
          << module->Name() << " target=" << targets[i];
    }
  }
  EXPECT_EQ(alt_only.Name(), "max(alt)");
}

TEST(KSpinEuclideanComposite, QueriesStayExactAndDoNoMoreWork) {
  Graph graph = testing::SmallRoadNetwork(77);
  DocumentStore store = testing::TestDocuments(graph, 40, 0.2, 177);
  ContractionHierarchy ch(graph);
  ChOracle oracle(ch);

  KSpinOptions plain_options;
  plain_options.num_landmarks = 4;  // Weak ALT so the heuristic matters.
  KSpin plain(graph, store, oracle, plain_options);
  KSpinOptions composite_options = plain_options;
  composite_options.use_euclidean_heuristic = true;
  KSpin composite(graph, store, oracle, composite_options);
  EXPECT_EQ(composite.LowerBounds().Name(), "max(alt,euclidean)");

  std::vector<KeywordId> keywords;
  for (KeywordId t = 0; t < plain.Inverted().NumKeywords() &&
                        keywords.size() < 2;
       ++t) {
    if (plain.Inverted().ListSize(t) >= 8) keywords.push_back(t);
  }
  ASSERT_EQ(keywords.size(), 2u);
  std::uint64_t plain_ndist = 0, composite_ndist = 0;
  for (VertexId q = 0; q < graph.NumVertices(); q += 37) {
    QueryStats plain_stats, composite_stats;
    auto a = plain.BooleanKnn(q, 5, keywords, BooleanOp::kDisjunctive,
                              &plain_stats);
    auto b = composite.BooleanKnn(q, 5, keywords, BooleanOp::kDisjunctive,
                                  &composite_stats);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].distance, b[i].distance);
    }
    plain_ndist += plain_stats.network_distance_computations;
    composite_ndist += composite_stats.network_distance_computations;
  }
  // Tighter bounds can only reduce distance computations.
  EXPECT_LE(composite_ndist, plain_ndist);
}

}  // namespace
}  // namespace kspin
