// Tests for the ALT landmark index: the Lower Bounding Module must never
// overestimate a distance (Property 1 of the inverted heaps depends on it).
#include <gtest/gtest.h>

#include "common/random.h"
#include "routing/alt.h"
#include "routing/dijkstra.h"
#include "test_util.h"

namespace kspin {
namespace {

class AltLowerBoundProperty
    : public ::testing::TestWithParam<LandmarkStrategy> {};

TEST_P(AltLowerBoundProperty, NeverExceedsTrueDistance) {
  Graph graph = testing::SmallRoadNetwork();
  AltIndex alt(graph, 8, GetParam());
  DijkstraWorkspace workspace(graph.NumVertices());
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    const VertexId s =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    const auto& dist = workspace.SingleSource(graph, s);
    for (VertexId t = 0; t < graph.NumVertices(); t += 17) {
      EXPECT_LE(alt.LowerBound(s, t), dist[t])
          << "s=" << s << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, AltLowerBoundProperty,
                         ::testing::Values(LandmarkStrategy::kFarthest,
                                           LandmarkStrategy::kRandom));

TEST(AltIndex, ExactAtLandmarks) {
  Graph graph = testing::SmallRoadNetwork();
  AltIndex alt(graph, 6);
  DijkstraWorkspace workspace(graph.NumVertices());
  for (VertexId landmark : alt.Landmarks()) {
    const auto& dist = workspace.SingleSource(graph, landmark);
    for (VertexId t = 0; t < graph.NumVertices(); t += 23) {
      EXPECT_EQ(alt.LowerBound(landmark, t), dist[t]);
    }
  }
}

TEST(AltIndex, SelfLowerBoundIsZero) {
  Graph graph = testing::SmallRoadNetwork();
  AltIndex alt(graph, 4);
  for (VertexId v = 0; v < graph.NumVertices(); v += 31) {
    EXPECT_EQ(alt.LowerBound(v, v), 0u);
  }
}

TEST(AltIndex, SymmetricOnUndirectedGraphs) {
  Graph graph = testing::SmallRoadNetwork();
  AltIndex alt(graph, 4);
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const VertexId s =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    const VertexId t =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    EXPECT_EQ(alt.LowerBound(s, t), alt.LowerBound(t, s));
  }
}

TEST(AltIndex, FarthestLandmarksAreSpread) {
  Graph graph = testing::SmallRoadNetwork();
  AltIndex alt(graph, 5, LandmarkStrategy::kFarthest);
  const auto& landmarks = alt.Landmarks();
  // All distinct.
  for (std::size_t i = 0; i < landmarks.size(); ++i) {
    for (std::size_t j = i + 1; j < landmarks.size(); ++j) {
      EXPECT_NE(landmarks[i], landmarks[j]);
    }
  }
}

TEST(AltIndex, MoreLandmarksTightenBounds) {
  Graph graph = testing::MediumRoadNetwork();
  AltIndex small(graph, 2, LandmarkStrategy::kFarthest, 3);
  AltIndex large(graph, 16, LandmarkStrategy::kFarthest, 3);
  Rng rng(7);
  std::uint64_t improved = 0, total = 0;
  double small_sum = 0, large_sum = 0;
  for (int i = 0; i < 300; ++i) {
    const VertexId s =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    const VertexId t =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    const Distance lb_small = small.LowerBound(s, t);
    const Distance lb_large = large.LowerBound(s, t);
    EXPECT_GE(lb_large, lb_small);  // Superset of landmarks: never worse.
    small_sum += static_cast<double>(lb_small);
    large_sum += static_cast<double>(lb_large);
    if (lb_large > lb_small) ++improved;
    ++total;
  }
  EXPECT_GT(large_sum, small_sum);
  EXPECT_GT(improved, total / 10);
}

TEST(AltIndex, ValidatesArguments) {
  Graph graph = testing::TinyGrid();
  EXPECT_THROW(AltIndex(graph, 0), std::invalid_argument);
  // Requesting more landmarks than vertices clamps instead of throwing.
  AltIndex alt(graph, 100);
  EXPECT_EQ(alt.Landmarks().size(), graph.NumVertices());
}

}  // namespace
}  // namespace kspin
