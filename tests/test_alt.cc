// Tests for the ALT landmark index: the Lower Bounding Module must never
// overestimate a distance (Property 1 of the inverted heaps depends on it),
// and every SIMD batch kernel must be bit-identical to the scalar loop.
#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "common/random.h"
#include "routing/alt.h"
#include "routing/alt_kernels.h"
#include "routing/dijkstra.h"
#include "test_util.h"

namespace kspin {
namespace {

class AltLowerBoundProperty
    : public ::testing::TestWithParam<LandmarkStrategy> {};

TEST_P(AltLowerBoundProperty, NeverExceedsTrueDistance) {
  Graph graph = testing::SmallRoadNetwork();
  AltIndex alt(graph, 8, GetParam());
  DijkstraWorkspace workspace(graph.NumVertices());
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    const VertexId s =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    const auto& dist = workspace.SingleSource(graph, s);
    for (VertexId t = 0; t < graph.NumVertices(); t += 17) {
      EXPECT_LE(alt.LowerBound(s, t), dist[t])
          << "s=" << s << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, AltLowerBoundProperty,
                         ::testing::Values(LandmarkStrategy::kFarthest,
                                           LandmarkStrategy::kRandom));

TEST(AltIndex, ExactAtLandmarks) {
  Graph graph = testing::SmallRoadNetwork();
  AltIndex alt(graph, 6);
  DijkstraWorkspace workspace(graph.NumVertices());
  for (VertexId landmark : alt.Landmarks()) {
    const auto& dist = workspace.SingleSource(graph, landmark);
    for (VertexId t = 0; t < graph.NumVertices(); t += 23) {
      EXPECT_EQ(alt.LowerBound(landmark, t), dist[t]);
    }
  }
}

TEST(AltIndex, SelfLowerBoundIsZero) {
  Graph graph = testing::SmallRoadNetwork();
  AltIndex alt(graph, 4);
  for (VertexId v = 0; v < graph.NumVertices(); v += 31) {
    EXPECT_EQ(alt.LowerBound(v, v), 0u);
  }
}

TEST(AltIndex, SymmetricOnUndirectedGraphs) {
  Graph graph = testing::SmallRoadNetwork();
  AltIndex alt(graph, 4);
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const VertexId s =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    const VertexId t =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    EXPECT_EQ(alt.LowerBound(s, t), alt.LowerBound(t, s));
  }
}

TEST(AltIndex, FarthestLandmarksAreSpread) {
  Graph graph = testing::SmallRoadNetwork();
  AltIndex alt(graph, 5, LandmarkStrategy::kFarthest);
  const auto& landmarks = alt.Landmarks();
  // All distinct.
  for (std::size_t i = 0; i < landmarks.size(); ++i) {
    for (std::size_t j = i + 1; j < landmarks.size(); ++j) {
      EXPECT_NE(landmarks[i], landmarks[j]);
    }
  }
}

TEST(AltIndex, MoreLandmarksTightenBounds) {
  Graph graph = testing::MediumRoadNetwork();
  AltIndex small(graph, 2, LandmarkStrategy::kFarthest, 3);
  AltIndex large(graph, 16, LandmarkStrategy::kFarthest, 3);
  Rng rng(7);
  std::uint64_t improved = 0, total = 0;
  double small_sum = 0, large_sum = 0;
  for (int i = 0; i < 300; ++i) {
    const VertexId s =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    const VertexId t =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    const Distance lb_small = small.LowerBound(s, t);
    const Distance lb_large = large.LowerBound(s, t);
    EXPECT_GE(lb_large, lb_small);  // Superset of landmarks: never worse.
    small_sum += static_cast<double>(lb_small);
    large_sum += static_cast<double>(lb_large);
    if (lb_large > lb_small) ++improved;
    ++total;
  }
  EXPECT_GT(large_sum, small_sum);
  EXPECT_GT(improved, total / 10);
}

// Every kernel this binary can run (scalar, SSE2, AVX2, AVX-512 where the
// CPU supports them) must produce bit-identical bounds to the per-pair
// scalar loop, across landmark counts that exercise row padding (m not a
// multiple of any vector width), s == t pairs, and landmark vertices.
TEST(AltKernels, EveryKernelMatchesPerPairScalar) {
  Graph graph = testing::SmallRoadNetwork(90);
  Rng rng(91);
  const auto kernels = detail::AvailableAltKernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_STREQ(kernels.front().name, "scalar");
  for (const std::uint32_t m : {3u, 5u, 8u, 13u, 16u}) {
    AltIndex alt(graph, m);
    ASSERT_EQ(alt.RowStride() % 8, 0u);
    ASSERT_GE(alt.RowStride(), alt.Landmarks().size());
    for (const VertexId src :
         {alt.Landmarks().front(),
          static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1))}) {
      // Padding lanes must be zero so they contribute |0-0| = 0.
      const auto row = alt.LandmarkRow(src);
      for (std::size_t l = alt.Landmarks().size(); l < row.size(); ++l) {
        ASSERT_EQ(row[l], 0u);
      }
      // 57 random targets (odd: not a multiple of any lane count), the
      // source itself, and every landmark.
      std::vector<VertexId> targets;
      for (int i = 0; i < 57; ++i) {
        targets.push_back(
            static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1)));
      }
      targets.push_back(src);
      for (const VertexId l : alt.Landmarks()) targets.push_back(l);

      std::vector<Distance> expected(targets.size());
      for (std::size_t i = 0; i < targets.size(); ++i) {
        expected[i] = alt.LowerBound(src, targets[i]);
      }
      const Distance* rows = alt.LandmarkRow(0).data();
      for (const auto& kernel : kernels) {
        std::vector<Distance> out(targets.size(), 0xdead);
        kernel.fn(alt.LandmarkRow(src).data(), rows, alt.RowStride(),
                  targets.data(), targets.size(), out.data());
        for (std::size_t i = 0; i < targets.size(); ++i) {
          ASSERT_EQ(out[i], expected[i])
              << kernel.name << " m=" << m << " src=" << src
              << " target=" << targets[i];
        }
      }
    }
  }
}

TEST(AltKernels, SelectedKernelIsListedAndHandlesEmptyBlocks) {
  const auto kernels = detail::AvailableAltKernels();
  bool listed = false;
  for (const auto& kernel : kernels) {
    if (std::string_view(kernel.name) == detail::AltBatchKernelName()) {
      listed = true;
      EXPECT_EQ(kernel.fn, detail::AltBatchKernel());
    }
  }
  EXPECT_TRUE(listed) << detail::AltBatchKernelName();

  Graph graph = testing::TinyGrid();
  AltIndex alt(graph, 2);
  alt.LowerBoundBatch(0, {}, {});  // Empty block: must be a no-op.
}

TEST(AltIndex, BatchMatchesPerPairThroughPublicApi) {
  Graph graph = testing::SmallRoadNetwork(92);
  AltIndex alt(graph, 7);
  Rng rng(93);
  std::vector<VertexId> targets(33);
  for (VertexId& t : targets) {
    t = static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
  }
  std::vector<Distance> out(targets.size());
  const VertexId src =
      static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
  alt.LowerBoundBatch(src, targets, out);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_EQ(out[i], alt.LowerBound(src, targets[i]));
  }
}

TEST(AltIndex, ValidatesArguments) {
  Graph graph = testing::TinyGrid();
  EXPECT_THROW(AltIndex(graph, 0), std::invalid_argument);
  // Requesting more landmarks than vertices clamps instead of throwing.
  AltIndex alt(graph, 100);
  EXPECT_EQ(alt.Landmarks().size(), graph.NumVertices());
}

}  // namespace
}  // namespace kspin
