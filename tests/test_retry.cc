// Unit tests for the RetryPolicy backoff math in RetryingClient: jitter
// bounds, determinism of the seeded stream, max_total_ms budget clamping,
// and the zero-retry edge cases. All tests run against a port with no
// listener (connect fails instantly), so the retry loop is exercised
// without a server and the injected sleep function records exactly the
// backoffs the policy computed.
#include "server/retry.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "server/client.h"

namespace kspin::server {
namespace {

/// A loopback port that (almost certainly) refuses connections: bind an
/// ephemeral port, learn its number, close it again. Nothing re-listens
/// within a test's lifetime, so connects fail with ECONNREFUSED.
std::uint16_t ClosedPort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

/// Runs one Ping against a dead endpoint under `policy`, returning the
/// backoffs the client slept between attempts.
std::vector<std::uint32_t> CollectBackoffs(const RetryPolicy& policy,
                                           std::uint32_t* attempts = nullptr) {
  RetryingClient client("127.0.0.1", ClosedPort(), policy);
  std::vector<std::uint32_t> sleeps;
  client.SetSleepFunction(
      [&sleeps](std::uint32_t ms) { sleeps.push_back(ms); });
  EXPECT_THROW(client.Ping(), ClientError);
  if (attempts != nullptr) *attempts = client.LastAttempts();
  return sleeps;
}

TEST(RetryPolicyTest, BackoffsStayWithinJitterBounds) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_ms = 100;
  policy.max_backoff_ms = 1000;
  policy.multiplier = 2.0;
  std::uint32_t attempts = 0;
  const auto sleeps = CollectBackoffs(policy, &attempts);
  EXPECT_EQ(attempts, 6u);
  // The final attempt throws without sleeping, so N attempts produce N-1
  // backoffs.
  ASSERT_EQ(sleeps.size(), 5u);
  for (std::size_t i = 0; i < sleeps.size(); ++i) {
    const std::uint32_t base = static_cast<std::uint32_t>(std::min<double>(
        policy.max_backoff_ms,
        policy.initial_backoff_ms * std::pow(policy.multiplier, i)));
    EXPECT_GE(sleeps[i], base / 2) << "attempt " << i;
    EXPECT_LE(sleeps[i], base) << "attempt " << i;
  }
  // The cap must actually engage: attempts 4 and 5 have uncapped bases of
  // 1600/3200 ms but may never sleep past max_backoff_ms.
  EXPECT_LE(sleeps[4], policy.max_backoff_ms);
}

TEST(RetryPolicyTest, SameSeedSameBackoffs) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.jitter_seed = 12345;
  const auto first = CollectBackoffs(policy);
  const auto second = CollectBackoffs(policy);
  EXPECT_EQ(first, second);

  policy.jitter_seed = 54321;
  const auto other = CollectBackoffs(policy);
  // Different stream. (Equality would need every one of four uniform
  // draws to collide — deterministically false for these two seeds.)
  EXPECT_NE(first, other);
}

TEST(RetryPolicyTest, BudgetClampsFinalAttempt) {
  // With injected no-op sleeps, budget consumption is exactly the sum of
  // computed backoffs: 25..50, 50..100, 100..200, ... ms. A 60 ms budget
  // funds attempt 1 always (<= 50 used) and is exhausted at latest after
  // attempt 2 — far below the 8 attempts the count limit would allow.
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_ms = 50;
  policy.max_total_ms = 60;
  std::uint32_t attempts = 0;
  CollectBackoffs(policy, &attempts);
  EXPECT_GE(attempts, 2u);
  EXPECT_LE(attempts, 3u);
}

TEST(RetryPolicyTest, TinyBudgetStillMakesOneAttempt) {
  // Even a budget smaller than the first backoff must not prevent the
  // first attempt — budgets bound retries, not the operation itself.
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_ms = 50;
  policy.max_total_ms = 1;
  std::uint32_t attempts = 0;
  const auto sleeps = CollectBackoffs(policy, &attempts);
  EXPECT_EQ(attempts, 1u);
  EXPECT_TRUE(sleeps.empty());
}

TEST(RetryPolicyTest, SingleAttemptNeverSleeps) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  std::uint32_t attempts = 0;
  const auto sleeps = CollectBackoffs(policy, &attempts);
  EXPECT_EQ(attempts, 1u);
  EXPECT_TRUE(sleeps.empty());
}

}  // namespace
}  // namespace kspin::server
