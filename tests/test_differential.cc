// Differential fuzz harness: random graphs, random Zipf datasets, random
// queries (including degenerate ones), random update interleavings — every
// engine must agree with the brute-force expansion baseline on result
// sizes, distances, and scores. This is the repository's broadest
// regression net.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/fs_fbs.h"
#include "baselines/gtree_spatial_keyword.h"
#include "baselines/network_expansion.h"
#include "baselines/road.h"
#include "common/random.h"
#include "graph/road_network_generator.h"
#include "kspin/kspin.h"
#include "routing/contraction_hierarchy.h"
#include "routing/gtree.h"
#include "routing/hub_labeling.h"
#include "text/zipf_generator.h"

namespace kspin {
namespace {

struct FuzzCase {
  std::uint64_t seed;
};

class DifferentialFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(DifferentialFuzz, AllEnginesAgree) {
  Rng rng(GetParam().seed);

  // Random graph shape.
  RoadNetworkOptions road;
  road.grid_width = static_cast<std::uint32_t>(rng.UniformInt(8, 24));
  road.grid_height = static_cast<std::uint32_t>(rng.UniformInt(8, 24));
  road.edge_keep_probability = 0.7 + rng.UniformDouble() * 0.3;
  road.diagonal_fraction = rng.UniformDouble() * 0.05;
  road.arterial_spacing = static_cast<std::uint32_t>(rng.UniformInt(0, 6));
  road.seed = GetParam().seed * 31 + 1;
  const Graph graph = GenerateRoadNetwork(road);

  // Random dataset shape.
  KeywordDatasetOptions kw;
  kw.num_keywords = static_cast<std::uint32_t>(rng.UniformInt(10, 80));
  kw.object_fraction = 0.05 + rng.UniformDouble() * 0.3;
  kw.min_doc_keywords = 1;
  kw.max_doc_keywords = static_cast<std::uint32_t>(rng.UniformInt(2, 9));
  kw.zipf_alpha = 0.6 + rng.UniformDouble();
  kw.seed = GetParam().seed * 31 + 2;
  DocumentStore store = GenerateKeywordDataset(graph, kw);

  // All distance techniques + engines.
  ContractionHierarchy ch(graph);
  ChOracle ch_oracle(ch);
  HubLabeling hl(graph, ch, 2);
  GTreeOptions gt;
  gt.leaf_size = static_cast<std::uint32_t>(rng.UniformInt(8, 48));
  gt.strategy = rng.Bernoulli(0.5) ? PartitionStrategy::kKdTree
                                   : PartitionStrategy::kBfsGrowth;
  GTree gtree(graph, gt);
  InvertedIndex inverted(store, kw.num_keywords);
  RelevanceModel relevance(store, inverted);
  NetworkExpansionBaseline expansion(graph, store, inverted, relevance);
  GTreeSpatialKeyword gtree_sk(graph, gtree, store, inverted, relevance,
                               false);
  GTreeSpatialKeyword gtree_opt(graph, gtree, store, inverted, relevance,
                                true);
  RoadBaseline road_baseline(graph, gtree, store, relevance,
                             gtree_sk.Aggregates());
  FsFbsOptions fso;
  fso.frequent_threshold =
      static_cast<std::uint32_t>(rng.UniformInt(2, 30));
  fso.block_size = static_cast<std::uint32_t>(rng.UniformInt(1, 32));
  FsFbs fsfbs(graph, hl, store, inverted, fso);
  KSpinOptions kso;
  kso.rho = static_cast<std::uint32_t>(rng.UniformInt(1, 8));
  kso.num_landmarks = static_cast<std::uint32_t>(rng.UniformInt(2, 12));
  KSpin kspin(graph, store, ch_oracle, kso);

  // Random queries.
  for (int trial = 0; trial < 25; ++trial) {
    const VertexId q =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    const auto k = static_cast<std::uint32_t>(rng.UniformInt(1, 12));
    std::vector<KeywordId> keywords;
    const auto num_terms = rng.UniformInt(1, 4);
    for (std::uint64_t i = 0; i < num_terms; ++i) {
      // Mostly real keywords; occasionally out-of-corpus ones.
      keywords.push_back(static_cast<KeywordId>(
          rng.UniformInt(0, kw.num_keywords + 3)));
    }
    const BooleanOp op = rng.Bernoulli(0.5) ? BooleanOp::kDisjunctive
                                            : BooleanOp::kConjunctive;

    const auto want = expansion.BooleanKnn(q, k, keywords, op);
    auto check_bknn = [&](const std::vector<BkNNResult>& got,
                          const char* engine) {
      ASSERT_EQ(got.size(), want.size())
          << engine << " seed=" << GetParam().seed << " trial=" << trial;
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].distance, want[i].distance)
            << engine << " seed=" << GetParam().seed << " trial=" << trial
            << " rank=" << i;
      }
    };
    check_bknn(kspin.BooleanKnn(q, k, keywords, op), "kspin");
    check_bknn(gtree_sk.BooleanKnn(q, k, keywords, op), "gtree_sk");
    check_bknn(gtree_opt.BooleanKnn(q, k, keywords, op), "gtree_opt");
    check_bknn(road_baseline.BooleanKnn(q, k, keywords, op), "road");
    check_bknn(fsfbs.BooleanKnn(q, k, keywords, op), "fsfbs");

    const auto want_topk = expansion.TopK(q, k, keywords);
    auto check_topk = [&](const std::vector<TopKResult>& got,
                          const char* engine) {
      ASSERT_EQ(got.size(), want_topk.size())
          << engine << " seed=" << GetParam().seed << " trial=" << trial;
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i].score, want_topk[i].score,
                    1e-9 * std::max(1.0, want_topk[i].score))
            << engine << " seed=" << GetParam().seed << " trial=" << trial
            << " rank=" << i;
      }
    };
    check_topk(kspin.TopK(q, k, keywords), "kspin");
    check_topk(gtree_sk.TopK(q, k, keywords), "gtree_sk");
    check_topk(gtree_opt.TopK(q, k, keywords), "gtree_opt");
    check_topk(road_baseline.TopK(q, k, keywords), "road");
  }
}

TEST_P(DifferentialFuzz, KspinAgreesThroughRandomUpdates) {
  Rng rng(GetParam().seed * 7 + 5);
  RoadNetworkOptions road;
  road.grid_width = 14;
  road.grid_height = 14;
  road.seed = GetParam().seed;
  const Graph graph = GenerateRoadNetwork(road);
  KeywordDatasetOptions kw;
  kw.num_keywords = 25;
  kw.object_fraction = 0.2;
  kw.seed = GetParam().seed;
  DocumentStore store = GenerateKeywordDataset(graph, kw);

  ContractionHierarchy ch(graph);
  ChOracle oracle(ch);
  KSpinOptions kso;
  kso.rho = static_cast<std::uint32_t>(rng.UniformInt(1, 6));
  kso.lazy_insert_threshold =
      static_cast<std::uint32_t>(rng.UniformInt(1, 12));
  KSpin engine(graph, store, oracle, kso);
  std::vector<ObjectId> live;
  for (ObjectId o = 0; o < engine.Store().NumSlots(); ++o) live.push_back(o);

  for (int step = 0; step < 40; ++step) {
    // Random mutation.
    const double dice = rng.UniformDouble();
    if (dice < 0.45 || live.empty()) {
      const KeywordId t = static_cast<KeywordId>(rng.UniformInt(0, 24));
      live.push_back(engine.InsertObject(
          static_cast<VertexId>(
              rng.UniformInt(0, graph.NumVertices() - 1)),
          {{t, static_cast<std::uint32_t>(rng.UniformInt(1, 3))}}));
    } else if (dice < 0.7) {
      const std::size_t pick = rng.UniformInt(0, live.size() - 1);
      engine.DeleteObject(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (dice < 0.85) {
      const std::size_t pick = rng.UniformInt(0, live.size() - 1);
      engine.AddKeywordToObject(
          live[pick], static_cast<KeywordId>(rng.UniformInt(0, 24)));
    } else {
      engine.MaintainIndexes();
    }

    // Verify a random query against a fresh brute force.
    InvertedIndex inverted(engine.Store(),
                           engine.Inverted().NumKeywords());
    RelevanceModel relevance(engine.Store(), inverted);
    NetworkExpansionBaseline expansion(graph, engine.Store(), inverted,
                                       relevance);
    const VertexId q =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    std::vector<KeywordId> keywords = {
        static_cast<KeywordId>(rng.UniformInt(0, 24)),
        static_cast<KeywordId>(rng.UniformInt(0, 24))};
    const BooleanOp op = rng.Bernoulli(0.5) ? BooleanOp::kDisjunctive
                                            : BooleanOp::kConjunctive;
    const auto got = engine.BooleanKnn(q, 4, keywords, op);
    const auto want = expansion.BooleanKnn(q, 4, keywords, op);
    ASSERT_EQ(got.size(), want.size()) << "step=" << step;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].distance, want[i].distance)
          << "step=" << step << " rank=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Values(FuzzCase{1}, FuzzCase{2},
                                           FuzzCase{3}, FuzzCase{4},
                                           FuzzCase{5}, FuzzCase{6},
                                           FuzzCase{7}, FuzzCase{8},
                                           FuzzCase{9}, FuzzCase{10}));

}  // namespace
}  // namespace kspin
