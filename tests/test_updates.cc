// Dynamic update tests (paper Section 6.2): lazy insertions via Theorem-2
// affected sets, tombstone deletions, keyword add/remove, rebuild
// thresholds — queries must stay exact through every mutation.
#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"

#include "baselines/network_expansion.h"
#include "kspin/kspin.h"
#include "nvd/apx_nvd.h"
#include "routing/contraction_hierarchy.h"
#include "routing/dijkstra.h"
#include "test_util.h"

namespace kspin {
namespace {

class UpdateFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = testing::SmallRoadNetwork(15);
    store_ = testing::TestDocuments(graph_, 40, 0.2, 115);
    ch_ = std::make_unique<ContractionHierarchy>(graph_);
    oracle_ = std::make_unique<ChOracle>(*ch_);
    KSpinOptions options;
    options.rho = 4;
    options.num_threads = 2;
    options.lazy_insert_threshold = 16;
    engine_ = std::make_unique<KSpin>(graph_, store_, *oracle_, options);
  }

  // Brute-force checker reflecting the engine's CURRENT store.
  std::vector<BkNNResult> Expected(VertexId q, std::uint32_t k,
                                   std::span<const KeywordId> keywords,
                                   BooleanOp op) {
    InvertedIndex inverted(engine_->Store(),
                           engine_->Inverted().NumKeywords());
    RelevanceModel relevance(engine_->Store(), inverted);
    NetworkExpansionBaseline expansion(graph_, engine_->Store(), inverted,
                                       relevance);
    return expansion.BooleanKnn(q, k, keywords, op);
  }

  void ExpectConsistent(std::span<const KeywordId> keywords) {
    for (VertexId q = 1; q < graph_.NumVertices(); q += 53) {
      for (BooleanOp op :
           {BooleanOp::kDisjunctive, BooleanOp::kConjunctive}) {
        auto got = engine_->BooleanKnn(q, 5, keywords, op);
        auto expected = Expected(q, 5, keywords, op);
        ASSERT_EQ(got.size(), expected.size()) << "q=" << q;
        for (std::size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i].distance, expected[i].distance)
              << "q=" << q << " rank " << i;
        }
      }
    }
  }

  KeywordId FrequentKeyword(std::size_t min_size = 10) {
    for (KeywordId t = 0; t < engine_->Inverted().NumKeywords(); ++t) {
      if (engine_->Inverted().ListSize(t) >= min_size) return t;
    }
    ADD_FAILURE();
    return 0;
  }

  Graph graph_;
  DocumentStore store_;
  std::unique_ptr<ContractionHierarchy> ch_;
  std::unique_ptr<ChOracle> oracle_;
  std::unique_ptr<KSpin> engine_;
};

TEST_F(UpdateFixture, InsertionsKeepQueriesExact) {
  const KeywordId t = FrequentKeyword();
  const std::vector<KeywordId> keywords = {t};
  // Insert a batch of objects carrying keyword t at fresh vertices.
  for (int i = 0; i < 10; ++i) {
    const VertexId v = static_cast<VertexId>((i * 997 + 13) %
                                             graph_.NumVertices());
    engine_->InsertObject(v, {{t, 1}, {static_cast<KeywordId>(i % 5), 2}});
    ExpectConsistent(keywords);
  }
}

TEST_F(UpdateFixture, DeletionsKeepQueriesExact) {
  const KeywordId t = FrequentKeyword();
  const std::vector<KeywordId> keywords = {t};
  // Delete half of the keyword's objects.
  std::vector<ObjectId> victims(engine_->Inverted().Objects(t).begin(),
                                engine_->Inverted().Objects(t).end());
  for (std::size_t i = 0; i < victims.size(); i += 2) {
    engine_->DeleteObject(victims[i]);
    ExpectConsistent(keywords);
  }
}

TEST_F(UpdateFixture, MixedInsertDeleteAddRemoveKeyword) {
  const KeywordId t = FrequentKeyword();
  const KeywordId other = FrequentKeyword(3);
  const std::vector<KeywordId> keywords = {t, other};

  const ObjectId fresh = engine_->InsertObject(17, {{t, 2}});
  engine_->AddKeywordToObject(fresh, other);
  ExpectConsistent(keywords);

  engine_->RemoveKeywordFromObject(fresh, t);
  ExpectConsistent(keywords);

  const ObjectId victim = engine_->Inverted().Objects(t)[0];
  engine_->DeleteObject(victim);
  ExpectConsistent(keywords);

  engine_->AddKeywordToObject(fresh, t, 3);
  ExpectConsistent(keywords);
}

TEST_F(UpdateFixture, TopKStaysExactAfterUpdates) {
  const KeywordId t = FrequentKeyword();
  const KeywordId other = FrequentKeyword(5);
  const std::vector<KeywordId> keywords = {t, other};
  for (int i = 0; i < 6; ++i) {
    engine_->InsertObject(
        static_cast<VertexId>((i * 577 + 7) % graph_.NumVertices()),
        {{t, 1}, {other, 1}});
  }
  InvertedIndex inverted(engine_->Store(), engine_->Inverted().NumKeywords());
  RelevanceModel relevance(engine_->Store(), inverted);
  NetworkExpansionBaseline expansion(graph_, engine_->Store(), inverted,
                                     relevance);
  for (VertexId q = 2; q < graph_.NumVertices(); q += 71) {
    auto got = engine_->TopK(q, 5, keywords);
    auto expected = expansion.TopK(q, 5, keywords);
    ASSERT_EQ(got.size(), expected.size()) << "q=" << q;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_NEAR(got[i].score, expected[i].score,
                  1e-9 * std::max(1.0, expected[i].score))
          << "q=" << q << " rank " << i;
    }
  }
}

TEST_F(UpdateFixture, RebuildAbsorbsLazyUpdatesAndStaysExact) {
  const KeywordId t = FrequentKeyword();
  const std::vector<KeywordId> keywords = {t};
  for (int i = 0; i < 20; ++i) {
    engine_->InsertObject(
        static_cast<VertexId>((i * 331 + 3) % graph_.NumVertices()),
        {{t, 1}});
  }
  const ApxNvd* index = engine_->Keywords().Index(t);
  ASSERT_NE(index, nullptr);
  EXPECT_TRUE(index->NeedsRebuild());  // 20 > threshold of 16.
  const std::size_t rebuilt = engine_->MaintainIndexes();
  EXPECT_GE(rebuilt, 1u);
  EXPECT_FALSE(index->NeedsRebuild());
  EXPECT_EQ(index->NumLazyInserts(), 0u);
  ExpectConsistent(keywords);
}

TEST_F(UpdateFixture, NewKeywordGrowsUniverse) {
  const KeywordId fresh_keyword =
      static_cast<KeywordId>(engine_->Inverted().NumKeywords() + 5);
  const ObjectId o = engine_->InsertObject(9, {{fresh_keyword, 1}});
  const std::vector<KeywordId> keywords = {fresh_keyword};
  auto results = engine_->BooleanKnn(9, 1, keywords,
                                     BooleanOp::kDisjunctive);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].object, o);
  EXPECT_EQ(results[0].distance, 0u);
}

TEST(ApxNvdUpdates, AffectedSetsFollowTheorem2) {
  Graph graph = testing::SmallRoadNetwork(16);
  ContractionHierarchy ch(graph);
  ChOracle oracle(ch);
  // Build an index over 30 random sites.
  Rng rng(117);
  auto sample = rng.SampleWithoutReplacement(
      static_cast<std::uint32_t>(graph.NumVertices()), 31);
  std::vector<SiteObject> sites;
  for (std::uint32_t i = 0; i < 30; ++i) {
    sites.push_back({i, sample[i]});
  }
  ApxNvdOptions options;
  options.rho = 4;
  ApxNvd nvd(graph, sites, options);

  nvd.Insert(999, sample[30], oracle);
  EXPECT_GE(nvd.LastAffectedSetSize(), 1u);
  // The affected set is a small local neighbourhood, not the whole index.
  EXPECT_LT(nvd.LastAffectedSetSize(), sites.size());

  // The inserted object must now surface near its vertex: its own vertex's
  // initial candidates or their expansions must include it. More simply,
  // the 1NN query semantics: object 999 is at distance 0 from sample[30].
  std::vector<SiteObject> candidates;
  nvd.InitialCandidates(sample[30], &candidates);
  bool found = false;
  for (const SiteObject& c : candidates) {
    if (c.object == 999) found = true;
  }
  EXPECT_TRUE(found) << "lazily inserted object missing from candidates at "
                        "its own vertex";
  EXPECT_THROW(nvd.Insert(999, sample[30], oracle), std::invalid_argument);
}

TEST(ApxNvdUpdates, DeleteValidation) {
  Graph graph = testing::TinyGrid();
  std::vector<SiteObject> sites = {{0, 0}, {1, 8}};
  ApxNvd nvd(graph, sites, {});
  EXPECT_THROW(nvd.Delete(77), std::invalid_argument);
  nvd.Delete(0);
  EXPECT_TRUE(nvd.IsDeleted(0));
  EXPECT_THROW(nvd.Delete(0), std::invalid_argument);
  EXPECT_EQ(nvd.NumLiveObjects(), 1u);
}

TEST(ApxNvdUpdates, FlatIndexGrowsIntoVoronoiOnRebuild) {
  Graph graph = testing::SmallRoadNetwork(17);
  ContractionHierarchy ch(graph);
  ChOracle oracle(ch);
  ApxNvdOptions options;
  options.rho = 3;
  options.lazy_insert_threshold = 4;
  std::vector<SiteObject> sites = {{0, 5}, {1, 9}};
  ApxNvd nvd(graph, sites, options);
  EXPECT_FALSE(nvd.HasVoronoi());
  for (std::uint32_t i = 0; i < 10; ++i) {
    nvd.Insert(100 + i, static_cast<VertexId>(20 + i * 7), oracle);
  }
  EXPECT_TRUE(nvd.NeedsRebuild());
  nvd.Rebuild();
  EXPECT_TRUE(nvd.HasVoronoi());  // 12 live objects > rho.
  EXPECT_EQ(nvd.NumLiveObjects(), 12u);
}

}  // namespace
}  // namespace kspin
