// ROAD-overlay-specific behaviour: the bypass machinery must actually skip
// irrelevant regions (fewer settles than plain expansion) while remaining
// exact — exactness itself is covered by test_baselines and the fuzz
// suite.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/gtree_spatial_keyword.h"
#include "baselines/network_expansion.h"
#include "baselines/road.h"
#include "routing/gtree.h"
#include "test_util.h"

namespace kspin {
namespace {

class RoadBypassTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = testing::MediumRoadNetwork(77);
    // A sparse keyword: most Rnets contain no relevant object, so the
    // bypass machinery gets plenty of opportunities.
    KeywordDatasetOptions kw;
    kw.num_keywords = 400;
    kw.object_fraction = 0.05;
    kw.seed = 77;
    store_ = GenerateKeywordDataset(graph_, kw);
    inverted_ = std::make_unique<InvertedIndex>(store_, 400);
    relevance_ = std::make_unique<RelevanceModel>(store_, *inverted_);
    GTreeOptions gt;
    gt.leaf_size = 64;
    gtree_ = std::make_unique<GTree>(graph_, gt);
    aggregates_holder_ = std::make_unique<GTreeSpatialKeyword>(
        graph_, *gtree_, store_, *inverted_, *relevance_, false);
    road_ = std::make_unique<RoadBaseline>(
        graph_, *gtree_, store_, *relevance_,
        aggregates_holder_->Aggregates());
    expansion_ = std::make_unique<NetworkExpansionBaseline>(
        graph_, store_, *inverted_, *relevance_);
  }

  KeywordId SparseKeyword() {
    for (KeywordId t = 50; t < inverted_->NumKeywords(); ++t) {
      if (inverted_->ListSize(t) >= 3 && inverted_->ListSize(t) <= 8) {
        return t;
      }
    }
    ADD_FAILURE();
    return 0;
  }

  Graph graph_;
  DocumentStore store_;
  std::unique_ptr<InvertedIndex> inverted_;
  std::unique_ptr<RelevanceModel> relevance_;
  std::unique_ptr<GTree> gtree_;
  std::unique_ptr<GTreeSpatialKeyword> aggregates_holder_;
  std::unique_ptr<RoadBaseline> road_;
  std::unique_ptr<NetworkExpansionBaseline> expansion_;
};

TEST_F(RoadBypassTest, BypassSettlesFewerVerticesThanExpansion) {
  const std::vector<KeywordId> keywords = {SparseKeyword()};
  std::uint64_t road_settles = 0, expansion_settles = 0;
  for (VertexId q = 5; q < graph_.NumVertices(); q += 301) {
    QueryStats road_stats, expansion_stats;
    const auto got = road_->BooleanKnn(q, 2, keywords,
                                       BooleanOp::kDisjunctive,
                                       &road_stats);
    const auto want = expansion_->BooleanKnn(
        q, 2, keywords, BooleanOp::kDisjunctive, &expansion_stats);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].distance, want[i].distance);
    }
    road_settles += road_stats.candidates_extracted;
    expansion_settles += expansion_stats.candidates_extracted;
  }
  // The overlay must pay substantially fewer settles on sparse keywords.
  EXPECT_LT(road_settles * 2, expansion_settles)
      << "ROAD bypass is not skipping irrelevant Rnets";
}

TEST_F(RoadBypassTest, DenseKeywordsLimitBypassing) {
  // With the most frequent keyword nearly every Rnet is relevant, so ROAD
  // degenerates towards plain expansion (the aggregation weakness).
  const std::vector<KeywordId> dense = {0};
  QueryStats road_stats;
  road_->BooleanKnn(9, 2, dense, BooleanOp::kDisjunctive, &road_stats);
  const std::vector<KeywordId> sparse = {SparseKeyword()};
  QueryStats sparse_stats;
  road_->BooleanKnn(9, 2, sparse, BooleanOp::kDisjunctive, &sparse_stats);
  // Dense keyword: results found quickly nearby (few settles). Sparse
  // keyword: found far away, but bypassing keeps settles bounded. Both
  // should complete without scanning a large fraction of the graph.
  EXPECT_LT(road_stats.candidates_extracted, graph_.NumVertices() / 2);
  EXPECT_LT(sparse_stats.candidates_extracted, graph_.NumVertices() / 2);
}

TEST_F(RoadBypassTest, OverlayMemoryGrowsWithUse) {
  EXPECT_EQ(road_->MemoryBytes(),
            road_->MemoryBytes());  // Deterministic accessor.
  const std::size_t before = road_->MemoryBytes();
  const std::vector<KeywordId> keywords = {SparseKeyword()};
  road_->BooleanKnn(3, 2, keywords, BooleanOp::kDisjunctive);
  EXPECT_GE(road_->MemoryBytes(), before);  // Shortcut cache fills lazily.
}

}  // namespace
}  // namespace kspin
