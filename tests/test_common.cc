// Tests for the common utilities: seeded RNG draws, sampling, timers.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/random.h"
#include "common/timer.h"

namespace kspin {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
  EXPECT_EQ(rng.UniformInt(5, 5), 5u);
  EXPECT_THROW(rng.UniformInt(6, 5), std::invalid_argument);
}

TEST(Rng, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndComplete) {
  Rng rng(10);
  // Sparse sample (rejection path).
  auto sparse = rng.SampleWithoutReplacement(10000, 50);
  std::set<std::uint32_t> sparse_set(sparse.begin(), sparse.end());
  EXPECT_EQ(sparse_set.size(), 50u);
  for (auto v : sparse) EXPECT_LT(v, 10000u);
  // Dense sample (shuffle path).
  auto dense = rng.SampleWithoutReplacement(60, 55);
  std::set<std::uint32_t> dense_set(dense.begin(), dense.end());
  EXPECT_EQ(dense_set.size(), 55u);
  // Full population.
  auto all = rng.SampleWithoutReplacement(20, 20);
  EXPECT_EQ(std::set<std::uint32_t>(all.begin(), all.end()).size(), 20u);
  EXPECT_THROW(rng.SampleWithoutReplacement(5, 6), std::invalid_argument);
}

TEST(Timer, MeasuresElapsedTimeMonotonically) {
  Timer timer;
  const double t0 = timer.ElapsedSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  const double t1 = timer.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  EXPECT_GT(t1, t0);
  EXPECT_GE(timer.ElapsedMillis(), 15.0 * 0.5);  // Generous slack.
  timer.Restart();
  EXPECT_LT(timer.ElapsedMillis(), 15.0);
}

TEST(AccumulatingTimer, SumsIntervals) {
  AccumulatingTimer timer;
  EXPECT_EQ(timer.TotalSeconds(), 0.0);
  timer.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  timer.Stop();
  const double first = timer.TotalSeconds();
  EXPECT_GT(first, 0.0);
  timer.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  timer.Stop();
  EXPECT_GT(timer.TotalSeconds(), first);
  timer.Reset();
  EXPECT_EQ(timer.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace kspin
