// Concurrency tests: parallel batch execution must return exactly the
// results of serial execution, for every query, on every oracle backend —
// and must do so without data races (this test is part of the TSan CI
// job). The Dijkstra oracle doubles as the distance ground truth.
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kspin/kspin.h"
#include "kspin/query_processor.h"
#include "routing/contraction_hierarchy.h"
#include "routing/dijkstra.h"
#include "routing/hub_labeling.h"
#include "service/parallel_executor.h"
#include "service/poi_service.h"
#include "test_util.h"

namespace kspin {
namespace {

constexpr unsigned kThreads = 4;
constexpr std::uint32_t kNumKeywords = 60;

// Deterministic mixed workload over the test keyword universe.
std::vector<ParallelQueryExecutor::BooleanKnnQuery> BknnWorkload(
    const Graph& graph, std::size_t count) {
  std::vector<ParallelQueryExecutor::BooleanKnnQuery> queries(count);
  for (std::size_t i = 0; i < count; ++i) {
    queries[i].vertex =
        static_cast<VertexId>((i * 37 + 5) % graph.NumVertices());
    queries[i].k = 3 + static_cast<std::uint32_t>(i % 5);
    queries[i].keywords = {static_cast<KeywordId>(i % kNumKeywords),
                           static_cast<KeywordId>((i * 7 + 3) % kNumKeywords)};
    queries[i].op = (i % 3 == 0) ? BooleanOp::kConjunctive
                                 : BooleanOp::kDisjunctive;
  }
  return queries;
}

std::vector<ParallelQueryExecutor::TopKQuery> TopKWorkload(
    const Graph& graph, std::size_t count) {
  std::vector<ParallelQueryExecutor::TopKQuery> queries(count);
  for (std::size_t i = 0; i < count; ++i) {
    queries[i].vertex =
        static_cast<VertexId>((i * 53 + 11) % graph.NumVertices());
    queries[i].k = 2 + static_cast<std::uint32_t>(i % 6);
    queries[i].keywords = {static_cast<KeywordId>((i * 5) % kNumKeywords),
                           static_cast<KeywordId>((i * 11 + 1) % kNumKeywords),
                           static_cast<KeywordId>((i * 3 + 7) % kNumKeywords)};
  }
  return queries;
}

void ExpectSameTopK(const std::vector<TopKResult>& a,
                    const std::vector<TopKResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].object, b[i].object);
    EXPECT_EQ(a[i].distance, b[i].distance);
    // Scores come from identical arithmetic on identical inputs, so exact
    // floating-point equality is the assertion, not a tolerance.
    EXPECT_EQ(a[i].score, b[i].score);
    EXPECT_EQ(a[i].relevance, b[i].relevance);
  }
}

class ConcurrencyTest : public ::testing::Test {
 protected:
  ConcurrencyTest()
      : graph_(testing::SmallRoadNetwork()),
        store_(testing::TestDocuments(graph_, kNumKeywords)) {}

  Graph graph_;
  DocumentStore store_;
};

TEST_F(ConcurrencyTest, ParallelBatchMatchesSerialOnDijkstra) {
  DijkstraOracle oracle(graph_);
  KSpin engine(graph_, store_, oracle);
  const auto bknn = BknnWorkload(graph_, 48);
  const auto topk = TopKWorkload(graph_, 48);

  ParallelQueryExecutor executor(engine, kThreads);
  const auto parallel_bknn = executor.BooleanKnnBatch(bknn);
  const auto parallel_topk = executor.TopKBatch(topk);

  for (std::size_t i = 0; i < bknn.size(); ++i) {
    const auto serial = engine.BooleanKnn(bknn[i].vertex, bknn[i].k,
                                          bknn[i].keywords, bknn[i].op);
    EXPECT_EQ(parallel_bknn[i], serial) << "bknn query " << i;
  }
  for (std::size_t i = 0; i < topk.size(); ++i) {
    const auto serial =
        engine.TopK(topk[i].vertex, topk[i].k, topk[i].keywords);
    ExpectSameTopK(parallel_topk[i], serial);
  }
}

TEST_F(ConcurrencyTest, ChBackendMatchesSerialAndDijkstraGroundTruth) {
  DijkstraOracle dijkstra_oracle(graph_);
  KSpin dijkstra_engine(graph_, store_, dijkstra_oracle);
  ContractionHierarchy ch(graph_);
  ChOracle ch_oracle(ch);
  KSpin ch_engine(graph_, store_, ch_oracle);

  const auto bknn = BknnWorkload(graph_, 40);
  ParallelQueryExecutor executor(ch_engine, kThreads);
  const auto parallel = executor.BooleanKnnBatch(bknn);
  for (std::size_t i = 0; i < bknn.size(); ++i) {
    const auto serial = ch_engine.BooleanKnn(bknn[i].vertex, bknn[i].k,
                                             bknn[i].keywords, bknn[i].op);
    EXPECT_EQ(parallel[i], serial) << "bknn query " << i;
    // CH distances are exact: ground-truth them against Dijkstra.
    const auto truth = dijkstra_engine.BooleanKnn(
        bknn[i].vertex, bknn[i].k, bknn[i].keywords, bknn[i].op);
    EXPECT_EQ(parallel[i], truth) << "bknn query " << i;
  }
}

TEST_F(ConcurrencyTest, HubLabelBackendMatchesSerial) {
  ContractionHierarchy ch(graph_);
  HubLabeling labels(graph_, ch);
  HubLabelOracle oracle(labels);
  KSpin engine(graph_, store_, oracle);

  const auto topk = TopKWorkload(graph_, 40);
  ParallelQueryExecutor executor(engine, kThreads);
  const auto parallel = executor.TopKBatch(topk);
  for (std::size_t i = 0; i < topk.size(); ++i) {
    const auto serial =
        engine.TopK(topk[i].vertex, topk[i].k, topk[i].keywords);
    ExpectSameTopK(parallel[i], serial);
  }
}

// Raw std::thread fan-out over MakeProcessor, no executor involved: the
// oracle index and every K-SPIN structure are shared, each thread owns its
// processor, and everyone runs the SAME workload simultaneously — maximum
// overlap on the shared structures for TSan to chew on.
TEST_F(ConcurrencyTest, IndependentProcessorsShareOneEngine) {
  ContractionHierarchy ch(graph_);
  ChOracle oracle(ch);
  KSpin engine(graph_, store_, oracle);

  const auto bknn = BknnWorkload(graph_, 24);
  const auto topk = TopKWorkload(graph_, 24);

  std::vector<std::vector<BkNNResult>> expected_bknn;
  std::vector<std::vector<TopKResult>> expected_topk;
  for (const auto& q : bknn) {
    expected_bknn.push_back(engine.BooleanKnn(q.vertex, q.k, q.keywords,
                                              q.op));
  }
  for (const auto& q : topk) {
    expected_topk.push_back(engine.TopK(q.vertex, q.k, q.keywords));
  }

  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto processor = engine.MakeProcessor();
      for (std::size_t i = 0; i < bknn.size(); ++i) {
        const auto& q = bknn[i];
        if (processor->BooleanKnn(q.vertex, q.k, q.keywords, q.op) !=
            expected_bknn[i]) {
          ++mismatches[t];
        }
      }
      for (std::size_t i = 0; i < topk.size(); ++i) {
        const auto& q = topk[i];
        const auto got = processor->TopK(q.vertex, q.k, q.keywords);
        if (got.size() != expected_topk[i].size()) {
          ++mismatches[t];
          continue;
        }
        for (std::size_t j = 0; j < got.size(); ++j) {
          if (got[j].object != expected_topk[i][j].object ||
              got[j].distance != expected_topk[i][j].distance ||
              got[j].score != expected_topk[i][j].score) {
            ++mismatches[t];
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (unsigned t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

TEST_F(ConcurrencyTest, PoiServiceBatchMatchesSerial) {
  DijkstraOracle oracle(graph_);
  PoiService service(graph_, oracle);
  const std::vector<std::string> tags = {"cafe", "thai",   "bar",
                                         "museum", "park", "hotel"};
  for (std::uint32_t i = 0; i < 40; ++i) {
    const std::vector<std::string> keywords = {
        tags[i % tags.size()], tags[(i * 3 + 1) % tags.size()]};
    service.AddPoi("poi" + std::to_string(i),
                   static_cast<VertexId>((i * 17 + 2) % graph_.NumVertices()),
                   keywords);
  }

  std::vector<PoiService::BatchQuery> queries;
  for (std::uint32_t i = 0; i < 16; ++i) {
    queries.push_back(
        {"thai and (bar or cafe)",
         static_cast<VertexId>((i * 41 + 3) % graph_.NumVertices()),
         3 + i % 4});
    queries.push_back(
        {"park or museum or hotel",
         static_cast<VertexId>((i * 29 + 7) % graph_.NumVertices()),
         2 + i % 5});
  }

  const auto batch = service.SearchBatch(queries, kThreads);
  const auto ranked = service.SearchRankedBatch(queries, kThreads);
  ASSERT_EQ(batch.size(), queries.size());
  ASSERT_EQ(ranked.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto serial =
        service.Search(queries[i].query, queries[i].from, queries[i].k);
    ASSERT_EQ(batch[i].size(), serial.size()) << "query " << i;
    for (std::size_t j = 0; j < serial.size(); ++j) {
      EXPECT_EQ(batch[i][j].id, serial[j].id);
      EXPECT_EQ(batch[i][j].name, serial[j].name);
      EXPECT_EQ(batch[i][j].travel_time, serial[j].travel_time);
    }
    const auto serial_ranked = service.SearchRanked(queries[i].query,
                                                    queries[i].from,
                                                    queries[i].k);
    ASSERT_EQ(ranked[i].size(), serial_ranked.size()) << "query " << i;
    for (std::size_t j = 0; j < serial_ranked.size(); ++j) {
      EXPECT_EQ(ranked[i][j].id, serial_ranked[j].id);
      EXPECT_EQ(ranked[i][j].travel_time, serial_ranked[j].travel_time);
      EXPECT_EQ(ranked[i][j].score, serial_ranked[j].score);
    }
  }
}

TEST_F(ConcurrencyTest, ExecutorSurvivesEngineRebuild) {
  DijkstraOracle oracle(graph_);
  KSpin engine(graph_, store_, oracle);
  ParallelQueryExecutor executor(engine, kThreads);

  const auto before = BknnWorkload(graph_, 8);
  const auto first = executor.BooleanKnnBatch(before);
  ASSERT_EQ(first.size(), before.size());

  // Growing the keyword universe rebuilds the inverted index / relevance
  // model and bumps StructureGeneration; the executor must re-create its
  // processors instead of dereferencing the dead components.
  const std::uint64_t generation = engine.StructureGeneration();
  engine.InsertObject(3, {{kNumKeywords + 5, 1}});
  ASSERT_NE(engine.StructureGeneration(), generation);

  std::vector<ParallelQueryExecutor::BooleanKnnQuery> after(4);
  for (std::size_t i = 0; i < after.size(); ++i) {
    after[i].vertex = static_cast<VertexId>(i * 19 + 1);
    after[i].k = 4;
    after[i].keywords = {static_cast<KeywordId>(kNumKeywords + 5)};
    after[i].op = BooleanOp::kDisjunctive;
  }
  const auto results = executor.BooleanKnnBatch(after);
  for (std::size_t i = 0; i < after.size(); ++i) {
    const auto serial = engine.BooleanKnn(after[i].vertex, after[i].k,
                                          after[i].keywords, after[i].op);
    EXPECT_EQ(results[i], serial);
  }
}

TEST_F(ConcurrencyTest, EmptyAndSingleThreadBatches) {
  DijkstraOracle oracle(graph_);
  KSpin engine(graph_, store_, oracle);

  ParallelQueryExecutor single(engine, 1);
  EXPECT_EQ(single.NumThreads(), 1u);
  EXPECT_TRUE(
      single.BooleanKnnBatch(std::vector<ParallelQueryExecutor::BooleanKnnQuery>{})
          .empty());

  const auto bknn = BknnWorkload(graph_, 12);
  const auto results = single.BooleanKnnBatch(bknn);
  for (std::size_t i = 0; i < bknn.size(); ++i) {
    const auto serial = engine.BooleanKnn(bknn[i].vertex, bknn[i].k,
                                          bknn[i].keywords, bknn[i].op);
    EXPECT_EQ(results[i], serial);
  }
}

}  // namespace
}  // namespace kspin
