// Round-trip tests for the binary index format: every artifact must load
// back to something query-identical, and malformed streams must fail with
// SerializationError rather than yielding a corrupt index.
#include <gtest/gtest.h>

#include <sstream>

#include "io/binary_format.h"
#include "io/fault_injection.h"
#include "io/serialization.h"
#include "kspin/keyword_index.h"
#include "routing/dijkstra.h"
#include "test_util.h"
#include "text/inverted_index.h"

namespace kspin {
namespace {

TEST(Serialization, GraphRoundTrip) {
  Graph original = testing::SmallRoadNetwork(61);
  std::stringstream buffer;
  SaveGraph(original, buffer);
  Graph loaded = LoadGraph(buffer);
  ASSERT_EQ(loaded.NumVertices(), original.NumVertices());
  ASSERT_EQ(loaded.NumArcs(), original.NumArcs());
  for (VertexId v = 0; v < original.NumVertices(); ++v) {
    EXPECT_EQ(loaded.VertexCoordinate(v), original.VertexCoordinate(v));
    const auto a = original.Neighbors(v);
    const auto b = loaded.Neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].head, b[i].head);
      EXPECT_EQ(a[i].weight, b[i].weight);
    }
  }
}

TEST(Serialization, DocumentStoreRoundTripWithTombstones) {
  Graph graph = testing::SmallRoadNetwork(62);
  DocumentStore original = testing::TestDocuments(graph);
  original.DeleteObject(3);
  original.AddKeyword(5, 7, 2);
  std::stringstream buffer;
  SaveDocumentStore(original, buffer);
  DocumentStore loaded = LoadDocumentStore(buffer);
  ASSERT_EQ(loaded.NumSlots(), original.NumSlots());
  ASSERT_EQ(loaded.NumLiveObjects(), original.NumLiveObjects());
  for (ObjectId o = 0; o < original.NumSlots(); ++o) {
    ASSERT_EQ(loaded.IsLive(o), original.IsLive(o)) << "o=" << o;
    if (!original.IsLive(o)) continue;
    EXPECT_EQ(loaded.ObjectVertex(o), original.ObjectVertex(o));
    const auto a = original.Document(o);
    const auto b = loaded.Document(o);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].keyword, b[i].keyword);
      EXPECT_EQ(a[i].frequency, b[i].frequency);
    }
  }
}

TEST(Serialization, AltRoundTripPreservesBounds) {
  Graph graph = testing::SmallRoadNetwork(63);
  AltIndex original(graph, 6);
  std::stringstream buffer;
  SaveAltIndex(original, buffer);
  AltIndex loaded = LoadAltIndex(buffer);
  for (VertexId s = 0; s < graph.NumVertices(); s += 13) {
    for (VertexId t = 0; t < graph.NumVertices(); t += 29) {
      EXPECT_EQ(loaded.LowerBound(s, t), original.LowerBound(s, t));
    }
  }
}

// PR6 changed the ALT matrix from landmark-major (v1) to vertex-major
// (v2). Old snapshots must keep loading: write a v1-format stream by hand
// (magic, version 1, then the landmark-major d[l*n + v] array) and check
// the loaded index answers identically to the source index.
TEST(Serialization, AltLoadsLegacyLandmarkMajorV1Format) {
  Graph graph = testing::SmallRoadNetwork(66);
  AltIndex original(graph, 5);
  const std::size_t n = graph.NumVertices();
  const std::size_t m = original.Landmarks().size();

  std::stringstream buffer;
  buffer.write("KSPALTI1", 8);
  io::WritePod<std::uint32_t>(buffer, 1);  // Version 1.
  io::WritePod<std::uint64_t>(buffer, n);
  io::WritePodVector(buffer, original.Landmarks());
  std::vector<Distance> landmark_major(m * n);
  for (std::size_t l = 0; l < m; ++l) {
    for (VertexId v = 0; v < n; ++v) {
      landmark_major[l * n + v] = original.LandmarkDistance(l, v);
    }
  }
  io::WritePodVector(buffer, landmark_major);

  AltIndex loaded = LoadAltIndex(buffer);
  ASSERT_EQ(loaded.Landmarks(), original.Landmarks());
  for (VertexId s = 0; s < n; s += 7) {
    for (VertexId t = 0; t < n; t += 11) {
      ASSERT_EQ(loaded.LowerBound(s, t), original.LowerBound(s, t))
          << "s=" << s << " t=" << t;
    }
  }
  // And the transposed matrix must feed the batch kernels identically.
  std::vector<VertexId> targets;
  for (VertexId t = 0; t < n; t += 5) targets.push_back(t);
  std::vector<Distance> out(targets.size());
  loaded.LowerBoundBatch(3, targets, out);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_EQ(out[i], original.LowerBound(3, targets[i]));
  }
}

TEST(Serialization, AltRejectsUnknownFutureVersion) {
  Graph graph = testing::TinyGrid();
  AltIndex alt(graph, 2);
  std::stringstream buffer;
  SaveAltIndex(alt, buffer);
  std::string bytes = buffer.str();
  const std::uint32_t bogus = 99;
  std::memcpy(bytes.data() + 8, &bogus, sizeof(bogus));  // Version field.
  std::stringstream future(bytes);
  EXPECT_THROW(LoadAltIndex(future), io::SerializationError);
}

TEST(Serialization, ChRoundTripAnswersIdentically) {
  Graph graph = testing::SmallRoadNetwork(64);
  ContractionHierarchy original(graph);
  std::stringstream buffer;
  SaveContractionHierarchy(original, buffer);
  ContractionHierarchy loaded = LoadContractionHierarchy(buffer);
  EXPECT_EQ(loaded.NumShortcuts(), original.NumShortcuts());
  DijkstraWorkspace workspace(graph.NumVertices());
  const auto& dist = workspace.SingleSource(graph, 5);
  for (VertexId t = 0; t < graph.NumVertices(); t += 7) {
    EXPECT_EQ(loaded.Query(5, t), dist[t]) << "t=" << t;
  }
}

TEST(Serialization, HubLabelsRoundTripAnswersIdentically) {
  Graph graph = testing::SmallRoadNetwork(65);
  ContractionHierarchy ch(graph);
  HubLabeling original(graph, ch, 2);
  std::stringstream buffer;
  SaveHubLabeling(original, buffer);
  HubLabeling loaded = LoadHubLabeling(buffer);
  EXPECT_EQ(loaded.AverageLabelSize(), original.AverageLabelSize());
  DijkstraWorkspace workspace(graph.NumVertices());
  const auto& dist = workspace.SingleSource(graph, 9);
  for (VertexId t = 0; t < graph.NumVertices(); t += 11) {
    EXPECT_EQ(loaded.Query(9, t), dist[t]) << "t=" << t;
  }
}

TEST(Serialization, RejectsWrongMagic) {
  Graph graph = testing::TinyGrid();
  std::stringstream buffer;
  SaveGraph(graph, buffer);
  EXPECT_THROW(LoadHubLabeling(buffer), io::SerializationError);
}

TEST(Serialization, RejectsTruncatedStream) {
  Graph graph = testing::SmallRoadNetwork(66);
  std::stringstream buffer;
  SaveGraph(graph, buffer);
  const std::string bytes = buffer.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(LoadGraph(truncated), io::SerializationError);
}

TEST(Serialization, RejectsCorruptedArcHeads) {
  Graph graph = testing::TinyGrid();
  std::stringstream buffer;
  SaveGraph(graph, buffer);
  std::string bytes = buffer.str();
  // Smash the middle of the arc array with large values (16 bytes covers
  // at least one full Arc regardless of alignment, so some head corrupts).
  for (std::size_t i = bytes.size() / 2; i < bytes.size() / 2 + 16; ++i) {
    bytes[i] = static_cast<char>(0xFF);
  }
  std::stringstream corrupted(bytes);
  EXPECT_THROW(LoadGraph(corrupted), io::SerializationError);
}

TEST(Serialization, EmptyDocumentStoreRoundTrip) {
  DocumentStore empty;
  std::stringstream buffer;
  SaveDocumentStore(empty, buffer);
  DocumentStore loaded = LoadDocumentStore(buffer);
  EXPECT_EQ(loaded.NumSlots(), 0u);
  EXPECT_EQ(loaded.NumLiveObjects(), 0u);
}

TEST(Serialization, KeywordIndexRoundTripQueryIdentical) {
  Graph graph = testing::SmallRoadNetwork(67);
  DocumentStore store = testing::TestDocuments(graph);
  KeywordId max_keyword = 0;
  for (ObjectId o = 0; o < store.NumSlots(); ++o) {
    if (!store.IsLive(o)) continue;
    for (const DocEntry& e : store.Document(o)) {
      max_keyword = std::max(max_keyword, e.keyword);
    }
  }
  InvertedIndex inverted(store, max_keyword + 1);
  KeywordIndexOptions options;
  options.num_threads = 2;
  KeywordIndex original(graph, store, inverted, options);

  std::stringstream buffer;
  SaveKeywordIndex(original, buffer);
  KeywordIndex loaded = LoadKeywordIndex(graph, buffer);

  ASSERT_EQ(loaded.NumIndexes(), original.NumIndexes());
  EXPECT_EQ(loaded.NumVoronoiIndexes(), original.NumVoronoiIndexes());
  // Every per-keyword index must supply the same heap candidates.
  auto candidates = [](const ApxNvd& nvd, VertexId v) {
    std::vector<SiteObject> raw;
    nvd.InitialCandidates(v, &raw);
    std::vector<std::pair<ObjectId, VertexId>> out;
    for (const SiteObject& s : raw) out.emplace_back(s.object, s.vertex);
    std::sort(out.begin(), out.end());
    return out;
  };
  for (KeywordId t = 0; t <= max_keyword; ++t) {
    const ApxNvd* a = original.Index(t);
    const ApxNvd* b = loaded.Index(t);
    ASSERT_EQ(a == nullptr, b == nullptr) << "t=" << t;
    if (a == nullptr) continue;
    ASSERT_EQ(a->NumLiveObjects(), b->NumLiveObjects()) << "t=" << t;
    ASSERT_EQ(a->HasVoronoi(), b->HasVoronoi()) << "t=" << t;
    for (VertexId v = 0; v < graph.NumVertices(); v += 7) {
      ASSERT_EQ(candidates(*a, v), candidates(*b, v))
          << "t=" << t << " v=" << v;
    }
  }
}

TEST(Serialization, PoiCatalogRoundTrip) {
  PoiCatalog original;
  original.vocabulary.AddOrGet("cafe");
  original.vocabulary.AddOrGet("thai");
  original.vocabulary.AddOrGet("wifi");
  original.names = {"First Cafe", "", "Thai Palace"};

  std::stringstream buffer;
  SavePoiCatalog(original, buffer);
  PoiCatalog loaded = LoadPoiCatalog(buffer);

  ASSERT_EQ(loaded.vocabulary.Size(), original.vocabulary.Size());
  EXPECT_EQ(loaded.vocabulary.IdOf("cafe"), original.vocabulary.IdOf("cafe"));
  EXPECT_EQ(loaded.vocabulary.IdOf("thai"), original.vocabulary.IdOf("thai"));
  EXPECT_EQ(loaded.vocabulary.IdOf("wifi"), original.vocabulary.IdOf("wifi"));
  EXPECT_EQ(loaded.names, original.names);
}

TEST(Serialization, HugeLengthFieldRejectedWithoutAllocating) {
  // A corrupt length field must not make the loader allocate hundreds of
  // gigabytes: chunked reads hit end-of-stream long before that.
  PoiCatalog catalog;
  catalog.vocabulary.AddOrGet("cafe");
  catalog.names = {"a"};
  std::stringstream buffer;
  SavePoiCatalog(catalog, buffer);
  std::string bytes = buffer.str();
  // The term count is the first u64 after the 16-byte artifact header.
  const std::uint64_t huge = std::uint64_t{1} << 60;
  std::memcpy(bytes.data() + 16, &huge, sizeof(huge));
  std::stringstream corrupt(bytes);
  EXPECT_THROW(LoadPoiCatalog(corrupt), io::SerializationError);
}

TEST(Serialization, WriteFailurePropagatesFromEverySaver) {
  Graph graph = testing::TinyGrid();
  DocumentStore store = testing::TestDocuments(graph, 10, 0.5, 5);
  AltIndex alt(graph, 3);
  std::ostringstream sink;
  io::StreamFaultPlan plan;
  plan.fail_after = 10;  // Fail almost immediately: ENOSPC / EIO.
  {
    io::FaultyOStream faulty(sink, plan);
    EXPECT_THROW(SaveGraph(graph, faulty), io::SerializationError);
  }
  {
    io::FaultyOStream faulty(sink, plan);
    EXPECT_THROW(SaveDocumentStore(store, faulty), io::SerializationError);
  }
  {
    io::FaultyOStream faulty(sink, plan);
    EXPECT_THROW(SaveAltIndex(alt, faulty), io::SerializationError);
  }
}

}  // namespace
}  // namespace kspin
