// Replication integration tests: a real primary + replica pair on
// loopback, snapshot shipping over FETCH_SNAPSHOT, NOT_PRIMARY write
// rejection, corrupt-transfer rejection (fault injection), and
// client-side failover.
#include "server/replication.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/fault_injection.h"
#include "io/snapshot.h"
#include "routing/contraction_hierarchy.h"
#include "server/client.h"
#include "server/failover.h"
#include "server/server.h"
#include "service/poi_service.h"
#include "service/synthetic_catalog.h"
#include "test_util.h"

namespace kspin::server {
namespace {

std::string ScratchDir(const std::string& tag) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("kspin_repl_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Polls `predicate` until it holds or ~5 s elapse.
bool WaitFor(const std::function<bool()>& predicate) {
  for (int i = 0; i < 500; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

std::vector<std::pair<ObjectId, Distance>> Ids(
    const Client::SearchReply& reply) {
  std::vector<std::pair<ObjectId, Distance>> out;
  for (const WireResult& r : reply.results) {
    out.emplace_back(r.object, r.travel_time);
  }
  return out;
}

/// A primary and a replica serving the same road network (replication
/// requires byte-identical graphs; sharing the Graph object guarantees
/// it), each with its own PoiService and snapshot directory.
class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest()
      : graph_(testing::SmallRoadNetwork()), ch_(graph_), oracle_(ch_) {}

  void StartPrimary(ServerOptions options = {}) {
    primary_service_ = MakeService();
    options.snapshot.dir = primary_dir_ = ScratchDir("primary");
    primary_ = std::make_unique<Server>(*primary_service_, options);
    primary_->Start();
  }

  /// `mutate_fetched` simulates mid-transfer corruption (see
  /// ReplicationOptions::test_mutate_fetched).
  void StartReplica(std::function<void(std::string&)> mutate_fetched = {},
                    std::uint32_t poll_interval_ms = 50,
                    const std::string& oplog_dir = {}) {
    replica_service_ = MakeService();
    ServerOptions options;
    options.snapshot.dir = replica_dir_ = ScratchDir("replica");
    options.oplog.dir = oplog_dir;
    options.replication.role = ServerRole::kReplica;
    options.replication.primary = {"127.0.0.1", primary_->Port()};
    options.replication.poll_interval_ms = poll_interval_ms;
    options.replication.test_mutate_fetched = std::move(mutate_fetched);
    replica_ = std::make_unique<Server>(*replica_service_, options);
    replica_->Start();
  }

  std::unique_ptr<PoiService> MakeService() {
    auto service = std::make_unique<PoiService>(graph_, oracle_);
    SyntheticCatalogOptions catalog;
    catalog.num_pois = 120;
    catalog.num_keywords = 16;
    PopulateSyntheticCatalog(*service, graph_, catalog);
    return service;
  }

  Client ConnectTo(const Server& server) {
    Client client;
    client.Connect("127.0.0.1", server.Port());
    return client;
  }

  Graph graph_;
  ContractionHierarchy ch_;
  ChOracle oracle_;
  std::unique_ptr<PoiService> primary_service_;
  std::unique_ptr<PoiService> replica_service_;
  std::unique_ptr<Server> primary_;
  std::unique_ptr<Server> replica_;
  std::string primary_dir_;
  std::string replica_dir_;
};

TEST_F(ReplicationTest, HealthReportsRoleSequenceAndPrimary) {
  StartPrimary();
  Client client = ConnectTo(*primary_);
  auto health = client.Health();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.health.role, 0u);
  EXPECT_EQ(health.health.snapshot_sequence, 0u);
  EXPECT_TRUE(health.health.primary_address.empty());

  ASSERT_TRUE(client.Snapshot().ok());
  health = client.Health();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.health.snapshot_sequence, 1u);

  StartReplica();
  Client rclient = ConnectTo(*replica_);
  const auto rhealth = rclient.Health();
  ASSERT_TRUE(rhealth.ok());
  EXPECT_EQ(rhealth.health.role, 1u);
  EXPECT_EQ(rhealth.health.primary_address,
            "127.0.0.1:" + std::to_string(primary_->Port()));
}

TEST_F(ReplicationTest, ReplicaRejectsWritesWithPrimaryAddress) {
  StartPrimary();
  StartReplica();
  Client client = ConnectTo(*replica_);

  const std::vector<std::string> keywords = {"kw0"};
  const auto add = client.AddPoi("new poi", 1, keywords);
  EXPECT_EQ(add.status, StatusCode::kNotPrimary);
  EXPECT_EQ(add.error, "127.0.0.1:" + std::to_string(primary_->Port()));

  EXPECT_EQ(client.ClosePoi(0).status, StatusCode::kNotPrimary);
  EXPECT_EQ(client.TagPoi(0, "kw1").status, StatusCode::kNotPrimary);
  EXPECT_EQ(client.UntagPoi(0, "kw1").status, StatusCode::kNotPrimary);
  // The v3 logged mutations are redirected the same way.
  EXPECT_EQ(client.InsertDoc(1, 1, "poi", keywords).status,
            StatusCode::kNotPrimary);
  EXPECT_EQ(client.DeleteDoc(2, 0).status, StatusCode::kNotPrimary);
  EXPECT_EQ(client.UpdateDoc(3, 0, keywords, {}).status,
            StatusCode::kNotPrimary);
  // Reads still work.
  EXPECT_TRUE(client.Search("kw0", 3, 5).ok());
  EXPECT_GE(replica_->Metrics().requests_not_primary.load(), 7u);
}

TEST_F(ReplicationTest, FetchSnapshotStreamsByteIdenticalFile) {
  StartPrimary();
  Client client = ConnectTo(*primary_);
  ASSERT_TRUE(client.Snapshot().ok());

  const auto snapshots = io::FindSnapshots(primary_dir_);
  ASSERT_EQ(snapshots.size(), 1u);
  std::ifstream file(snapshots.front().second, std::ios::binary);
  const std::string on_disk((std::istreambuf_iterator<char>(file)),
                            std::istreambuf_iterator<char>());
  ASSERT_FALSE(on_disk.empty());

  // Tiny chunks force many round trips.
  std::uint64_t sequence = 0;
  std::string fetched;
  std::string error;
  ASSERT_TRUE(FetchSnapshotBytes(client, 0, 512, &sequence, &fetched,
                                 &error))
      << error;
  EXPECT_EQ(sequence, 1u);
  EXPECT_EQ(fetched, on_disk);
  EXPECT_GT(primary_->Metrics().snapshot_chunks_served.load(), 1u);

  // Explicit missing sequence: clean in-band rejection.
  ASSERT_FALSE(
      FetchSnapshotBytes(client, 999, 512, &sequence, &fetched, &error));
  // Nonzero offset without a pinned sequence is rejected too.
  const auto reply = client.FetchSnapshotChunk(0, 10, 512);
  EXPECT_EQ(reply.status, StatusCode::kBadQuery);
}

TEST_F(ReplicationTest, FetchSkipsCorruptNewestSnapshot) {
  StartPrimary();
  Client client = ConnectTo(*primary_);
  ASSERT_TRUE(client.Snapshot().ok());  // sequence 1 (stays valid)
  ASSERT_TRUE(client.Snapshot().ok());  // sequence 2 (gets corrupted)

  const auto snapshots = io::FindSnapshots(primary_dir_);
  ASSERT_EQ(snapshots.size(), 2u);
  ASSERT_EQ(snapshots.front().first, 2u);
  io::FlipByteInFile(snapshots.front().second, 100);

  std::uint64_t sequence = 0;
  std::string fetched;
  std::string error;
  ASSERT_TRUE(
      FetchSnapshotBytes(client, 0, 1 << 20, &sequence, &fetched, &error))
      << error;
  EXPECT_EQ(sequence, 1u);  // Newest *valid* wins, not newest.
}

TEST_F(ReplicationTest, ReplicaCatchesUpAndServesIdenticalResults) {
  StartPrimary();
  Client pclient = ConnectTo(*primary_);

  // Diverge the primary from the replica's synthetic base state.
  const std::vector<std::string> keywords = {"kw0", "kw3"};
  const auto add = pclient.AddPoi("fresh poi", 7, keywords);
  ASSERT_TRUE(add.ok());
  ASSERT_TRUE(pclient.Snapshot().ok());

  StartReplica();
  ASSERT_TRUE(WaitFor([&] {
    return replica_->Metrics().replication_installs_ok.load() >= 1;
  }));
  EXPECT_EQ(replica_->SnapshotSequence(), 1u);

  Client rclient = ConnectTo(*replica_);
  for (const VertexId from : {VertexId{3}, VertexId{50}, VertexId{200}}) {
    for (const bool ranked : {false, true}) {
      const auto on_primary = pclient.Search("kw0", from, 8, ranked);
      const auto on_replica = rclient.Search("kw0", from, 8, ranked);
      ASSERT_TRUE(on_primary.ok());
      ASSERT_TRUE(on_replica.ok());
      EXPECT_EQ(Ids(on_primary), Ids(on_replica));
    }
  }
  // The new POI made it across.
  const auto hits = rclient.Search("kw0 and kw3", 7, 120);
  ASSERT_TRUE(hits.ok());
  bool found = false;
  for (const auto& r : hits.results) found |= r.object == add.id;
  EXPECT_TRUE(found);

  // The shipped snapshot was persisted locally (crash-safe restart path)
  // and lag metrics are exported.
  EXPECT_EQ(io::FindSnapshots(replica_dir_).size(), 1u);
  const auto stats = rclient.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.Value("replication_last_sequence"), 1u);
  EXPECT_EQ(stats.Value("replication_sequence_delta"), 0u);

  // A second snapshot on the primary replicates too.
  ASSERT_TRUE(pclient.TagPoi(add.id, "kw5").ok());
  ASSERT_TRUE(pclient.Snapshot().ok());
  ASSERT_TRUE(WaitFor([&] { return replica_->SnapshotSequence() >= 2; }));
  const auto tagged = rclient.Search("kw5", 7, 120);
  ASSERT_TRUE(tagged.ok());
  found = false;
  for (const auto& r : tagged.results) found |= r.object == add.id;
  EXPECT_TRUE(found);
}

TEST_F(ReplicationTest, CorruptTransferRejectedThenRetriedCleanly) {
  StartPrimary();
  Client pclient = ConnectTo(*primary_);
  const std::vector<std::string> keywords = {"kw2"};
  const auto add = pclient.AddPoi("poison test poi", 11, keywords);
  ASSERT_TRUE(add.ok());
  ASSERT_TRUE(pclient.Snapshot().ok());

  // First fetched image gets one byte flipped mid-stream (the same
  // corruption FaultyOStream's flip_byte_at plan applies on write);
  // subsequent fetches arrive intact.
  auto corrupt_once = [flipped = false](std::string& bytes) mutable {
    if (flipped || bytes.size() < 200) return;
    flipped = true;
    bytes[137] = static_cast<char>(bytes[137] ^ 0x40);
  };
  StartReplica(corrupt_once);

  // The corrupt install is rejected...
  ASSERT_TRUE(WaitFor([&] {
    return replica_->Metrics().replication_installs_rejected.load() >= 1;
  }));
  // ...without interrupting replica reads of its previous state...
  Client rclient = ConnectTo(*replica_);
  EXPECT_TRUE(rclient.Search("kw0", 3, 5).ok());
  // ...and the next poll ships a clean copy.
  ASSERT_TRUE(WaitFor([&] {
    return replica_->Metrics().replication_installs_ok.load() >= 1;
  }));
  EXPECT_EQ(replica_->SnapshotSequence(), 1u);
  const auto hits = rclient.Search("kw2", 11, 120);
  ASSERT_TRUE(hits.ok());
  bool found = false;
  for (const auto& r : hits.results) found |= r.object == add.id;
  EXPECT_TRUE(found);

  // The rejected image never reached the replica's snapshot directory:
  // only the clean install is on disk, and it validates.
  const auto local = io::FindSnapshots(replica_dir_);
  ASSERT_EQ(local.size(), 1u);
  EXPECT_NO_THROW(io::ValidateSnapshotFile(local.front().second));
}

TEST_F(ReplicationTest, TruncatedTransferRejected) {
  StartPrimary();
  Client pclient = ConnectTo(*primary_);
  ASSERT_TRUE(pclient.Snapshot().ok());

  // Truncation variant of the fault plan: drop the image's tail once.
  auto truncate_once = [done = false](std::string& bytes) mutable {
    if (done) return;
    done = true;
    bytes.resize(bytes.size() / 2);
  };
  StartReplica(truncate_once);
  ASSERT_TRUE(WaitFor([&] {
    return replica_->Metrics().replication_installs_rejected.load() >= 1;
  }));
  Client rclient = ConnectTo(*replica_);
  EXPECT_TRUE(rclient.Search("kw0", 3, 5).ok());
  ASSERT_TRUE(WaitFor([&] {
    return replica_->Metrics().replication_installs_ok.load() >= 1;
  }));
}

TEST_F(ReplicationTest, FailoverClientPrefersReplicaAndFollowsRedirects) {
  StartPrimary();
  Client pclient = ConnectTo(*primary_);
  ASSERT_TRUE(pclient.Snapshot().ok());
  StartReplica();
  ASSERT_TRUE(WaitFor([&] {
    return replica_->Metrics().replication_installs_ok.load() >= 1;
  }));

  RetryPolicy policy;
  policy.max_attempts = 2;
  // Endpoint order starts at the primary; probing must still route reads
  // to the replica and writes to the primary.
  FailoverClient client({{"127.0.0.1", primary_->Port()},
                         {"127.0.0.1", replica_->Port()}},
                        policy);
  client.SetSleepFunction([](std::uint32_t) {});

  ASSERT_TRUE(client.Ping().ok());
  EXPECT_EQ(client.LastEndpoint(), 1u);  // The replica.

  const std::vector<std::string> keywords = {"kw1"};
  const auto add = client.AddPoi("routed write", 5, keywords);
  ASSERT_TRUE(add.ok());  // Landed on the primary, not NOT_PRIMARY.
  EXPECT_EQ(client.LastEndpoint(), 0u);
}

TEST_F(ReplicationTest, FailoverClientFollowsNotPrimaryRedirect) {
  StartPrimary();
  StartReplica();

  // Only the replica is configured; the write must chase the redirect to
  // the primary learned from the NOT_PRIMARY reply.
  FailoverClient client({{"127.0.0.1", replica_->Port()}});
  client.SetSleepFunction([](std::uint32_t) {});
  const std::vector<std::string> keywords = {"kw1"};
  const auto add = client.AddPoi("redirected write", 5, keywords);
  ASSERT_TRUE(add.ok());
  ASSERT_EQ(client.Endpoints().size(), 2u);
  EXPECT_EQ(client.Endpoints()[1].port, primary_->Port());
}

TEST_F(ReplicationTest, FailoverClientSurvivesPrimaryStop) {
  StartPrimary();
  Client pclient = ConnectTo(*primary_);
  const std::vector<std::string> keywords = {"kw0"};
  ASSERT_TRUE(pclient.AddPoi("pre-crash poi", 9, keywords).ok());
  ASSERT_TRUE(pclient.Snapshot().ok());
  StartReplica();
  ASSERT_TRUE(WaitFor([&] {
    return replica_->Metrics().replication_installs_ok.load() >= 1;
  }));

  RetryPolicy policy;
  policy.max_attempts = 2;
  FailoverClient client({{"127.0.0.1", primary_->Port()},
                         {"127.0.0.1", replica_->Port()}},
                        policy);
  client.SetSleepFunction([](std::uint32_t) {});

  const auto before = client.Search("kw0", 9, 10);
  ASSERT_TRUE(before.ok());

  primary_->Stop();

  // Reads keep working through failover, with identical results.
  const auto after = client.Search("kw0", 9, 10);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(Ids(before), Ids(after));
  EXPECT_EQ(client.LastEndpoint(), 1u);
}

TEST_F(ReplicationTest, ReplicaCatchesUpViaLogTailingWithoutSnapshotTransfer) {
  ServerOptions options;
  options.oplog.dir = ScratchDir("tail_oplog");
  StartPrimary(options);
  Client pclient = ConnectTo(*primary_);
  ASSERT_TRUE(pclient.Snapshot().ok());  // Bootstrap image for the replica.

  StartReplica();
  ASSERT_TRUE(WaitFor([&] {
    return replica_->Metrics().replication_installs_ok.load() >= 1;
  }));
  const std::uint64_t installs =
      replica_->Metrics().replication_installs_ok.load();

  // A durable write on the primary...
  const std::vector<std::string> tags = {"kw0", "kw9"};
  const auto insert = pclient.InsertDoc(41, 7, "tailed poi", tags);
  ASSERT_TRUE(insert.ok());
  ASSERT_GT(insert.sequence, 0u);

  // ...reaches the replica through FETCH_OPLOG tailing...
  ASSERT_TRUE(WaitFor([&] {
    return replica_->AppliedSequence() >= insert.sequence;
  }));
  EXPECT_EQ(replica_->Metrics().replication_source.load(), 1u);
  EXPECT_GE(replica_->Metrics().replication_oplog_records.load(), 1u);
  EXPECT_GE(replica_->Metrics().mutations_applied.load(), 1u);
  // ...and never via another snapshot install.
  EXPECT_EQ(replica_->Metrics().replication_installs_ok.load(), installs);

  Client rclient = ConnectTo(*replica_);
  auto hits = rclient.Search("kw0 and kw9", 7, 200);
  ASSERT_TRUE(hits.ok());
  bool found = false;
  for (const auto& r : hits.results) found |= r.object == insert.id;
  EXPECT_TRUE(found);

  // Updates and deletes ship through the same log stream.
  const std::vector<std::string> adds = {"kw5"};
  const std::vector<std::string> removes;
  const auto update = pclient.UpdateDoc(42, insert.id, adds, removes);
  ASSERT_TRUE(update.ok());
  ASSERT_TRUE(WaitFor([&] {
    return replica_->AppliedSequence() >= update.sequence;
  }));
  hits = rclient.Search("kw5 and kw9", 7, 200);
  ASSERT_TRUE(hits.ok());
  found = false;
  for (const auto& r : hits.results) found |= r.object == insert.id;
  EXPECT_TRUE(found);

  const auto del = pclient.DeleteDoc(43, insert.id);
  ASSERT_TRUE(del.ok());
  ASSERT_TRUE(WaitFor([&] {
    return replica_->AppliedSequence() >= del.sequence;
  }));
  hits = rclient.Search("kw0 and kw9", 7, 200);
  ASSERT_TRUE(hits.ok());
  for (const auto& r : hits.results) EXPECT_NE(r.object, insert.id);
}

TEST_F(ReplicationTest, IdempotentRetryReturnsOriginalResult) {
  ServerOptions options;
  options.oplog.dir = ScratchDir("idem_oplog");
  StartPrimary(options);
  Client client = ConnectTo(*primary_);

  const std::vector<std::string> tags = {"kw1"};
  const auto first = client.InsertDoc(12345, 5, "once", tags);
  ASSERT_TRUE(first.ok());
  // A re-send with the same key (a client retrying a torn reply) gets the
  // original sequence and object id without applying twice.
  const auto retry = client.InsertDoc(12345, 5, "once", tags);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.sequence, first.sequence);
  EXPECT_EQ(retry.id, first.id);
  EXPECT_EQ(primary_->AppliedSequence(), first.sequence);

  // A different key is a genuinely new operation.
  const auto fresh = client.InsertDoc(12346, 5, "twice", tags);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.sequence, first.sequence + 1);
}

TEST_F(ReplicationTest, FailoverClientRoutesKeyedMutationsToPrimary) {
  ServerOptions options;
  options.oplog.dir = ScratchDir("failover_oplog");
  StartPrimary(options);
  StartReplica();

  // Only the replica is configured: every keyed mutation must chase the
  // NOT_PRIMARY redirect to the real primary.
  FailoverClient client({{"127.0.0.1", replica_->Port()}});
  client.SetSleepFunction([](std::uint32_t) {});
  const std::vector<std::string> tags = {"kw4"};
  const auto insert = client.InsertDoc(9, "redirected insert", tags);
  ASSERT_TRUE(insert.ok());
  EXPECT_GT(insert.sequence, 0u);
  ASSERT_EQ(client.Endpoints().size(), 2u);
  EXPECT_EQ(client.Endpoints()[1].port, primary_->Port());

  const std::vector<std::string> adds = {"kw6"};
  const std::vector<std::string> removes;
  const auto update = client.UpdateDoc(insert.id, adds, removes);
  ASSERT_TRUE(update.ok());
  const auto del = client.DeleteDoc(insert.id);
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(primary_->AppliedSequence(), del.sequence);
}

TEST_F(ReplicationTest, BootReplayRestoresAckedWrites) {
  const std::string oplog_dir = ScratchDir("boot_oplog");
  ServerOptions options;
  options.oplog.dir = oplog_dir;
  StartPrimary(options);
  Client client = ConnectTo(*primary_);
  const std::vector<std::string> tags = {"kw3", "kw8"};
  const auto insert = client.InsertDoc(1, 9, "durable poi", tags);
  ASSERT_TRUE(insert.ok());
  primary_->Stop();  // No snapshot was ever taken.
  primary_.reset();

  // A fresh process over the same base state replays the log tail on
  // boot and serves the acked write.
  ServerOptions reopened;
  reopened.snapshot.dir = primary_dir_;
  reopened.oplog.dir = oplog_dir;
  auto base = MakeService();
  Server second(*base, reopened);
  second.Start();
  EXPECT_EQ(second.AppliedSequence(), insert.sequence);
  EXPECT_GE(second.Metrics().oplog_replay_records.load(), 1u);

  Client c2;
  c2.Connect("127.0.0.1", second.Port());
  const auto hits = c2.Search("kw3 and kw8", 9, 200);
  ASSERT_TRUE(hits.ok());
  bool found = false;
  for (const auto& r : hits.results) found |= r.object == insert.id;
  EXPECT_TRUE(found);
  second.Stop();
}

TEST_F(ReplicationTest, PromoteFlipsReplicaToPrimaryAndBumpsEpoch) {
  StartPrimary();
  StartReplica();
  Client rclient = ConnectTo(*replica_);

  // The applied-sequence guard refuses a replica that is too far behind.
  const auto refused = rclient.Promote(1000);
  EXPECT_EQ(refused.status, StatusCode::kBadQuery);
  EXPECT_EQ(replica_->Role(), ServerRole::kReplica);

  const auto promoted = rclient.Promote();
  ASSERT_TRUE(promoted.ok());
  EXPECT_EQ(promoted.epoch, 1u);
  EXPECT_EQ(promoted.role, 0);
  EXPECT_EQ(replica_->Role(), ServerRole::kPrimary);
  EXPECT_EQ(replica_->PrimaryEpoch(), 1u);
  EXPECT_EQ(replica_->Metrics().promotions.load(), 1u);

  // Health advertises the new reign.
  const auto health = rclient.Health();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.health.role, 0u);
  EXPECT_EQ(health.health.primary_epoch, 1u);

  // A second PROMOTE is idempotent: same epoch, no second bump.
  const auto again = rclient.Promote();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.epoch, 1u);
  EXPECT_EQ(replica_->Metrics().promotions.load(), 1u);

  // The promoted server now accepts writes it used to redirect.
  const std::vector<std::string> tags = {"kw2"};
  const auto insert = rclient.InsertDoc(77, 5, "post-promote poi", tags);
  ASSERT_TRUE(insert.ok());
  EXPECT_EQ(insert.primary_epoch, 1u);
}

TEST_F(ReplicationTest, FencedPrimaryRejectsAllWritesWithStaleEpoch) {
  StartPrimary();
  Client fencing = ConnectTo(*primary_);
  fencing.SetFenceEpoch(5);
  const std::vector<std::string> tags = {"kw1"};

  // The fence epoch rides the mutation; the primary (epoch 0) is stale.
  const auto rejected = fencing.InsertDoc(1, 5, "fenced write", tags);
  EXPECT_EQ(rejected.status, StatusCode::kStaleEpoch);

  // The fence latches: clients that know nothing about epochs are
  // rejected too, on both the keyed and the legacy write paths — a
  // fenced ex-primary must not accept ANY write.
  Client naive = ConnectTo(*primary_);
  EXPECT_EQ(naive.InsertDoc(2, 5, "naive write", tags).status,
            StatusCode::kStaleEpoch);
  EXPECT_EQ(naive.AddPoi("legacy write", 5, tags).status,
            StatusCode::kStaleEpoch);
  EXPECT_EQ(naive.TagPoi(0, "kw1").status, StatusCode::kStaleEpoch);
  EXPECT_GE(primary_->Metrics().requests_stale_epoch.load(), 4u);

  // Reads keep flowing — fencing only guards the write path.
  EXPECT_TRUE(naive.Search("kw0", 3, 5).ok());
  const auto health = naive.Health();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.health.primary_epoch, 0u);  // Its own epoch, unchanged.
}

TEST_F(ReplicationTest, FailoverClientReroutesWritesAfterPromotion) {
  StartPrimary();
  StartReplica();

  RetryPolicy policy;
  policy.max_attempts = 2;
  FailoverClient client({{"127.0.0.1", primary_->Port()},
                         {"127.0.0.1", replica_->Port()}},
                        policy);
  client.SetSleepFunction([](std::uint32_t) {});
  // Pin the probe so the test controls exactly when roles are re-learned:
  // the re-route below must come from the STALE_EPOCH recovery path, not
  // a lucky timer.
  client.SetProbeIntervalMs(1u << 30);

  const std::vector<std::string> tags = {"kw3"};
  const auto before = client.InsertDoc(5, "pre-failover", tags);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(client.LastEndpoint(), 0u);  // The old primary.

  // Failover: promote the replica, then fence the old primary (the first
  // epoch-aware writer to touch it does this in production).
  Client promoter = ConnectTo(*replica_);
  ASSERT_TRUE(promoter.Promote().ok());
  Client fencer = ConnectTo(*primary_);
  fencer.SetFenceEpoch(1);
  EXPECT_EQ(fencer.InsertDoc(99, 5, "fence", tags).status,
            StatusCode::kStaleEpoch);

  // The pinned client still believes the old primary; its next write is
  // rejected STALE_EPOCH, which triggers one fresh probe round — the
  // promoted replica claims the higher epoch and wins.
  const auto after = client.InsertDoc(5, "post-failover", tags);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(client.LastEndpoint(), 1u);  // The new primary.
  EXPECT_EQ(after.primary_epoch, 1u);
  EXPECT_EQ(client.ObservedEpoch(), 1u);
}

TEST_F(ReplicationTest, RejoiningExPrimaryQuarantinesDivergentTail) {
  const std::string primary_oplog = ScratchDir("rejoin_oplog_a");
  const std::string replica_oplog = ScratchDir("rejoin_oplog_b");
  ServerOptions options;
  options.oplog.dir = primary_oplog;
  StartPrimary(options);
  Client pclient = ConnectTo(*primary_);

  // Shared history: one replicated write, snapshotted for bootstrap.
  const std::vector<std::string> shared_tags = {"kw0", "kw7"};
  const auto shared = pclient.InsertDoc(1, 9, "shared poi", shared_tags);
  ASSERT_TRUE(shared.ok());
  ASSERT_TRUE(pclient.Snapshot().ok());
  StartReplica({}, 50, replica_oplog);
  ASSERT_TRUE(
      WaitFor([&] { return replica_->AppliedSequence() >= shared.sequence; }));

  // Promote the replica (its replicator stops tailing), then land one
  // more write on the old primary: a divergent record the new reign
  // never saw, occupying the same sequence as the epoch record.
  Client promoter = ConnectTo(*replica_);
  const auto promoted = promoter.Promote(shared.sequence);
  ASSERT_TRUE(promoted.ok());
  const std::vector<std::string> doomed_tags = {"kw1", "kw8"};
  const auto doomed = pclient.InsertDoc(2, 9, "doomed poi", doomed_tags);
  ASSERT_TRUE(doomed.ok());
  EXPECT_EQ(doomed.sequence, promoted.applied_sequence);

  // The old primary dies and rejoins as a replica of the new one.
  primary_->Stop();
  primary_.reset();
  ServerOptions rejoin;
  rejoin.snapshot.dir = primary_dir_;
  rejoin.oplog.dir = primary_oplog;
  rejoin.replication.role = ServerRole::kReplica;
  rejoin.replication.primary = {"127.0.0.1", replica_->Port()};
  rejoin.replication.poll_interval_ms = 50;
  auto base = MakeService();
  Server rejoined(*base, rejoin);
  rejoined.Start();
  // (Boot replay brought back both writes — including the divergent one;
  // the first poll against the new primary may already be repairing that
  // by the time this line runs, so no assertion on the interim state.)

  // Tailing the new primary detects the divergence, truncates the tail
  // into quarantine, resyncs via snapshot, and adopts the new epoch.
  ASSERT_TRUE(WaitFor([&] {
    return rejoined.PrimaryEpoch() == promoted.epoch &&
           rejoined.AppliedSequence() >= promoted.applied_sequence;
  }));
  EXPECT_GE(rejoined.Metrics().oplog_quarantined_records.load(), 1u);
  EXPECT_EQ(rejoined.EpochBoundarySequence(), promoted.applied_sequence);

  // The quarantined records are preserved on disk for inspection...
  const std::filesystem::path quarantine =
      std::filesystem::path(primary_oplog) / "quarantine";
  ASSERT_TRUE(std::filesystem::exists(quarantine));
  bool found_file = false;
  for (const auto& entry :
       std::filesystem::directory_iterator(quarantine)) {
    found_file = true;
    EXPECT_GT(std::filesystem::file_size(entry.path()), 0u);
  }
  EXPECT_TRUE(found_file);

  // ...and the serving state reflects the new reign: the shared write
  // survives, the divergent one is gone.
  Client rclient;
  rclient.Connect("127.0.0.1", rejoined.Port());
  auto hits = rclient.Search("kw0 and kw7", 9, 200);
  ASSERT_TRUE(hits.ok());
  bool found = false;
  for (const auto& r : hits.results) found |= r.object == shared.id;
  EXPECT_TRUE(found);
  hits = rclient.Search("kw1 and kw8", 9, 200);
  ASSERT_TRUE(hits.ok());
  for (const auto& r : hits.results) EXPECT_NE(r.object, doomed.id);
  rejoined.Stop();
}

TEST_F(ReplicationTest, ReplicaRefusesToTailStalePrimaryAndFencesIt) {
  // A replica that has lived through epoch 1 must never follow a primary
  // still claiming epoch 0 — and the act of asking fences that primary.
  const std::string replica_oplog = ScratchDir("stale_oplog_b");
  StartPrimary();
  // Shared baseline first: tailing (and with it the fencing FETCH_OPLOG)
  // only runs on top of an installed snapshot.
  Client seeder = ConnectTo(*primary_);
  const std::vector<std::string> seed_tags = {"kw0"};
  ASSERT_TRUE(seeder.InsertDoc(1, 5, "baseline poi", seed_tags).ok());
  ASSERT_TRUE(seeder.Snapshot().ok());
  StartReplica({}, 50, replica_oplog);
  ASSERT_TRUE(WaitFor([&] {
    return replica_->Metrics().replication_installs_ok.load() >= 1;
  }));

  // Promote the replica (epoch 1, persisted to its epoch sidecar)...
  Client promoter = ConnectTo(*replica_);
  const auto promoted = promoter.Promote();
  ASSERT_TRUE(promoted.ok());
  const std::uint64_t applied = replica_->AppliedSequence();
  // ...then restart it as a replica of the never-promoted old primary —
  // the "operator pointed the replica at a stale primary" misconfig.
  replica_->Stop();
  replica_.reset();
  ServerOptions options;
  options.snapshot.dir = replica_dir_;
  options.oplog.dir = replica_oplog;
  options.replication.role = ServerRole::kReplica;
  options.replication.primary = {"127.0.0.1", primary_->Port()};
  options.replication.poll_interval_ms = 50;
  auto base = MakeService();
  Server restarted(*base, options);
  restarted.Start();
  EXPECT_EQ(restarted.PrimaryEpoch(), 1u);  // Epoch survived the restart.

  // Polls run and are refused — no snapshot install ever pulls the stale
  // reign's state over the newer one, and nothing regresses.
  ASSERT_TRUE(WaitFor([&] {
    return restarted.Metrics().replication_poll_errors.load() >= 2;
  }));
  EXPECT_EQ(restarted.Metrics().replication_installs_ok.load(), 0u);
  EXPECT_EQ(restarted.PrimaryEpoch(), 1u);
  EXPECT_GE(restarted.AppliedSequence(), applied);

  // The refused FETCH_OPLOG carried epoch 1, which fenced the stale
  // primary: it now rejects writes until it rejoins properly.
  Client pclient = ConnectTo(*primary_);
  const std::vector<std::string> tags = {"kw1"};
  EXPECT_EQ(pclient.InsertDoc(9, 5, "fenced by tail", tags).status,
            StatusCode::kStaleEpoch);
  restarted.Stop();
}

TEST(ParseEndpointTest, AcceptsValidRejectsInvalid) {
  const auto ep = ParseEndpoint("10.1.2.3:8080");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->host, "10.1.2.3");
  EXPECT_EQ(ep->port, 8080);
  EXPECT_EQ(ep->ToString(), "10.1.2.3:8080");

  EXPECT_FALSE(ParseEndpoint("").has_value());
  EXPECT_FALSE(ParseEndpoint("host").has_value());
  EXPECT_FALSE(ParseEndpoint("host:").has_value());
  EXPECT_FALSE(ParseEndpoint(":123").has_value());
  EXPECT_FALSE(ParseEndpoint("host:0").has_value());
  EXPECT_FALSE(ParseEndpoint("host:65536").has_value());
  EXPECT_FALSE(ParseEndpoint("host:12x").has_value());
}

}  // namespace
}  // namespace kspin::server
