// Service-layer tests: the boolean query parser (grammar, CNF
// normalization, error handling) and the string-level PoiService facade.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "kspin/query_control.h"
#include "routing/contraction_hierarchy.h"
#include "service/poi_service.h"
#include "service/query_parser.h"
#include "test_util.h"

namespace kspin {
namespace {

class QueryParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    thai_ = vocab_.AddOrGet("thai");
    takeaway_ = vocab_.AddOrGet("takeaway");
    restaurant_ = vocab_.AddOrGet("restaurant");
    cafe_ = vocab_.AddOrGet("cafe");
  }

  Vocabulary vocab_;
  KeywordId thai_, takeaway_, restaurant_, cafe_;
};

TEST_F(QueryParserTest, SingleKeyword) {
  const ParsedQuery q = ParseBooleanQuery("thai", vocab_);
  ASSERT_EQ(q.clauses.size(), 1u);
  EXPECT_EQ(q.clauses[0], std::vector<KeywordId>{thai_});
}

TEST_F(QueryParserTest, PaperExampleMixedOperators) {
  // "thai and (takeaway or restaurant)" — the paper's Section 2 example.
  const ParsedQuery q =
      ParseBooleanQuery("thai and (takeaway or restaurant)", vocab_);
  ASSERT_EQ(q.clauses.size(), 2u);
  // Clauses are sorted; the singleton clause sorts after or before
  // depending on content — check as a set.
  bool saw_thai = false, saw_disjunction = false;
  for (const auto& clause : q.clauses) {
    if (clause == std::vector<KeywordId>{thai_}) saw_thai = true;
    std::vector<KeywordId> expected = {takeaway_, restaurant_};
    std::sort(expected.begin(), expected.end());
    if (clause == expected) saw_disjunction = true;
  }
  EXPECT_TRUE(saw_thai);
  EXPECT_TRUE(saw_disjunction);
}

TEST_F(QueryParserTest, JuxtapositionImpliesAnd) {
  const ParsedQuery a = ParseBooleanQuery("thai restaurant", vocab_);
  const ParsedQuery b = ParseBooleanQuery("thai AND restaurant", vocab_);
  EXPECT_EQ(a.clauses, b.clauses);
  EXPECT_EQ(a.clauses.size(), 2u);
}

TEST_F(QueryParserTest, OperatorSynonymsAndCase) {
  const ParsedQuery a = ParseBooleanQuery("thai && (cafe || takeaway)",
                                          vocab_);
  const ParsedQuery b = ParseBooleanQuery("THAI AND (CAFE OR TAKEAWAY)",
                                          vocab_);
  EXPECT_EQ(a.clauses, b.clauses);
}

TEST_F(QueryParserTest, DistributesOrOverAnd) {
  // (thai and cafe) or restaurant ->
  // (thai or restaurant) and (cafe or restaurant).
  const ParsedQuery q =
      ParseBooleanQuery("(thai and cafe) or restaurant", vocab_);
  ASSERT_EQ(q.clauses.size(), 2u);
  for (const auto& clause : q.clauses) {
    EXPECT_TRUE(std::find(clause.begin(), clause.end(), restaurant_) !=
                clause.end());
    EXPECT_EQ(clause.size(), 2u);
  }
}

TEST_F(QueryParserTest, AllKeywordsDeduplicates) {
  const ParsedQuery q =
      ParseBooleanQuery("thai and (thai or cafe)", vocab_);
  const auto all = q.AllKeywords();
  EXPECT_EQ(all.size(), 2u);
}

TEST_F(QueryParserTest, SyntaxErrors) {
  EXPECT_THROW(ParseBooleanQuery("", vocab_), QueryParseError);
  EXPECT_THROW(ParseBooleanQuery("thai and", vocab_), QueryParseError);
  EXPECT_THROW(ParseBooleanQuery("(thai", vocab_), QueryParseError);
  EXPECT_THROW(ParseBooleanQuery("thai )", vocab_), QueryParseError);
  EXPECT_THROW(ParseBooleanQuery("or thai", vocab_), QueryParseError);
  EXPECT_THROW(ParseBooleanQuery("thai ? cafe", vocab_), QueryParseError);
}

TEST_F(QueryParserTest, MoreSyntaxErrorPaths) {
  // Whitespace-only input.
  EXPECT_THROW(ParseBooleanQuery("   \t  ", vocab_), QueryParseError);
  // Operators with no operands at all.
  EXPECT_THROW(ParseBooleanQuery("and", vocab_), QueryParseError);
  EXPECT_THROW(ParseBooleanQuery("or", vocab_), QueryParseError);
  EXPECT_THROW(ParseBooleanQuery("and or", vocab_), QueryParseError);
  // Doubled infix operators.
  EXPECT_THROW(ParseBooleanQuery("thai and and cafe", vocab_),
               QueryParseError);
  EXPECT_THROW(ParseBooleanQuery("thai or or cafe", vocab_),
               QueryParseError);
  // Leading infix operator.
  EXPECT_THROW(ParseBooleanQuery("and thai", vocab_), QueryParseError);
  // Empty and unbalanced groups.
  EXPECT_THROW(ParseBooleanQuery("()", vocab_), QueryParseError);
  EXPECT_THROW(ParseBooleanQuery("thai ()", vocab_), QueryParseError);
  EXPECT_THROW(ParseBooleanQuery("((thai)", vocab_), QueryParseError);
  EXPECT_THROW(ParseBooleanQuery("((thai", vocab_), QueryParseError);
  EXPECT_THROW(ParseBooleanQuery("thai))", vocab_), QueryParseError);
  EXPECT_THROW(ParseBooleanQuery(")(", vocab_), QueryParseError);
  // Dangling operator inside a group.
  EXPECT_THROW(ParseBooleanQuery("(thai or) cafe", vocab_),
               QueryParseError);
  EXPECT_THROW(ParseBooleanQuery("(and thai)", vocab_), QueryParseError);
}

TEST_F(QueryParserTest, ErrorMessagesAreInformative) {
  // The serving layer forwards parser messages to clients verbatim, so
  // they should not be empty.
  try {
    ParseBooleanQuery("((thai", vocab_);
    FAIL() << "expected QueryParseError";
  } catch (const QueryParseError& e) {
    EXPECT_STRNE(e.what(), "");
  }
  try {
    ParseBooleanQuery("sushi", vocab_);
    FAIL() << "expected QueryParseError";
  } catch (const QueryParseError& e) {
    EXPECT_STRNE(e.what(), "");
  }
}

TEST_F(QueryParserTest, DeeplyNestedGroupsParse) {
  const ParsedQuery q = ParseBooleanQuery("((((thai))))", vocab_);
  ASSERT_EQ(q.clauses.size(), 1u);
  EXPECT_EQ(q.clauses[0], std::vector<KeywordId>{thai_});
}

TEST_F(QueryParserTest, UnknownKeywordPolicy) {
  EXPECT_THROW(ParseBooleanQuery("sushi", vocab_), QueryParseError);
  ParseOptions lenient;
  lenient.allow_unknown_keywords = true;
  // Unknown AND anything: unsatisfiable (one empty clause).
  const ParsedQuery q = ParseBooleanQuery("sushi and thai", vocab_,
                                          lenient);
  ASSERT_EQ(q.clauses.size(), 1u);
  EXPECT_TRUE(q.clauses[0].empty());
  // Unknown OR known: reduces to the known keyword.
  const ParsedQuery r = ParseBooleanQuery("sushi or thai", vocab_, lenient);
  ASSERT_EQ(r.clauses.size(), 1u);
  EXPECT_EQ(r.clauses[0], std::vector<KeywordId>{thai_});
}

TEST_F(QueryParserTest, ClauseBlowupIsCapped) {
  ParseOptions tight;
  tight.max_clauses = 3;
  EXPECT_THROW(ParseBooleanQuery(
                   "(thai and cafe) or (takeaway and restaurant)", vocab_,
                   tight),
               QueryParseError);
}

class PoiServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = testing::SmallRoadNetwork(99);
    ch_ = std::make_unique<ContractionHierarchy>(graph_);
    oracle_ = std::make_unique<ChOracle>(*ch_);
    service_ = std::make_unique<PoiService>(graph_, *oracle_);
    const std::vector<std::string> thai_rest = {"thai", "restaurant"};
    const std::vector<std::string> thai_take = {"Thai", "takeaway"};
    const std::vector<std::string> cafe = {"cafe", "bakery"};
    bangkok_ = service_->AddPoi("Bangkok Palace", 10, thai_rest);
    wok_ = service_->AddPoi("Wok Express", 200, thai_take);
    beans_ = service_->AddPoi("Beans", 40, cafe);
  }

  Graph graph_;
  std::unique_ptr<ContractionHierarchy> ch_;
  std::unique_ptr<ChOracle> oracle_;
  std::unique_ptr<PoiService> service_;
  ObjectId bangkok_, wok_, beans_;
};

TEST_F(PoiServiceTest, BooleanStringSearch) {
  const auto hits =
      service_->Search("thai and (takeaway or restaurant)", 15, 5);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].name, "Bangkok Palace");  // Closest to vertex 15.
  EXPECT_EQ(hits[1].name, "Wok Express");
  EXPECT_LE(hits[0].travel_time, hits[1].travel_time);
}

TEST_F(PoiServiceTest, CaseInsensitiveTags) {
  // "Thai" tag on Wok Express was lowercased at insert.
  const auto hits = service_->Search("THAI", 15, 5);
  EXPECT_EQ(hits.size(), 2u);
}

TEST_F(PoiServiceTest, UnknownKeywordsYieldNoResults) {
  EXPECT_TRUE(service_->Search("sushi", 15, 5).empty());
  EXPECT_EQ(service_->Search("sushi or cafe", 15, 5).size(), 1u);
}

TEST_F(PoiServiceTest, RankedSearchScoresAndNames) {
  const auto hits = service_->SearchRanked("thai restaurant", 15, 3);
  ASSERT_FALSE(hits.empty());
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i].score, hits[i - 1].score);
  }
  EXPECT_FALSE(hits[0].name.empty());
}

TEST_F(PoiServiceTest, ExpiredControlCancelsSearch) {
  QueryControl control = QueryControl::AfterMillis(0);  // Already expired.
  EXPECT_THROW(service_->Search("thai", 15, 5, &control),
               QueryCancelledError);
  EXPECT_THROW(service_->SearchRanked("thai restaurant", 15, 5, &control),
               QueryCancelledError);
}

TEST_F(PoiServiceTest, CancelFlagAbortsSearch) {
  std::atomic<bool> cancel{true};
  QueryControl control;
  control.cancel = &cancel;
  EXPECT_THROW(service_->Search("thai", 15, 5, &control),
               QueryCancelledError);

  cancel = false;
  const auto hits = service_->Search("thai", 15, 5, &control);
  EXPECT_EQ(hits.size(), 2u);
}

TEST_F(PoiServiceTest, GenerousDeadlineDoesNotPerturbResults) {
  QueryControl control = QueryControl::AfterMillis(60'000);
  const auto limited = service_->Search("thai", 15, 5, &control);
  const auto unlimited = service_->Search("thai", 15, 5);
  ASSERT_EQ(limited.size(), unlimited.size());
  for (std::size_t i = 0; i < limited.size(); ++i) {
    EXPECT_EQ(limited[i].id, unlimited[i].id);
    EXPECT_EQ(limited[i].travel_time, unlimited[i].travel_time);
  }
}

TEST_F(PoiServiceTest, SearchOnMatchesSearch) {
  auto processor = service_->Engine().MakeProcessor();
  const auto on = service_->SearchOn(*processor, "thai", 15, 5);
  const auto direct = service_->Search("thai", 15, 5);
  ASSERT_EQ(on.size(), direct.size());
  for (std::size_t i = 0; i < on.size(); ++i) {
    EXPECT_EQ(on[i].id, direct[i].id);
    EXPECT_EQ(on[i].travel_time, direct[i].travel_time);
  }
  // SearchOn is lenient about unknown keywords (serving path): no throw.
  EXPECT_TRUE(service_->SearchOn(*processor, "sushi", 15, 5).empty());
}

TEST_F(PoiServiceTest, LifecycleUpdatesAffectSearch) {
  service_->ClosePoi(wok_);
  EXPECT_EQ(service_->Search("thai", 15, 5).size(), 1u);
  service_->TagPoi(beans_, "thai");
  EXPECT_EQ(service_->Search("thai", 15, 5).size(), 2u);
  service_->UntagPoi(beans_, "thai");
  EXPECT_EQ(service_->Search("thai", 15, 5).size(), 1u);
  EXPECT_THROW(service_->UntagPoi(beans_, "nonexistent-keyword"),
               std::invalid_argument);
  EXPECT_EQ(service_->NumLivePois(), 2u);
  service_->Maintain();
  EXPECT_EQ(service_->Search("thai", 15, 5).size(), 1u);
}

}  // namespace
}  // namespace kspin
