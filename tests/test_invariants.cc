// End-to-end invariant sweeps parameterized over the framework's central
// tuning knob rho: results must be exact for every rho, the rho candidate
// guarantee must hold, and the documented monotonicities (index size down,
// initialization candidates up) must follow.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "baselines/network_expansion.h"
#include "kspin/kspin.h"
#include "routing/contraction_hierarchy.h"
#include "test_util.h"
#include "text/query_workload.h"

namespace kspin {
namespace {

class RhoSweep : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  void SetUp() override {
    graph_ = testing::SmallRoadNetwork(201);
    store_ = testing::TestDocuments(graph_, 45, 0.22, 301);
    ch_ = std::make_unique<ContractionHierarchy>(graph_);
    oracle_ = std::make_unique<ChOracle>(*ch_);
    inverted_ = std::make_unique<InvertedIndex>(store_, 45);
    relevance_ = std::make_unique<RelevanceModel>(store_, *inverted_);
    expansion_ = std::make_unique<NetworkExpansionBaseline>(
        graph_, store_, *inverted_, *relevance_);
  }

  Graph graph_;
  DocumentStore store_;
  std::unique_ptr<ContractionHierarchy> ch_;
  std::unique_ptr<ChOracle> oracle_;
  std::unique_ptr<InvertedIndex> inverted_;
  std::unique_ptr<RelevanceModel> relevance_;
  std::unique_ptr<NetworkExpansionBaseline> expansion_;
};

TEST_P(RhoSweep, AllQueryTypesExactAtThisRho) {
  KSpinOptions options;
  options.rho = GetParam();
  options.num_threads = 2;
  KSpin engine(graph_, store_, *oracle_, options);

  WorkloadOptions wl;
  wl.vector_lengths = {1, 2, 3};
  wl.num_seed_terms = 2;
  wl.objects_per_term = 2;
  wl.vertices_per_vector = 2;
  QueryWorkload workload(graph_, store_, *inverted_, wl);
  for (std::uint32_t len : wl.vector_lengths) {
    for (const auto& query : workload.QueriesForLength(len)) {
      for (BooleanOp op :
           {BooleanOp::kDisjunctive, BooleanOp::kConjunctive}) {
        const auto got =
            engine.BooleanKnn(query.vertex, 4, query.keywords, op);
        const auto want =
            expansion_->BooleanKnn(query.vertex, 4, query.keywords, op);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i].distance, want[i].distance)
              << "rho=" << GetParam() << " len=" << len;
        }
      }
      const auto got_topk = engine.TopK(query.vertex, 4, query.keywords);
      const auto want_topk =
          expansion_->TopK(query.vertex, 4, query.keywords);
      ASSERT_EQ(got_topk.size(), want_topk.size());
      for (std::size_t i = 0; i < got_topk.size(); ++i) {
        ASSERT_NEAR(got_topk[i].score, want_topk[i].score,
                    1e-9 * std::max(1.0, want_topk[i].score))
            << "rho=" << GetParam();
      }
    }
  }
}

TEST_P(RhoSweep, CandidateBoundRespectedByVoronoiIndexes) {
  const std::uint32_t rho = GetParam();
  KeywordIndexOptions options;
  options.nvd.rho = rho;
  options.num_threads = 2;
  KeywordIndex index(graph_, store_, *inverted_, options);
  std::vector<SiteObject> candidates;
  for (KeywordId t = 0; t < 45; ++t) {
    const ApxNvd* nvd = index.Index(t);
    if (nvd == nullptr || !nvd->HasVoronoi()) continue;
    for (VertexId q = 0; q < graph_.NumVertices(); q += 29) {
      candidates.clear();
      nvd->InitialCandidates(q, &candidates);
      EXPECT_LE(candidates.size(), rho)
          << "keyword " << t << " q=" << q << " rho=" << rho;
      // No duplicates among initial candidates.
      std::set<ObjectId> unique;
      for (const SiteObject& c : candidates) {
        EXPECT_TRUE(unique.insert(c.object).second);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rho, RhoSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 16u));

TEST(RhoMonotonicity, IndexSizeShrinksAsRhoGrows) {
  Graph graph = testing::MediumRoadNetwork(202);
  DocumentStore store = testing::TestDocuments(graph, 80, 0.2, 302);
  InvertedIndex inverted(store, 80);
  std::size_t previous = SIZE_MAX;
  for (std::uint32_t rho : {1u, 3u, 5u, 9u}) {
    KeywordIndexOptions options;
    options.nvd.rho = rho;
    options.num_threads = 2;
    KeywordIndex index(graph, store, inverted, options);
    EXPECT_LE(index.MemoryBytes(), previous) << "rho=" << rho;
    previous = index.MemoryBytes();
  }
}

}  // namespace
}  // namespace kspin
