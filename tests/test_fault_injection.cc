// The fault-injection suite (docs/persistence.md): every storage failure
// class — ENOSPC, short/torn writes, bit rot, truncation, a crash at any
// phase of the atomic write — must surface as a typed
// io::SerializationError or a clean fallback to the previous snapshot,
// never UB or a silently wrong index. Runs under ASan in CI so "no UB"
// is checked, not assumed.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "io/binary_format.h"
#include "io/fault_injection.h"
#include "io/serialization.h"
#include "io/snapshot.h"
#include "routing/dijkstra.h"
#include "service/poi_service.h"
#include "service/service_snapshot.h"
#include "test_util.h"

namespace kspin {
namespace {

// A small serving state with enough variety to exercise every section:
// multiple keywords (flat and Voronoi-eligible), a closed POI, a retag.
class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest()
      : graph_(testing::SmallRoadNetwork(91)),
        oracle_(graph_),
        service_(graph_, oracle_) {
    const std::vector<std::string> cafe = {"cafe", "wifi"};
    const std::vector<std::string> fuel = {"fuel"};
    const std::vector<std::string> thai = {"thai", "restaurant"};
    for (VertexId v = 3; v < graph_.NumVertices(); v += 17) {
      service_.AddPoi("cafe" + std::to_string(v), v, cafe);
    }
    for (VertexId v = 5; v < graph_.NumVertices(); v += 41) {
      service_.AddPoi("fuel" + std::to_string(v), v, fuel);
    }
    for (VertexId v = 8; v < graph_.NumVertices(); v += 53) {
      service_.AddPoi("thai" + std::to_string(v), v, thai);
    }
    service_.ClosePoi(1);
    service_.TagPoi(0, "takeaway");
  }

  /// The snapshot image of the fixture's serving state.
  std::string SnapshotBytes() const {
    std::ostringstream out;
    WriteServiceSnapshot(service_, out);
    return out.str();
  }

  /// Query fingerprint used to prove restored state answers identically.
  std::vector<std::pair<ObjectId, Distance>> Fingerprint(
      PoiService& service) const {
    std::vector<std::pair<ObjectId, Distance>> out;
    for (VertexId from : {VertexId{0}, VertexId{17}, VertexId{100}}) {
      for (const char* query :
           {"cafe", "cafe and wifi", "thai or fuel", "takeaway"}) {
        for (const PoiResult& r : service.Search(query, from, 4)) {
          out.emplace_back(r.id, r.travel_time);
        }
      }
    }
    return out;
  }

  /// Fresh per-test scratch directory under the gtest temp dir.
  std::string ScratchDir() const {
    const std::string dir =
        std::filesystem::path(::testing::TempDir()) /
        (std::string("kspin_fault_") +
         ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
  }

  Graph graph_;
  DijkstraOracle oracle_;
  PoiService service_;
};

// ----- Stream faults (ENOSPC, torn writes, bit rot) ------------------------

TEST_F(FaultInjectionTest, WriteFailureThrowsNotTruncates) {
  // Fail at many different offsets: the first write past the limit must
  // throw (CheckWrite after every write), regardless of which artifact
  // or field it lands in.
  for (const std::uint64_t limit : {0ull, 1ull, 7ull, 64ull, 4096ull}) {
    std::ostringstream sink;
    io::StreamFaultPlan plan;
    plan.fail_after = limit;
    io::FaultyOStream faulty(sink, plan);
    EXPECT_THROW(WriteServiceSnapshot(service_, faulty),
                 io::SerializationError)
        << "fail_after=" << limit;
  }
}

TEST_F(FaultInjectionTest, SaveGraphEnospcThrows) {
  std::ostringstream sink;
  io::StreamFaultPlan plan;
  plan.fail_after = 100;
  io::FaultyOStream faulty(sink, plan);
  EXPECT_THROW(SaveGraph(graph_, faulty), io::SerializationError);
}

TEST_F(FaultInjectionTest, SilentShortWriteDetectedOnLoad) {
  // The writer cannot see a torn write (the stream claims success), but
  // the resulting truncated snapshot must fail validation cleanly.
  const std::string full = SnapshotBytes();
  for (const std::uint64_t keep : std::vector<std::uint64_t>{
           0, 8, 100, full.size() / 2, full.size() - 1}) {
    std::ostringstream sink;
    io::StreamFaultPlan plan;
    plan.silently_drop_after = keep;
    io::FaultyOStream faulty(sink, plan);
    WriteServiceSnapshot(service_, faulty);  // "Succeeds".
    ASSERT_EQ(sink.str().size(), std::min<std::uint64_t>(keep, full.size()));
    EXPECT_THROW(io::SnapshotReader reader(sink.str()),
                 io::SerializationError)
        << "keep=" << keep;
  }
}

TEST_F(FaultInjectionTest, InFlightBitFlipDetectedOnLoad) {
  const std::string full = SnapshotBytes();
  for (const std::uint64_t offset : std::vector<std::uint64_t>{
           20, full.size() / 3, full.size() - 20}) {
    std::ostringstream sink;
    io::StreamFaultPlan plan;
    plan.flip_byte_at = offset;
    plan.flip_mask = 0x40;
    io::FaultyOStream faulty(sink, plan);
    WriteServiceSnapshot(service_, faulty);
    ASSERT_EQ(sink.str().size(), full.size());
    EXPECT_THROW(io::SnapshotReader reader(sink.str()),
                 io::SerializationError)
        << "offset=" << offset;
  }
}

// ----- Container round trip ------------------------------------------------

TEST_F(FaultInjectionTest, SnapshotRoundTripAnswersIdentically) {
  const std::string bytes = SnapshotBytes();
  io::ViewIStream in(bytes);
  RestoredServiceState state = ReadServiceSnapshot(in);
  ASSERT_NE(state.graph, nullptr);
  DijkstraOracle oracle(*state.graph);
  PoiService restored(*state.graph, oracle,
                      std::move(state.catalog.vocabulary),
                      std::move(state.catalog.names), std::move(state.store),
                      std::move(state.alt), std::move(state.keyword_index));
  EXPECT_EQ(Fingerprint(restored), Fingerprint(service_));
  EXPECT_EQ(restored.NumLivePois(), service_.NumLivePois());
  EXPECT_EQ(restored.NameOf(0), service_.NameOf(0));
}

TEST_F(FaultInjectionTest, SnapshotBytesAreDeterministic) {
  // Identical state => identical bytes: the property RELOAD's graph
  // byte-comparison and the kill-9 smoke test rely on.
  EXPECT_EQ(SnapshotBytes(), SnapshotBytes());
}

// ----- Corruption property tests -------------------------------------------

TEST_F(FaultInjectionTest, BitFlipAtEverySectionBoundaryDetected) {
  const std::string bytes = SnapshotBytes();
  const io::SnapshotReader reader(bytes);
  std::vector<std::uint64_t> offsets = {0, 8, 12, bytes.size() - 16,
                                        bytes.size() - 8, bytes.size() - 1};
  for (const auto& [section, payload_offset] : reader.SectionOffsets()) {
    offsets.push_back(payload_offset - 20);  // Section header start.
    offsets.push_back(payload_offset - 8);   // Payload CRC field.
    offsets.push_back(payload_offset);       // First payload byte.
  }
  for (const std::uint64_t offset : offsets) {
    ASSERT_LT(offset, bytes.size());
    for (const std::uint8_t mask : {0x01, 0x80}) {
      std::string corrupt = bytes;
      corrupt[offset] = static_cast<char>(corrupt[offset] ^ mask);
      EXPECT_THROW(io::SnapshotReader r(corrupt), io::SerializationError)
          << "offset=" << offset << " mask=" << int{mask};
    }
  }
}

TEST_F(FaultInjectionTest, BitFlipAtRandomOffsetsDetected) {
  const std::string bytes = SnapshotBytes();
  std::uint64_t rng = 0x5eed5eed5eed5eedull;
  auto next = [&rng] {
    rng ^= rng >> 12;
    rng ^= rng << 25;
    rng ^= rng >> 27;
    return rng * 0x2545f4914f6cdd1dull;
  };
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t offset = next() % bytes.size();
    const std::uint8_t mask =
        static_cast<std::uint8_t>(1u << (next() % 8));
    std::string corrupt = bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ mask);
    EXPECT_THROW(io::SnapshotReader r(corrupt), io::SerializationError)
        << "trial=" << trial << " offset=" << offset
        << " mask=" << int{mask};
  }
}

TEST_F(FaultInjectionTest, TruncationAtEveryBoundaryAndRandomSizesDetected) {
  const std::string bytes = SnapshotBytes();
  const io::SnapshotReader reader(bytes);
  std::vector<std::uint64_t> cuts = {0, 1, 7, 8, 15, 16, bytes.size() - 16,
                                     bytes.size() - 1};
  for (const auto& [section, payload_offset] : reader.SectionOffsets()) {
    cuts.push_back(payload_offset - 20);
    cuts.push_back(payload_offset);
    cuts.push_back(payload_offset + 1);
  }
  std::uint64_t rng = 0xabadcafe1234ull;
  auto next = [&rng] {
    rng ^= rng >> 12;
    rng ^= rng << 25;
    rng ^= rng >> 27;
    return rng * 0x2545f4914f6cdd1dull;
  };
  for (int trial = 0; trial < 100; ++trial) cuts.push_back(next() % bytes.size());
  for (const std::uint64_t cut : cuts) {
    ASSERT_LT(cut, bytes.size());
    EXPECT_THROW(io::SnapshotReader r(bytes.substr(0, cut)),
                 io::SerializationError)
        << "cut=" << cut;
  }
}

// ----- Crash-safe file writing ---------------------------------------------

TEST_F(FaultInjectionTest, CrashBeforeTempWriteLeavesNothing) {
  const std::string dir = ScratchDir();
  const std::string path = dir + "/" + io::SnapshotFileName(1);
  io::AtomicWriteHooks hooks;
  hooks.on_phase = [](io::AtomicWritePhase phase) {
    return phase != io::AtomicWritePhase::kBeforeTempWrite;
  };
  EXPECT_FALSE(WriteServiceSnapshotFile(path, service_, {}, &hooks));
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_TRUE(io::FindSnapshots(dir).empty());
}

TEST_F(FaultInjectionTest, CrashAfterTempWriteLeavesOldStateUsable) {
  const std::string dir = ScratchDir();
  // A good snapshot exists from "yesterday".
  ASSERT_TRUE(
      WriteServiceSnapshotFile(dir + "/" + io::SnapshotFileName(1), service_));
  // Today's snapshot attempt crashes between temp write and rename.
  const std::string path = dir + "/" + io::SnapshotFileName(2);
  io::AtomicWriteHooks hooks;
  hooks.on_phase = [](io::AtomicWritePhase phase) {
    return phase != io::AtomicWritePhase::kAfterTempWrite;
  };
  EXPECT_FALSE(WriteServiceSnapshotFile(path, service_, {}, &hooks));
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".tmp"));  // Real crash debris.

  // Recovery ignores the temp file and restores yesterday's snapshot.
  const auto found = io::FindSnapshots(dir);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found.front().first, 1u);
  std::vector<std::string> errors;
  const auto loaded = LoadNewestValidServiceSnapshot(dir, nullptr, &errors);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->sequence, 1u);
  EXPECT_TRUE(errors.empty());

  // Pruning clears the debris.
  EXPECT_GE(io::PruneSnapshots(dir, 4), 1u);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(FaultInjectionTest, CrashAfterRenameIsAlreadyDurable) {
  const std::string dir = ScratchDir();
  const std::string path = dir + "/" + io::SnapshotFileName(1);
  io::AtomicWriteHooks hooks;
  hooks.on_phase = [](io::AtomicWritePhase phase) {
    return phase != io::AtomicWritePhase::kAfterRename;
  };
  EXPECT_FALSE(WriteServiceSnapshotFile(path, service_, {}, &hooks));
  // The rename happened: the snapshot is complete and valid.
  ASSERT_TRUE(std::filesystem::exists(path));
  const auto loaded = LoadNewestValidServiceSnapshot(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->sequence, 1u);
}

TEST_F(FaultInjectionTest, EnospcDuringAtomicWriteCleansUp) {
  const std::string dir = ScratchDir();
  const std::string path = dir + "/" + io::SnapshotFileName(1);
  io::AtomicWriteHooks hooks;
  hooks.stream_faults.fail_after = 512;
  EXPECT_THROW(WriteServiceSnapshotFile(path, service_, {}, &hooks),
               io::SerializationError);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));  // Removed on throw.
}

// ----- Newest-valid fallback -----------------------------------------------

TEST_F(FaultInjectionTest, FallsBackPastCorruptNewestSnapshot) {
  const std::string dir = ScratchDir();
  ASSERT_TRUE(
      WriteServiceSnapshotFile(dir + "/" + io::SnapshotFileName(1), service_));
  const std::string newest = dir + "/" + io::SnapshotFileName(2);
  ASSERT_TRUE(WriteServiceSnapshotFile(newest, service_));
  io::FlipByteInFile(newest, io::FileSize(newest) / 2, 0x10);

  std::vector<std::string> errors;
  auto loaded = LoadNewestValidServiceSnapshot(dir, nullptr, &errors);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->sequence, 1u);  // Skipped the corrupt sequence 2.
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find(io::SnapshotFileName(2)), std::string::npos);

  // The restored state still answers queries correctly.
  RestoredServiceState state = std::move(loaded->state);
  DijkstraOracle oracle(*state.graph);
  PoiService restored(*state.graph, oracle,
                      std::move(state.catalog.vocabulary),
                      std::move(state.catalog.names), std::move(state.store),
                      std::move(state.alt), std::move(state.keyword_index));
  EXPECT_EQ(Fingerprint(restored), Fingerprint(service_));
}

TEST_F(FaultInjectionTest, AllSnapshotsCorruptMeansCleanRebuildSignal) {
  const std::string dir = ScratchDir();
  for (std::uint64_t seq : {1u, 2u}) {
    const std::string path = dir + "/" + io::SnapshotFileName(seq);
    ASSERT_TRUE(WriteServiceSnapshotFile(path, service_));
    io::TruncateFileTo(path, io::FileSize(path) - 5);
  }
  std::vector<std::string> errors;
  EXPECT_FALSE(
      LoadNewestValidServiceSnapshot(dir, nullptr, &errors).has_value());
  EXPECT_EQ(errors.size(), 2u);
}

TEST_F(FaultInjectionTest, PruneKeepsNewestSnapshots) {
  const std::string dir = ScratchDir();
  for (std::uint64_t seq = 1; seq <= 6; ++seq) {
    ASSERT_TRUE(WriteServiceSnapshotFile(
        dir + "/" + io::SnapshotFileName(seq), service_));
  }
  EXPECT_EQ(io::PruneSnapshots(dir, 2), 4u);
  const auto left = io::FindSnapshots(dir);
  ASSERT_EQ(left.size(), 2u);
  EXPECT_EQ(left[0].first, 6u);
  EXPECT_EQ(left[1].first, 5u);
}

}  // namespace
}  // namespace kspin
