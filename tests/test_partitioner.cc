// Partitioner tests: coverage, disjointness, rough balance, and input
// validation for both strategies.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "routing/partitioner.h"
#include "test_util.h"

namespace kspin {
namespace {

class PartitionerTest : public ::testing::TestWithParam<PartitionStrategy> {
 protected:
  static std::vector<VertexId> AllVertices(const Graph& graph) {
    std::vector<VertexId> all(graph.NumVertices());
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
};

TEST_P(PartitionerTest, CoversAllVerticesDisjointly) {
  Graph graph = testing::SmallRoadNetwork();
  auto parts = PartitionVertices(graph, AllVertices(graph), 4, GetParam());
  ASSERT_EQ(parts.size(), 4u);
  std::set<VertexId> seen;
  std::size_t total = 0;
  for (const auto& part : parts) {
    EXPECT_FALSE(part.empty());
    total += part.size();
    for (VertexId v : part) {
      EXPECT_TRUE(seen.insert(v).second) << "duplicate vertex " << v;
    }
  }
  EXPECT_EQ(total, graph.NumVertices());
}

TEST_P(PartitionerTest, PartsAreRoughlyBalanced) {
  Graph graph = testing::MediumRoadNetwork();
  auto parts = PartitionVertices(graph, AllVertices(graph), 4, GetParam());
  const std::size_t ideal = graph.NumVertices() / 4;
  for (const auto& part : parts) {
    EXPECT_GT(part.size(), ideal / 4);
    EXPECT_LT(part.size(), ideal * 4);
  }
}

TEST_P(PartitionerTest, HandlesSubsets) {
  Graph graph = testing::SmallRoadNetwork();
  std::vector<VertexId> subset;
  for (VertexId v = 0; v < graph.NumVertices(); v += 3) subset.push_back(v);
  auto parts = PartitionVertices(graph, subset, 3, GetParam());
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  EXPECT_EQ(total, subset.size());
}

TEST_P(PartitionerTest, ClampsPartsToInputSize) {
  Graph graph = testing::SmallRoadNetwork();
  std::vector<VertexId> three = {0, 1, 2};
  auto parts = PartitionVertices(graph, three, 10, GetParam());
  EXPECT_LE(parts.size(), 3u);
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  EXPECT_EQ(total, 3u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, PartitionerTest,
                         ::testing::Values(PartitionStrategy::kKdTree,
                                           PartitionStrategy::kBfsGrowth));

TEST(Partitioner, ValidatesArguments) {
  Graph graph = testing::SmallRoadNetwork();
  EXPECT_THROW(
      PartitionVertices(graph, {0, 1}, 0, PartitionStrategy::kKdTree),
      std::invalid_argument);
  EXPECT_THROW(PartitionVertices(graph, {}, 2, PartitionStrategy::kKdTree),
               std::invalid_argument);
}

TEST(Partitioner, KdTreeRequiresCoordinates) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1);
  builder.AddEdge(1, 2, 1);
  builder.AddEdge(2, 3, 1);
  Graph graph = builder.Build();
  EXPECT_THROW(PartitionVertices(graph, {0, 1, 2, 3}, 2,
                                 PartitionStrategy::kKdTree),
               std::invalid_argument);
  // BFS growth works without coordinates.
  auto parts = PartitionVertices(graph, {0, 1, 2, 3}, 2,
                                 PartitionStrategy::kBfsGrowth);
  EXPECT_EQ(parts.size(), 2u);
}

}  // namespace
}  // namespace kspin
