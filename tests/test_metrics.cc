// Unit tests for the observability layer: LatencyHistogram bucketing and
// edge cases, HistogramSnapshot-derived statistics, engine counter
// aggregation (AddQueryStats), the STATS/METRICS snapshot keys, and the
// Prometheus text rendering (docs/observability.md).
#include "server/metrics.h"

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/trace.h"

namespace kspin::server {
namespace {

std::uint64_t BucketTotal(const HistogramSnapshot& snap) {
  std::uint64_t total = 0;
  for (const std::uint64_t b : snap.buckets) total += b;
  return total;
}

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.MeanMicros(), 0u);  // No division by a zero count.
  EXPECT_EQ(h.PercentileMicros(0.5), 0u);
  EXPECT_EQ(h.PercentileMicros(1.0), 0u);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum_micros, 0u);
  EXPECT_EQ(BucketTotal(snap), 0u);
}

TEST(LatencyHistogramTest, ZeroMicrosLandsInFirstBucket) {
  LatencyHistogram h;
  h.Record(0);
  h.Record(1);  // [1, 2) is also bucket 0.
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.sum_micros, 1u);
  EXPECT_EQ(h.MeanMicros(), 0u);  // 1 / 2 truncates.
}

TEST(LatencyHistogramTest, BucketBoundariesAreLog2) {
  LatencyHistogram h;
  h.Record(2);     // [2, 4)  -> bucket 1.
  h.Record(3);     // [2, 4)  -> bucket 1.
  h.Record(4);     // [4, 8)  -> bucket 2.
  h.Record(1023);  // [512, 1024) -> bucket 9.
  h.Record(1024);  // [1024, 2048) -> bucket 10.
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[9], 1u);
  EXPECT_EQ(snap.buckets[10], 1u);
  EXPECT_EQ(BucketTotal(snap), snap.count);
}

TEST(LatencyHistogramTest, HugeValuesSaturateIntoLastBucket) {
  LatencyHistogram h;
  h.Record(~std::uint64_t{0});  // Way past 2^40 us.
  h.Record(std::uint64_t{1} << 60);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.buckets[HistogramSnapshot::kBuckets - 1], 2u);
  EXPECT_EQ(snap.count, 2u);
  // The percentile can only report the last bucket's (finite) upper bound.
  EXPECT_EQ(h.PercentileMicros(1.0),
            HistogramSnapshot::BucketUpperMicros(
                HistogramSnapshot::kBuckets - 1));
}

TEST(LatencyHistogramTest, PercentileIsBucketUpperBound) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.Record(100);   // [64, 128) -> bucket 6.
  for (int i = 0; i < 10; ++i) h.Record(5000);  // [4096, 8192) -> bucket 12.
  EXPECT_EQ(h.PercentileMicros(0.5), 128u);
  EXPECT_EQ(h.PercentileMicros(0.9), 128u);
  EXPECT_EQ(h.PercentileMicros(0.99), 8192u);
  EXPECT_EQ(h.PercentileMicros(1.0), 8192u);
  EXPECT_EQ(h.MeanMicros(), (90u * 100 + 10u * 5000) / 100);
}

TEST(LatencyHistogramTest, SnapshotIsInternallyConsistentUnderWriters) {
  // Writers hammer the histogram while a reader snapshots it. Relaxed
  // loads mean a snapshot may be mid-update, but bucket totals must never
  // exceed the count *recorded afterwards* — and with writers stopped,
  // everything must line up exactly.
  LatencyHistogram h;
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&h, t] {
      for (int i = 0; i < 20000; ++i) {
        h.Record(static_cast<std::uint64_t>(t * 1000 + i % 997));
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    const HistogramSnapshot snap = h.Snapshot();
    EXPECT_LE(snap.count, 80000u);
  }
  for (auto& w : writers) w.join();
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 80000u);
  EXPECT_EQ(BucketTotal(snap), 80000u);
  EXPECT_GT(snap.sum_micros, 0u);
}

TEST(QueryStatsTest, PlusEqualsSumsEveryField) {
  QueryStats a;
  a.network_distance_computations = 1;
  a.candidates_extracted = 2;
  a.lower_bounds_computed = 3;
  a.heaps_created = 4;
  a.heap_insertions = 5;
  a.false_positive_distances = 6;
  a.candidates_pruned_lb = 7;
  a.results_returned = 8;
  a.heap_build_ns = 9;
  a.search_ns = 10;
  a.lb_batch_calls = 11;
  a.lb_batch_items = 12;
  QueryStats b = a;
  b += a;
  EXPECT_EQ(b.network_distance_computations, 2u);
  EXPECT_EQ(b.candidates_extracted, 4u);
  EXPECT_EQ(b.lower_bounds_computed, 6u);
  EXPECT_EQ(b.heaps_created, 8u);
  EXPECT_EQ(b.heap_insertions, 10u);
  EXPECT_EQ(b.false_positive_distances, 12u);
  EXPECT_EQ(b.candidates_pruned_lb, 14u);
  EXPECT_EQ(b.results_returned, 16u);
  EXPECT_EQ(b.heap_build_ns, 18u);
  EXPECT_EQ(b.search_ns, 20u);
  EXPECT_EQ(b.lb_batch_calls, 22u);
  EXPECT_EQ(b.lb_batch_items, 24u);
}

TEST(ServerMetricsTest, AddQueryStatsFoldsIntoEngineCounters) {
  ServerMetrics metrics;
  QueryStats stats;
  stats.network_distance_computations = 10;
  stats.candidates_extracted = 20;
  stats.lower_bounds_computed = 30;
  stats.false_positive_distances = 4;
  stats.results_returned = 6;
  stats.heaps_created = 2;
  stats.heap_insertions = 50;
  stats.candidates_pruned_lb = 3;
  stats.heap_build_ns = 1000;
  stats.search_ns = 2000;
  stats.lb_batch_calls = 5;
  stats.lb_batch_items = 25;
  metrics.AddQueryStats(stats);
  metrics.AddQueryStats(stats);
  EXPECT_EQ(metrics.engine_distance_computations.load(), 20u);
  EXPECT_EQ(metrics.engine_heap_pops.load(), 40u);
  EXPECT_EQ(metrics.engine_lower_bounds.load(), 60u);
  EXPECT_EQ(metrics.engine_false_positive_distances.load(), 8u);
  EXPECT_EQ(metrics.engine_results_returned.load(), 12u);
  EXPECT_EQ(metrics.engine_heaps_created.load(), 4u);
  EXPECT_EQ(metrics.engine_heap_insertions.load(), 100u);
  EXPECT_EQ(metrics.engine_candidates_pruned_lb.load(), 6u);
  EXPECT_EQ(metrics.engine_heap_build_ns.load(), 2000u);
  EXPECT_EQ(metrics.engine_search_ns.load(), 4000u);
  EXPECT_EQ(metrics.engine_lb_batch_calls.load(), 10u);
  EXPECT_EQ(metrics.engine_lb_batch_items.load(), 50u);
}

TEST(ServerMetricsTest, SnapshotCarriesEngineAndLatencyKeys) {
  ServerMetrics metrics;
  metrics.requests_ok.store(5);
  QueryStats stats;
  stats.network_distance_computations = 7;
  stats.false_positive_distances = 2;
  stats.lb_batch_calls = 3;
  stats.lb_batch_items = 9;
  metrics.AddQueryStats(stats);
  metrics.query_latency.Record(300);

  const auto pairs = metrics.Snapshot(3);
  const auto value = [&pairs](const std::string& key) -> std::uint64_t {
    for (const auto& [k, v] : pairs) {
      if (k == key) return v;
    }
    ADD_FAILURE() << "missing key " << key;
    return 0;
  };
  EXPECT_EQ(value("requests_ok"), 5u);
  EXPECT_EQ(value("queue_depth"), 3u);
  EXPECT_EQ(value("engine_distance_computations"), 7u);
  EXPECT_EQ(value("engine_false_positive_distances"), 2u);
  EXPECT_EQ(value("engine_lb_batch_calls"), 3u);
  EXPECT_EQ(value("engine_lb_batch_items"), 9u);
  EXPECT_EQ(value("query_latency_count"), 1u);
  EXPECT_EQ(value("query_latency_mean_us"), 300u);
  EXPECT_EQ(value("query_latency_p99_us"), 512u);  // [256, 512) upper bound.
  EXPECT_EQ(value("update_latency_count"), 0u);
  EXPECT_EQ(value("replication_lag_ms"), 0u);  // Never succeeded: no lag.
  EXPECT_EQ(value("slow_queries"), 0u);
  EXPECT_EQ(value("opcode_metrics"), 0u);
}

TEST(ServerMetricsTest, FullSnapshotHistogramsMatchCounterView) {
  ServerMetrics metrics;
  metrics.query_latency.Record(10);
  metrics.query_latency.Record(20);
  metrics.update_latency.Record(1);
  const MetricsSnapshot snap = metrics.FullSnapshot(0);
  EXPECT_EQ(snap.query_latency.count, 2u);
  EXPECT_EQ(snap.query_latency.sum_micros, 30u);
  EXPECT_EQ(snap.update_latency.count, 1u);
  EXPECT_EQ(BucketTotal(snap.query_latency), 2u);
}

TEST(PrometheusTextTest, RendersCountersGaugesAndHistograms) {
  ServerMetrics metrics;
  metrics.requests_ok.store(17);
  metrics.RecordQueueDepth(9);
  QueryStats stats;
  stats.network_distance_computations = 11;
  metrics.AddQueryStats(stats);
  metrics.query_latency.Record(100);  // Bucket [64, 128).
  metrics.query_latency.Record(100);
  metrics.query_latency.Record(5000);  // Bucket [4096, 8192).

  const std::string text = RenderPrometheusText(metrics.FullSnapshot(4));
  // Counters with TYPE lines.
  EXPECT_NE(text.find("# TYPE kspin_requests_ok counter\n"
                      "kspin_requests_ok 17\n"),
            std::string::npos);
  EXPECT_NE(text.find("kspin_engine_distance_computations 11\n"),
            std::string::npos);
  // Gauges: live depth from the sampled argument, peak from the counter.
  EXPECT_NE(text.find("# TYPE kspin_queue_depth gauge\n"
                      "kspin_queue_depth 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("kspin_queue_depth_peak 9\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE kspin_replication_lag_ms gauge\n"),
            std::string::npos);
  // Histogram: cumulative le buckets, +Inf, sum, count.
  EXPECT_NE(text.find("# TYPE kspin_query_latency_us histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("kspin_query_latency_us_bucket{le=\"128\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("kspin_query_latency_us_bucket{le=\"8192\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("kspin_query_latency_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("kspin_query_latency_us_sum 5200\n"),
            std::string::npos);
  EXPECT_NE(text.find("kspin_query_latency_us_count 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("kspin_update_latency_us_count 0\n"),
            std::string::npos);
}

TEST(TraceTest, FingerprintIsStableAndQuerySensitive) {
  const std::uint64_t a = QueryFingerprint("coffee or tea", 10, 5);
  EXPECT_EQ(a, QueryFingerprint("coffee or tea", 10, 5));
  EXPECT_NE(a, QueryFingerprint("coffee or tea", 11, 5));
  EXPECT_NE(a, QueryFingerprint("coffee or tea", 10, 6));
  EXPECT_NE(a, QueryFingerprint("coffee and tea", 10, 5));
}

TEST(TraceTest, FormatQueryTraceEscapesAndCarriesCounters) {
  QueryTraceEvent event;
  event.fingerprint = 0xABCDEF;
  event.opcode = "SEARCH_BOOLEAN";
  event.query = "say \"hi\"\n\tback\\slash";
  event.vertex = 42;
  event.k = 3;
  event.status = "OK";
  event.latency_us = 1234;
  event.stats.network_distance_computations = 9;
  event.stats.false_positive_distances = 4;
  const std::string line = FormatQueryTrace(event);
  EXPECT_NE(line.find("\"fingerprint\":\"0000000000abcdef\""),
            std::string::npos);
  EXPECT_NE(line.find("\"query\":\"say \\\"hi\\\"\\n\\tback\\\\slash\""),
            std::string::npos);
  EXPECT_NE(line.find("\"latency_us\":1234"), std::string::npos);
  EXPECT_NE(line.find("\"distance_computations\":9"), std::string::npos);
  EXPECT_NE(line.find("\"false_positive_distances\":4"), std::string::npos);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  // A JSON line must never contain a raw newline.
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace kspin::server
