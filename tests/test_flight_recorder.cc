// Unit tests for the flight recorder: JSON rendering of spans and
// events, ring wraparound, the Dump byte budget, and — most importantly
// under TSan — concurrent writers racing a concurrent Dump through the
// per-slot seqlock without a data race or a torn record escaping.
#include "server/flight_recorder.h"

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace kspin::server {
namespace {

std::vector<std::string> Lines(const std::string& dump) {
  std::vector<std::string> lines;
  std::stringstream in(dump);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(FlightRecorderTest, EventRenderedWithNameAndArgs) {
  FlightRecorder recorder(64);
  recorder.RecordEvent(DiagEvent::kPromote, 7, 1234);
  const std::string dump = recorder.Dump();
  EXPECT_NE(dump.find("\"kind\":\"event\""), std::string::npos);
  EXPECT_NE(dump.find("\"type\":\"PROMOTE\""), std::string::npos);
  EXPECT_NE(dump.find("\"a\":7"), std::string::npos);
  EXPECT_NE(dump.find("\"b\":1234"), std::string::npos);
}

TEST(FlightRecorderTest, ShedBurstRenderedWithCauseName) {
  FlightRecorder recorder(64);
  recorder.RecordEvent(DiagEvent::kShedBurst,
                       static_cast<std::uint64_t>(DiagShedCause::kCodel),
                       42);
  const std::string dump = recorder.Dump();
  EXPECT_NE(dump.find("\"type\":\"SHED_BURST\""), std::string::npos);
  EXPECT_NE(dump.find("\"cause\":\"CODEL\""), std::string::npos);
  EXPECT_NE(dump.find("\"count\":42"), std::string::npos);
}

TEST(FlightRecorderTest, SpanRenderedWithTraceIdsAndTimings) {
  FlightRecorder recorder(64);
  SpanRecord span;
  span.trace_id = 0x00ABCDEF01234567ull;
  span.parent_span_id = 0x1111222233334444ull;
  span.span_id = recorder.NextSpanId();
  span.opcode = 0x10;  // kSearchBoolean.
  span.status = 0;     // kOk.
  span.degraded = 1;
  span.queue_us = 12;
  span.execute_us = 345;
  span.reply_us = 6;
  span.results = 10;
  span.heap_pops = 99;
  recorder.RecordSpan(span);
  const std::string dump = recorder.Dump();
  EXPECT_NE(dump.find("\"kind\":\"span\""), std::string::npos);
  EXPECT_NE(dump.find("\"trace_id\":\"00abcdef01234567\""),
            std::string::npos);
  EXPECT_NE(dump.find("\"parent_span_id\":\"1111222233334444\""),
            std::string::npos);
  EXPECT_NE(dump.find("\"degraded\":1"), std::string::npos);
  EXPECT_NE(dump.find("\"queue_us\":12"), std::string::npos);
  EXPECT_NE(dump.find("\"execute_us\":345"), std::string::npos);
  EXPECT_NE(dump.find("\"reply_us\":6"), std::string::npos);
  EXPECT_NE(dump.find("\"results\":10"), std::string::npos);
  EXPECT_NE(dump.find("\"heap_pops\":99"), std::string::npos);
}

TEST(FlightRecorderTest, NextSpanIdNeverZeroAndDistinct) {
  FlightRecorder recorder(64);
  std::uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t id = recorder.NextSpanId();
    EXPECT_NE(id, 0u);
    EXPECT_GT(id, last);
    last = id;
  }
}

TEST(FlightRecorderTest, WraparoundKeepsOnlyNewestRecords) {
  FlightRecorder recorder(64);
  ASSERT_EQ(recorder.capacity(), 64u);
  for (std::uint64_t i = 1; i <= 200; ++i) {
    recorder.RecordEvent(DiagEvent::kSnapshotWritten, i);
  }
  EXPECT_EQ(recorder.written(), 200u);
  const auto lines = Lines(recorder.Dump());
  ASSERT_LE(lines.size(), 64u);
  ASSERT_FALSE(lines.empty());
  // Oldest-first, and the survivors are the newest writes: the last line
  // must be the final event, the first no older than written - capacity.
  EXPECT_NE(lines.back().find("\"a\":200"), std::string::npos);
  EXPECT_NE(lines.front().find("\"seq\":137"), std::string::npos);
}

TEST(FlightRecorderTest, ByteBudgetKeepsNewestLines) {
  FlightRecorder recorder(64);
  for (std::uint64_t i = 1; i <= 50; ++i) {
    recorder.RecordEvent(DiagEvent::kSnapshotWritten, i);
  }
  const auto full = Lines(recorder.Dump());
  ASSERT_EQ(full.size(), 50u);
  const std::string trimmed = recorder.Dump(256);
  EXPECT_LE(trimmed.size(), 256u);
  const auto kept = Lines(trimmed);
  ASSERT_FALSE(kept.empty());
  EXPECT_LT(kept.size(), full.size());
  // The newest line survives the trim; the oldest ones are dropped.
  EXPECT_EQ(kept.back(), full.back());
}

// The TSan-load-bearing test: writers on several threads race each other
// and a dumping reader. Correctness bar: no data race (TSan), every
// dumped line is a complete JSON object (no torn records), and the ring
// still accounts for every write.
TEST(FlightRecorderTest, ConcurrentWritersAndDumperProduceSaneRecords) {
  FlightRecorder recorder(128);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;
  std::atomic<bool> stop{false};

  std::thread dumper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string dump = recorder.Dump();
      for (const std::string& line : Lines(dump)) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        if ((i & 1) == 0) {
          SpanRecord span;
          span.trace_id = static_cast<std::uint64_t>(w) << 32 |
                          static_cast<std::uint64_t>(i);
          span.span_id = recorder.NextSpanId();
          span.opcode = 0x10;
          recorder.RecordSpan(span);
        } else {
          recorder.RecordEvent(DiagEvent::kShedBurst,
                               static_cast<std::uint64_t>(
                                   DiagShedCause::kQueueFull),
                               static_cast<std::uint64_t>(i));
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  dumper.join();

  EXPECT_EQ(recorder.written(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
  // Quiescent now: every slot has a stable record, so the dump holds
  // exactly `capacity` complete lines.
  EXPECT_EQ(Lines(recorder.Dump()).size(), recorder.capacity());
}

}  // namespace
}  // namespace kspin::server
