// Direct tests for the Keyword Separated Index collection: per-keyword
// index creation, the Observation-1 split, update routing, rebuild
// batching, and memory accounting.
#include <gtest/gtest.h>

#include <memory>

#include "kspin/keyword_index.h"
#include "routing/contraction_hierarchy.h"
#include "test_util.h"
#include "text/inverted_index.h"

namespace kspin {
namespace {

class KeywordIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = testing::SmallRoadNetwork(44);
    store_ = testing::TestDocuments(graph_, 50, 0.25, 144);
    inverted_ = std::make_unique<InvertedIndex>(store_, 50);
    ch_ = std::make_unique<ContractionHierarchy>(graph_);
    oracle_ = std::make_unique<ChOracle>(*ch_);
    KeywordIndexOptions options;
    options.nvd.rho = 4;
    options.nvd.lazy_insert_threshold = 3;
    options.num_threads = 2;
    index_ = std::make_unique<KeywordIndex>(graph_, store_, *inverted_,
                                            options);
  }

  Graph graph_;
  DocumentStore store_;
  std::unique_ptr<InvertedIndex> inverted_;
  std::unique_ptr<ContractionHierarchy> ch_;
  std::unique_ptr<ChOracle> oracle_;
  std::unique_ptr<KeywordIndex> index_;
};

TEST_F(KeywordIndexTest, IndexExistsExactlyForNonEmptyKeywords) {
  for (KeywordId t = 0; t < 50; ++t) {
    EXPECT_EQ(index_->Index(t) != nullptr, inverted_->ListSize(t) > 0)
        << "keyword " << t;
  }
  EXPECT_EQ(index_->Index(999), nullptr);  // Out of universe.
}

TEST_F(KeywordIndexTest, ObservationOneSplit) {
  std::size_t expected_voronoi = 0;
  for (KeywordId t = 0; t < 50; ++t) {
    if (inverted_->ListSize(t) > 4) ++expected_voronoi;  // rho = 4.
    if (const ApxNvd* nvd = index_->Index(t)) {
      EXPECT_EQ(nvd->HasVoronoi(), inverted_->ListSize(t) > 4)
          << "keyword " << t;
    }
  }
  EXPECT_EQ(index_->NumVoronoiIndexes(), expected_voronoi);
  EXPECT_GT(index_->NumIndexes(), index_->NumVoronoiIndexes());
}

TEST_F(KeywordIndexTest, UpdateRoutingCreatesAndMaintainsIndexes) {
  // A brand-new keyword gets a fresh (flat) index on first insert.
  const KeywordId fresh = 49;
  const bool was_empty = index_->Index(fresh) == nullptr;
  const std::vector<KeywordId> keywords = {fresh};
  index_->OnObjectInserted(9001, 5, keywords, *oracle_);
  ASSERT_NE(index_->Index(fresh), nullptr);
  if (was_empty) EXPECT_FALSE(index_->Index(fresh)->HasVoronoi());
  EXPECT_EQ(index_->Index(fresh)->NumLazyInserts(),
            was_empty ? 1u : index_->Index(fresh)->NumLazyInserts());

  index_->OnObjectDeleted(9001, keywords);
  EXPECT_TRUE(index_->Index(fresh)->IsDeleted(9001));

  // Keyword add/remove on an existing object.
  index_->OnKeywordAdded(9002, 7, fresh, *oracle_);
  EXPECT_EQ(index_->Index(fresh)->IsDeleted(9002), false);
  index_->OnKeywordRemoved(9002, fresh);
  EXPECT_TRUE(index_->Index(fresh)->IsDeleted(9002));
}

TEST_F(KeywordIndexTest, RebuildPendingBatchesSaturatedIndexes) {
  // Push one busy keyword over its lazy threshold (3).
  KeywordId busy = 0;
  for (KeywordId t = 0; t < 50; ++t) {
    if (inverted_->ListSize(t) > 8) {
      busy = t;
      break;
    }
  }
  const std::vector<KeywordId> keywords = {busy};
  for (ObjectId o = 5000; o < 5005; ++o) {
    index_->OnObjectInserted(o, static_cast<VertexId>(o % 50), keywords,
                             *oracle_);
  }
  ASSERT_TRUE(index_->Index(busy)->NeedsRebuild());
  const std::size_t rebuilt = index_->RebuildPending();
  EXPECT_GE(rebuilt, 1u);
  EXPECT_FALSE(index_->Index(busy)->NeedsRebuild());
  EXPECT_EQ(index_->RebuildPending(), 0u);
}

TEST_F(KeywordIndexTest, MemoryAndBuildAccounting) {
  EXPECT_GT(index_->MemoryBytes(), 0u);
  EXPECT_GE(index_->BuildSeconds(), 0.0);
  // Voronoi-less collections are much smaller: compare against a rho so
  // large that every keyword stays flat.
  KeywordIndexOptions flat;
  flat.nvd.rho = 100000;
  KeywordIndex flat_index(graph_, store_, *inverted_, flat);
  EXPECT_EQ(flat_index.NumVoronoiIndexes(), 0u);
  EXPECT_LT(flat_index.MemoryBytes(), index_->MemoryBytes());
}

}  // namespace
}  // namespace kspin
