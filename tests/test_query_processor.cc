// End-to-end correctness of the K-SPIN Query Processor: Boolean kNN
// (disjunctive/conjunctive), top-k with pseudo lower bounds, and the CNF
// extension — all validated against the brute-force network-expansion
// baseline, across every pluggable Network Distance Module.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/network_expansion.h"
#include "kspin/kspin.h"
#include "routing/contraction_hierarchy.h"
#include "routing/dijkstra.h"
#include "routing/gtree.h"
#include "routing/hub_labeling.h"
#include "test_util.h"
#include "text/query_workload.h"

namespace kspin {
namespace {

enum class OracleKind { kDijkstra, kCh, kHubLabels, kGTree };

// Owns a graph + dataset + one of each distance technique, handing out the
// oracle selected by the test parameter.
class Fixture {
 public:
  explicit Fixture(std::uint64_t seed = 1) {
    graph_ = testing::SmallRoadNetwork(seed);
    store_ = testing::TestDocuments(graph_, 50, 0.2, seed + 100);
    ch_ = std::make_unique<ContractionHierarchy>(graph_);
    labels_ = std::make_unique<HubLabeling>(graph_, *ch_, 2);
    GTreeOptions gt_options;
    gt_options.leaf_size = 32;
    gt_options.num_threads = 2;
    gtree_ = std::make_unique<GTree>(graph_, gt_options);
    dijkstra_oracle_ = std::make_unique<DijkstraOracle>(graph_);
    ch_oracle_ = std::make_unique<ChOracle>(*ch_);
    hl_oracle_ = std::make_unique<HubLabelOracle>(*labels_);
    gtree_oracle_ = std::make_unique<GTreeOracle>(*gtree_);

    inverted_ = std::make_unique<InvertedIndex>(store_, 50);
    relevance_ = std::make_unique<RelevanceModel>(store_, *inverted_);
    expansion_ = std::make_unique<NetworkExpansionBaseline>(
        graph_, store_, *inverted_, *relevance_);
  }

  DistanceOracle& Oracle(OracleKind kind) {
    switch (kind) {
      case OracleKind::kDijkstra:
        return *dijkstra_oracle_;
      case OracleKind::kCh:
        return *ch_oracle_;
      case OracleKind::kHubLabels:
        return *hl_oracle_;
      case OracleKind::kGTree:
        return *gtree_oracle_;
    }
    __builtin_unreachable();
  }

  KSpin MakeEngine(OracleKind kind) {
    KSpinOptions options;
    options.rho = 4;
    options.num_threads = 2;
    return KSpin(graph_, store_, Oracle(kind), options);
  }

  const Graph& graph() const { return graph_; }
  const DocumentStore& store() const { return store_; }
  const InvertedIndex& inverted() const { return *inverted_; }
  NetworkExpansionBaseline& expansion() { return *expansion_; }

 private:
  Graph graph_;
  DocumentStore store_;
  std::unique_ptr<ContractionHierarchy> ch_;
  std::unique_ptr<HubLabeling> labels_;
  std::unique_ptr<GTree> gtree_;
  std::unique_ptr<DijkstraOracle> dijkstra_oracle_;
  std::unique_ptr<ChOracle> ch_oracle_;
  std::unique_ptr<HubLabelOracle> hl_oracle_;
  std::unique_ptr<GTreeOracle> gtree_oracle_;
  std::unique_ptr<InvertedIndex> inverted_;
  std::unique_ptr<RelevanceModel> relevance_;
  std::unique_ptr<NetworkExpansionBaseline> expansion_;
};

// Result-set comparison tolerant of distance ties: the distance sequences
// must match exactly; objects must genuinely satisfy the criteria.
void ExpectSameBknn(const std::vector<BkNNResult>& got,
                    const std::vector<BkNNResult>& expected,
                    const char* context) {
  ASSERT_EQ(got.size(), expected.size()) << context;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].distance, expected[i].distance)
        << context << " rank " << i;
  }
}

void ExpectSameTopK(const std::vector<TopKResult>& got,
                    const std::vector<TopKResult>& expected,
                    const char* context) {
  ASSERT_EQ(got.size(), expected.size()) << context;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].score, expected[i].score,
                1e-9 * std::max(1.0, expected[i].score))
        << context << " rank " << i;
  }
}

class QueryProcessorAllOracles
    : public ::testing::TestWithParam<OracleKind> {};

TEST_P(QueryProcessorAllOracles, BooleanKnnMatchesExpansion) {
  Fixture fixture(3);
  KSpin engine = fixture.MakeEngine(GetParam());
  WorkloadOptions wl;
  wl.vector_lengths = {1, 2, 3};
  wl.num_seed_terms = 3;
  wl.objects_per_term = 2;
  wl.vertices_per_vector = 4;
  QueryWorkload workload(fixture.graph(), fixture.store(),
                         fixture.inverted(), wl);
  for (std::uint32_t len : wl.vector_lengths) {
    for (const auto& query : workload.QueriesForLength(len)) {
      for (BooleanOp op :
           {BooleanOp::kDisjunctive, BooleanOp::kConjunctive}) {
        for (std::uint32_t k : {1u, 5u}) {
          auto got = engine.BooleanKnn(query.vertex, k, query.keywords, op);
          auto expected = fixture.expansion().BooleanKnn(
              query.vertex, k, query.keywords, op);
          ExpectSameBknn(got, expected,
                         op == BooleanOp::kDisjunctive ? "disjunctive"
                                                       : "conjunctive");
        }
      }
    }
  }
}

TEST_P(QueryProcessorAllOracles, TopKMatchesExpansion) {
  Fixture fixture(4);
  KSpin engine = fixture.MakeEngine(GetParam());
  WorkloadOptions wl;
  wl.vector_lengths = {1, 2, 4};
  wl.num_seed_terms = 3;
  wl.objects_per_term = 2;
  wl.vertices_per_vector = 3;
  QueryWorkload workload(fixture.graph(), fixture.store(),
                         fixture.inverted(), wl);
  for (std::uint32_t len : wl.vector_lengths) {
    for (const auto& query : workload.QueriesForLength(len)) {
      for (std::uint32_t k : {1u, 3u, 10u}) {
        auto got = engine.TopK(query.vertex, k, query.keywords);
        auto expected =
            fixture.expansion().TopK(query.vertex, k, query.keywords);
        ExpectSameTopK(got, expected, "topk");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Oracles, QueryProcessorAllOracles,
                         ::testing::Values(OracleKind::kDijkstra,
                                           OracleKind::kCh,
                                           OracleKind::kHubLabels,
                                           OracleKind::kGTree));

TEST(QueryProcessor, CnfQueriesMatchBruteForce) {
  Fixture fixture(5);
  KSpin engine = fixture.MakeEngine(OracleKind::kCh);
  // Build CNF clauses from existing keywords.
  const auto& inverted = fixture.inverted();
  std::vector<KeywordId> frequent;
  for (KeywordId t = 0; t < inverted.NumKeywords() && frequent.size() < 4;
       ++t) {
    if (inverted.ListSize(t) >= 5) frequent.push_back(t);
  }
  ASSERT_GE(frequent.size(), 3u);
  std::vector<std::vector<KeywordId>> clauses = {
      {frequent[0]}, {frequent[1], frequent[2]}};

  auto satisfies = [&](ObjectId o) {
    const DocumentStore& store = fixture.store();
    return store.Contains(o, frequent[0]) &&
           (store.Contains(o, frequent[1]) ||
            store.Contains(o, frequent[2]));
  };
  DijkstraWorkspace workspace(fixture.graph().NumVertices());
  for (VertexId q = 3; q < fixture.graph().NumVertices(); q += 67) {
    auto got = engine.BooleanKnnCnf(q, 3, clauses);
    // Brute force.
    const auto& dist = workspace.SingleSource(fixture.graph(), q);
    std::vector<Distance> expected;
    for (ObjectId o = 0; o < fixture.store().NumSlots(); ++o) {
      if (fixture.store().IsLive(o) && satisfies(o)) {
        expected.push_back(dist[fixture.store().ObjectVertex(o)]);
      }
    }
    std::sort(expected.begin(), expected.end());
    if (expected.size() > 3) expected.resize(3);
    ASSERT_EQ(got.size(), expected.size()) << "q=" << q;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].distance, expected[i]) << "q=" << q << " rank " << i;
      EXPECT_TRUE(satisfies(got[i].object));
    }
  }
}

TEST(QueryProcessor, EdgeCases) {
  Fixture fixture(6);
  KSpin engine = fixture.MakeEngine(OracleKind::kDijkstra);
  const std::vector<KeywordId> keywords = {0, 1};
  EXPECT_TRUE(engine.BooleanKnn(0, 0, keywords, BooleanOp::kDisjunctive)
                  .empty());
  EXPECT_TRUE(engine.TopK(0, 0, keywords).empty());
  EXPECT_TRUE(
      engine.BooleanKnn(0, 5, {}, BooleanOp::kDisjunctive).empty());
  EXPECT_TRUE(engine.TopK(0, 5, {}).empty());
  // Duplicate keywords behave like the deduplicated query.
  const std::vector<KeywordId> dup = {0, 0, 1};
  auto a = engine.TopK(2, 3, dup);
  auto b = engine.TopK(2, 3, keywords);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].score, b[i].score, 1e-9);
  }
}

TEST(QueryProcessor, KLargerThanMatchingObjects) {
  Fixture fixture(7);
  KSpin engine = fixture.MakeEngine(OracleKind::kCh);
  // Find a rare keyword.
  KeywordId rare = kInvalidKeyword;
  for (KeywordId t = 0; t < fixture.inverted().NumKeywords(); ++t) {
    const std::size_t size = fixture.inverted().ListSize(t);
    if (size >= 1 && size <= 3) {
      rare = t;
      break;
    }
  }
  ASSERT_NE(rare, kInvalidKeyword);
  const std::vector<KeywordId> keywords = {rare};
  auto results =
      engine.BooleanKnn(0, 50, keywords, BooleanOp::kDisjunctive);
  EXPECT_EQ(results.size(), fixture.inverted().ListSize(rare));
}

TEST(QueryProcessor, WeightedSumScoringMatchesExpansion) {
  Fixture fixture(9);
  KSpin engine = fixture.MakeEngine(OracleKind::kCh);
  // Normalize by an (over)estimate of the network diameter.
  ScoringFunction scoring;
  scoring.kind = ScoringFunction::Kind::kWeightedSum;
  scoring.max_distance = 200000.0;
  WorkloadOptions wl;
  wl.vector_lengths = {2, 3};
  wl.num_seed_terms = 2;
  wl.objects_per_term = 2;
  wl.vertices_per_vector = 3;
  QueryWorkload workload(fixture.graph(), fixture.store(),
                         fixture.inverted(), wl);
  for (double alpha : {0.2, 0.5, 0.8}) {
    scoring.alpha = alpha;
    for (std::uint32_t len : wl.vector_lengths) {
      for (const auto& query : workload.QueriesForLength(len)) {
        auto got = engine.TopK(query.vertex, 5, query.keywords, scoring);
        auto expected = fixture.expansion().TopK(query.vertex, 5,
                                                 query.keywords, scoring);
        ExpectSameTopK(got, expected, "weighted-sum");
      }
    }
  }
}

TEST(QueryProcessor, WeightedSumExtremesOrderAsExpected) {
  Fixture fixture(10);
  KSpin engine = fixture.MakeEngine(OracleKind::kCh);
  std::vector<KeywordId> keywords;
  for (KeywordId t = 0; t < fixture.inverted().NumKeywords() &&
                        keywords.size() < 2;
       ++t) {
    if (fixture.inverted().ListSize(t) >= 8) keywords.push_back(t);
  }
  ASSERT_EQ(keywords.size(), 2u);
  // alpha -> 1: ranking approaches pure nearest-neighbour order.
  ScoringFunction near_distance;
  near_distance.kind = ScoringFunction::Kind::kWeightedSum;
  near_distance.alpha = 0.999;
  near_distance.max_distance = 200000.0;
  auto by_score = engine.TopK(3, 5, keywords, near_distance);
  for (std::size_t i = 1; i < by_score.size(); ++i) {
    EXPECT_GE(by_score[i].distance, by_score[i - 1].distance);
  }
  // alpha -> 0: ranking approaches pure relevance order.
  ScoringFunction near_text;
  near_text.kind = ScoringFunction::Kind::kWeightedSum;
  near_text.alpha = 0.001;
  near_text.max_distance = 200000.0;
  auto by_text = engine.TopK(3, 5, keywords, near_text);
  for (std::size_t i = 1; i < by_text.size(); ++i) {
    EXPECT_LE(by_text[i].relevance, by_text[i - 1].relevance + 1e-6);
  }
}

TEST(QueryProcessor, ValidLowerBoundAblationStaysExact) {
  Fixture fixture(11);
  KSpin engine = fixture.MakeEngine(OracleKind::kCh);
  std::vector<KeywordId> keywords;
  for (KeywordId t = 0; t < fixture.inverted().NumKeywords() &&
                        keywords.size() < 3;
       ++t) {
    if (fixture.inverted().ListSize(t) >= 5) keywords.push_back(t);
  }
  ASSERT_GE(keywords.size(), 2u);
  for (VertexId q = 0; q < fixture.graph().NumVertices(); q += 59) {
    QueryStats pseudo_stats;
    auto with_pseudo = engine.TopK(q, 5, keywords, &pseudo_stats);
    // Disable pseudo lower bounds: results identical, work never smaller.
    // (Access via the facade's processor is not exposed; rebuild one.)
    QueryStats valid_stats;
    QueryProcessor processor(engine.Store(), engine.Inverted(),
                             engine.Relevance(), engine.Keywords(),
                             engine.Alt(), engine.Oracle());
    processor.SetUsePseudoLowerBounds(false);
    auto with_valid = processor.TopK(q, 5, keywords, &valid_stats);
    ASSERT_EQ(with_pseudo.size(), with_valid.size());
    for (std::size_t i = 0; i < with_pseudo.size(); ++i) {
      EXPECT_NEAR(with_pseudo[i].score, with_valid[i].score, 1e-9);
    }
    EXPECT_LE(pseudo_stats.candidates_extracted,
              valid_stats.candidates_extracted);
  }
}

TEST(QueryProcessor, TopKStreamMatchesBatchAndPaginates) {
  Fixture fixture(12);
  KSpin engine = fixture.MakeEngine(OracleKind::kCh);
  QueryProcessor processor(engine.Store(), engine.Inverted(),
                           engine.Relevance(), engine.Keywords(),
                           engine.Alt(), engine.Oracle());
  std::vector<KeywordId> keywords;
  for (KeywordId t = 0; t < fixture.inverted().NumKeywords() &&
                        keywords.size() < 2;
       ++t) {
    if (fixture.inverted().ListSize(t) >= 8) keywords.push_back(t);
  }
  ASSERT_EQ(keywords.size(), 2u);
  for (VertexId q = 1; q < fixture.graph().NumVertices(); q += 97) {
    const auto batch = processor.TopK(q, 12, keywords);
    auto stream = processor.OpenTopKStream(q, keywords);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto next = stream.Next();
      ASSERT_TRUE(next.has_value()) << "q=" << q << " i=" << i;
      EXPECT_NEAR(next->score, batch[i].score, 1e-9)
          << "q=" << q << " i=" << i;
    }
    EXPECT_EQ(stream.Produced(), batch.size());
  }
}

TEST(QueryProcessor, TopKStreamExhaustsToAllRelevantObjects) {
  Fixture fixture(13);
  KSpin engine = fixture.MakeEngine(OracleKind::kDijkstra);
  QueryProcessor processor(engine.Store(), engine.Inverted(),
                           engine.Relevance(), engine.Keywords(),
                           engine.Alt(), engine.Oracle());
  // Single keyword: the stream must eventually produce exactly inv(t),
  // in ascending score order.
  KeywordId t = 0;
  for (; t < fixture.inverted().NumKeywords(); ++t) {
    if (fixture.inverted().ListSize(t) >= 5) break;
  }
  const std::vector<KeywordId> keywords = {t};
  auto stream = processor.OpenTopKStream(4, keywords);
  double last = 0.0;
  std::size_t count = 0;
  while (auto next = stream.Next()) {
    EXPECT_GE(next->score, last);
    last = next->score;
    ++count;
  }
  EXPECT_EQ(count, fixture.inverted().ListSize(t));
  EXPECT_FALSE(stream.Next().has_value());  // Stays exhausted.
}

// A hand-built 10-vertex path network with a known object layout, so every
// QueryStats invariant can be checked against exact expectations:
//
//   0 -1- 1 -1- 2 -1- ... -1- 9      (all edge weights 1)
//
// keyword 0 on the objects at odd vertices {1,3,5,7,9}; keyword 1 on the
// objects at {3,6,9}. Union = {1,3,5,6,7,9}, intersection = {3,9}.
class StatsNetwork {
 public:
  StatsNetwork() {
    GraphBuilder builder(10);
    std::vector<Coordinate> coords;
    for (VertexId v = 0; v < 10; ++v) {
      if (v > 0) builder.AddEdge(v - 1, v, 1);
      coords.push_back({static_cast<std::int32_t>(v) * 10, 0});
    }
    builder.SetCoordinates(std::move(coords));
    graph_ = builder.Build();
    for (VertexId v : {1, 3, 5, 7, 9}) {
      store_.AddObject(v, {{0, 1}});
    }
    for (VertexId v : {3, 6, 9}) {
      if (v == 3 || v == 9) {
        store_.AddKeyword(v == 3 ? 1u : 4u, 1);  // Objects 1 and 4.
      } else {
        store_.AddObject(v, {{1, 1}});
      }
    }
    oracle_ = std::make_unique<DijkstraOracle>(graph_);
    KSpinOptions options;
    options.rho = 2;  // Both keywords are above the rho cutoff.
    options.num_threads = 1;
    engine_ = std::make_unique<KSpin>(graph_, store_, *oracle_, options);
  }

  KSpin& engine() { return *engine_; }

 private:
  Graph graph_;
  DocumentStore store_;
  std::unique_ptr<DijkstraOracle> oracle_;
  std::unique_ptr<KSpin> engine_;
};

TEST(QueryStatsInvariants, DisjunctiveCountsOnHandBuiltNetwork) {
  StatsNetwork net;
  QueryStats stats;
  const std::vector<KeywordId> keywords = {0, 1};
  const auto results = net.engine().BooleanKnn(
      0, 3, keywords, BooleanOp::kDisjunctive, &stats);
  // Nearest three of the union {1,3,5,6,7,9} from vertex 0.
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].distance, 1u);
  EXPECT_EQ(results[1].distance, 3u);
  EXPECT_EQ(results[2].distance, 5u);
  // Counter invariants.
  EXPECT_EQ(stats.results_returned, results.size());
  EXPECT_EQ(stats.heaps_created, 2u);  // One inverted heap per keyword.
  EXPECT_GE(stats.candidates_extracted, results.size());
  EXPECT_GE(stats.network_distance_computations, results.size());
  // Every result paid one exact distance; the rest were false positives.
  EXPECT_EQ(stats.false_positive_distances,
            stats.network_distance_computations - results.size());
  EXPECT_LE(stats.false_positive_distances,
            stats.network_distance_computations);
  EXPECT_GT(stats.search_ns, 0u);
}

TEST(QueryStatsInvariants, ConjunctiveCountsOnHandBuiltNetwork) {
  StatsNetwork net;
  QueryStats stats;
  const std::vector<KeywordId> keywords = {0, 1};
  const auto results = net.engine().BooleanKnn(
      0, 3, keywords, BooleanOp::kConjunctive, &stats);
  // Intersection is {3, 9}: fewer results than k.
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].distance, 3u);
  EXPECT_EQ(results[1].distance, 9u);
  EXPECT_EQ(stats.results_returned, 2u);
  EXPECT_EQ(stats.false_positive_distances,
            stats.network_distance_computations - results.size());
  EXPECT_GE(stats.network_distance_computations, results.size());
}

TEST(QueryStatsInvariants, ConjunctiveNeverBeatsDisjunctiveOnResults) {
  StatsNetwork net;
  QueryStats dis_stats;
  QueryStats con_stats;
  const std::vector<KeywordId> keywords = {0, 1};
  const auto dis = net.engine().BooleanKnn(0, 10, keywords,
                                           BooleanOp::kDisjunctive,
                                           &dis_stats);
  const auto con = net.engine().BooleanKnn(0, 10, keywords,
                                           BooleanOp::kConjunctive,
                                           &con_stats);
  EXPECT_EQ(dis.size(), 6u);  // |union|.
  EXPECT_EQ(con.size(), 2u);  // |intersection|.
  EXPECT_LE(con_stats.results_returned, dis_stats.results_returned);
  // Exhausting the union with k past the population touches everything:
  // distance computations equal the live matching objects, so no false
  // positives remain.
  EXPECT_EQ(dis_stats.false_positive_distances, 0u);
}

TEST(QueryStatsInvariants, StatsAccumulateAcrossQueries) {
  StatsNetwork net;
  QueryStats stats;  // Deliberately reused: += semantics.
  const std::vector<KeywordId> keywords = {0};
  (void)net.engine().BooleanKnn(0, 2, keywords, BooleanOp::kDisjunctive,
                                &stats);
  const std::uint64_t after_first = stats.network_distance_computations;
  EXPECT_GT(after_first, 0u);
  (void)net.engine().BooleanKnn(0, 2, keywords, BooleanOp::kDisjunctive,
                                &stats);
  EXPECT_EQ(stats.network_distance_computations, 2 * after_first);
  EXPECT_EQ(stats.heaps_created, 2u);
}

TEST(QueryProcessor, StatsArePopulated) {
  Fixture fixture(8);
  KSpin engine = fixture.MakeEngine(OracleKind::kCh);
  std::vector<KeywordId> keywords;
  for (KeywordId t = 0; t < fixture.inverted().NumKeywords() &&
                        keywords.size() < 2;
       ++t) {
    if (fixture.inverted().ListSize(t) >= 8) keywords.push_back(t);
  }
  ASSERT_EQ(keywords.size(), 2u);
  QueryStats stats;
  auto results = engine.TopK(1, 5, keywords, &stats);
  ASSERT_FALSE(results.empty());
  EXPECT_GT(stats.candidates_extracted, 0u);
  EXPECT_GT(stats.network_distance_computations, 0u);
  EXPECT_EQ(stats.heaps_created, 2u);
  EXPECT_GT(stats.lower_bounds_computed, 0u);
  // The point of K-SPIN: distance computations stay near k, far below the
  // total candidate population (kappa <= 5k in the paper's experiments).
  EXPECT_LE(stats.network_distance_computations,
            stats.lower_bounds_computed + 5);
}

}  // namespace
}  // namespace kspin
