// The mutation-subsystem suite: durable op-log append/sync/replay, torn
// tails and bit rot, a simulated crash at every phase of the
// append/fsync/rotate cycle, rotation and snapshot-driven truncation, the
// FETCH_OPLOG read path, the mutation record codec, the idempotency
// cache, and the epoch gate. Runs under ASan (fault suite) and TSan
// (group-commit and gate tests) in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "io/fault_injection.h"
#include "routing/dijkstra.h"
#include "server/mutation.h"
#include "server/oplog.h"
#include "service/poi_service.h"
#include "test_util.h"

namespace kspin::server {
namespace {

std::vector<std::uint8_t> Payload(std::uint8_t tag, std::size_t size = 8) {
  return std::vector<std::uint8_t>(size, tag);
}

class OplogTest : public ::testing::Test {
 protected:
  /// Fresh per-test scratch directory under the gtest temp dir.
  std::string ScratchDir() const {
    const std::string dir =
        std::filesystem::path(::testing::TempDir()) /
        (std::string("kspin_oplog_") +
         ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
  }

  /// Options for a log rooted at `dir` (keeps aggregate-init warnings
  /// away from the call sites).
  static OplogOptions DirOptions(std::string dir,
                                 std::uint64_t segment_bytes = 4u << 20) {
    OplogOptions options;
    options.dir = std::move(dir);
    options.segment_bytes = segment_bytes;
    return options;
  }

  /// Replays `dir` from `from` and returns (result, delivered records).
  static std::pair<OplogReplayResult, std::vector<OplogRecord>> Replay(
      const std::string& dir, std::uint64_t from = 0) {
    std::vector<OplogRecord> records;
    const OplogReplayResult result = ReplayOplog(
        dir, from, [&](const OplogRecord& r) { records.push_back(r); });
    return {result, records};
  }
};

// ----- Append / sync / replay round trip -----------------------------------

TEST_F(OplogTest, AppendSyncReplayRoundTrip) {
  const std::string dir = ScratchDir();
  {
    Oplog log(DirOptions(dir));
    ASSERT_TRUE(log.Open());
    for (std::uint8_t i = 1; i <= 5; ++i) {
      EXPECT_EQ(log.Append(Payload(i, i * 3)), i);
    }
    ASSERT_TRUE(log.Sync());
    EXPECT_EQ(log.LastSequence(), 5u);
    EXPECT_EQ(log.DurableSequence(), 5u);
    EXPECT_EQ(log.OldestSequence(), 1u);
    EXPECT_EQ(log.Appends(), 5u);
    EXPECT_GE(log.FsyncBatches(), 1u);
  }
  const auto [result, records] = Replay(dir);
  EXPECT_FALSE(result.stopped_at_corruption);
  EXPECT_EQ(result.records_applied, 5u);
  EXPECT_EQ(result.last_sequence, 5u);
  ASSERT_EQ(records.size(), 5u);
  for (std::uint8_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(records[i - 1].sequence, i);
    EXPECT_EQ(records[i - 1].payload, Payload(i, i * 3));
  }
  // Replay on top of a snapshot that already covers sequences 1..3.
  const auto [tail_result, tail] = Replay(dir, 3);
  EXPECT_EQ(tail_result.records_applied, 2u);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].sequence, 4u);
}

TEST_F(OplogTest, ReopenSeatsWriterAfterLastRecord) {
  const std::string dir = ScratchDir();
  {
    Oplog log(DirOptions(dir));
    ASSERT_TRUE(log.Open());
    EXPECT_EQ(log.Append(Payload(1)), 1u);
    EXPECT_EQ(log.Append(Payload(2)), 2u);
    ASSERT_TRUE(log.Sync());
  }
  Oplog log(DirOptions(dir));
  ASSERT_TRUE(log.Open());
  EXPECT_EQ(log.LastSequence(), 2u);
  EXPECT_EQ(log.Append(Payload(3)), 3u);
  ASSERT_TRUE(log.Sync());
  EXPECT_EQ(Replay(dir).first.records_applied, 3u);
}

TEST_F(OplogTest, OpenSeedsSequenceFromRestoredSnapshot) {
  // A restored snapshot can be ahead of a truncated (or absent) log; the
  // next mutation must continue from the snapshot's applied position.
  const std::string dir = ScratchDir();
  Oplog log(DirOptions(dir));
  ASSERT_TRUE(log.Open(101));
  EXPECT_EQ(log.LastSequence(), 100u);
  EXPECT_EQ(log.Append(Payload(1)), 101u);
}

TEST_F(OplogTest, DisabledLogAssignsSequencesInMemory) {
  Oplog log(OplogOptions{});  // Empty dir: durability off.
  EXPECT_FALSE(log.Enabled());
  ASSERT_TRUE(log.Open());
  EXPECT_EQ(log.Append(Payload(1)), 1u);
  EXPECT_EQ(log.Append(Payload(2)), 2u);
  EXPECT_TRUE(log.Sync());
  EXPECT_EQ(log.LastSequence(), 2u);
}

// ----- Torn tails and bit rot ----------------------------------------------

TEST_F(OplogTest, TornTailReplaysLongestValidPrefix) {
  const std::string dir = ScratchDir();
  {
    Oplog log(DirOptions(dir));
    ASSERT_TRUE(log.Open());
    for (std::uint8_t i = 1; i <= 3; ++i) log.Append(Payload(i, 40));
    ASSERT_TRUE(log.Sync());
  }
  // A crash mid-write leaves the last record torn.
  const auto segments = FindOplogSegments(dir);
  ASSERT_EQ(segments.size(), 1u);
  const std::string& path = segments.front().second;
  io::TruncateFileTo(path, io::FileSize(path) - 7);

  const auto [result, records] = Replay(dir);
  EXPECT_TRUE(result.stopped_at_corruption);
  EXPECT_EQ(result.records_applied, 2u);
  EXPECT_EQ(result.last_sequence, 2u);

  // Reopening truncates the torn tail away and resumes cleanly after it.
  Oplog log(DirOptions(dir));
  ASSERT_TRUE(log.Open());
  EXPECT_EQ(log.LastSequence(), 2u);
  EXPECT_EQ(log.Append(Payload(9, 40)), 3u);
  ASSERT_TRUE(log.Sync());
  const auto [after, after_records] = Replay(dir);
  EXPECT_FALSE(after.stopped_at_corruption);
  EXPECT_EQ(after.records_applied, 3u);
  EXPECT_EQ(after_records.back().payload, Payload(9, 40));
}

TEST_F(OplogTest, BitFlipStopsReplayBeforeCorruptRecord) {
  const std::string dir = ScratchDir();
  {
    Oplog log(DirOptions(dir));
    ASSERT_TRUE(log.Open());
    for (std::uint8_t i = 1; i <= 3; ++i) log.Append(Payload(i, 24));
    ASSERT_TRUE(log.Sync());
  }
  const auto segments = FindOplogSegments(dir);
  ASSERT_EQ(segments.size(), 1u);
  // Segment header (16) + record 1 (16 + 24) + a few bytes into record 2.
  io::FlipByteInFile(segments.front().second, 16 + 40 + 20, 0x04);

  const auto [result, records] = Replay(dir);
  EXPECT_TRUE(result.stopped_at_corruption);
  EXPECT_EQ(result.records_applied, 1u);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records.front().sequence, 1u);
  EXPECT_NE(result.corruption_detail.find("checksum"), std::string::npos);
}

// ----- Crash at every phase ------------------------------------------------

TEST_F(OplogTest, CrashAtEveryPhaseLeavesReplayableLog) {
  // Simulate kill -9 at each instrumented instant of the
  // append/fsync/rotate cycle; whatever is on disk afterwards must replay
  // to a dense, valid prefix, and a restarted writer must resume from it.
  for (const OplogPhase crash_phase :
       {OplogPhase::kAfterRecordWrite, OplogPhase::kAfterSync,
        OplogPhase::kBeforeRotate, OplogPhase::kAfterRotateTemp,
        OplogPhase::kAfterRotateRename}) {
    const std::string dir =
        ScratchDir() + "_" + std::to_string(static_cast<int>(crash_phase));
    std::filesystem::create_directories(dir);
    std::uint64_t durable_at_crash = 0;
    {
      OplogOptions options;
      options.dir = dir;
      options.segment_bytes = 64;  // Rotate every couple of records.
      bool crashed = false;
      options.hooks.on_phase = [&](OplogPhase phase) {
        if (phase == crash_phase) {
          crashed = true;
          return false;
        }
        return true;
      };
      Oplog log(options);
      ASSERT_TRUE(log.Open());
      for (std::uint8_t i = 1; i <= 10 && !crashed; ++i) {
        if (log.Append(Payload(i, 24)) == 0) break;
        if (!log.Sync()) break;
        durable_at_crash = log.DurableSequence();
      }
      ASSERT_TRUE(crashed) << "phase " << static_cast<int>(crash_phase);
    }
    // Replay after the "crash": a dense prefix that covers at least every
    // record whose Sync completed before the crash.
    const auto [result, records] = Replay(dir);
    EXPECT_GE(result.last_sequence, durable_at_crash)
        << "phase " << static_cast<int>(crash_phase);
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i].sequence, i + 1);
    }
    // Restart: the writer resumes exactly after the replayable prefix.
    Oplog restarted(DirOptions(dir));
    ASSERT_TRUE(restarted.Open(result.last_sequence + 1));
    EXPECT_EQ(restarted.Append(Payload(0xee, 24)),
              result.last_sequence + 1);
    ASSERT_TRUE(restarted.Sync());
    const auto [after, after_records] = Replay(dir);
    EXPECT_FALSE(after.stopped_at_corruption);
    EXPECT_EQ(after.last_sequence, result.last_sequence + 1);
  }
}

// ----- Rotation and truncation ---------------------------------------------

TEST_F(OplogTest, RotationKeepsSequencesDenseAcrossSegments) {
  const std::string dir = ScratchDir();
  Oplog log(DirOptions(dir, 1));  // Rotate after every record.
  ASSERT_TRUE(log.Open());
  for (std::uint8_t i = 1; i <= 8; ++i) {
    ASSERT_EQ(log.Append(Payload(i)), i);
  }
  ASSERT_TRUE(log.Sync());
  EXPECT_GE(FindOplogSegments(dir).size(), 4u);
  const auto [result, records] = Replay(dir);
  EXPECT_FALSE(result.stopped_at_corruption);
  EXPECT_EQ(result.records_applied, 8u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].sequence, i + 1);
  }
}

TEST_F(OplogTest, TruncateThroughDeletesOnlyCoveredSealedSegments) {
  const std::string dir = ScratchDir();
  Oplog log(DirOptions(dir, 1));
  ASSERT_TRUE(log.Open());
  for (std::uint8_t i = 1; i <= 6; ++i) log.Append(Payload(i));
  ASSERT_TRUE(log.Sync());
  const std::size_t before = FindOplogSegments(dir).size();

  // A snapshot covering sequence 4 releases the segments holding 1..4.
  const std::size_t removed = log.TruncateThrough(4);
  EXPECT_GT(removed, 0u);
  EXPECT_EQ(FindOplogSegments(dir).size(), before - removed);
  EXPECT_GT(log.OldestSequence(), 1u);
  EXPECT_LE(log.OldestSequence(), 5u);

  // The surviving suffix still replays (from the covered position)...
  const auto [result, records] = Replay(dir, log.OldestSequence() - 1);
  EXPECT_FALSE(result.stopped_at_corruption);
  EXPECT_EQ(result.last_sequence, 6u);
  // ...and TruncateThrough never deletes the active segment, so the most
  // recent history stays tailable even when a snapshot covers everything.
  log.TruncateThrough(100);
  EXPECT_FALSE(FindOplogSegments(dir).empty());
  EXPECT_EQ(Replay(dir, 5).first.last_sequence, 6u);
}

// ----- The FETCH_OPLOG read path -------------------------------------------

TEST_F(OplogTest, ReadRangeRespectsBudgetWithProgressGuarantee) {
  const std::string dir = ScratchDir();
  Oplog log(DirOptions(dir));
  ASSERT_TRUE(log.Open());
  for (std::uint8_t i = 1; i <= 6; ++i) log.Append(Payload(i, 100));
  ASSERT_TRUE(log.Sync());

  std::vector<OplogRecord> out;
  bool truncated = true;
  // Budget for roughly two records (payload 100 + overhead 32 each).
  ASSERT_TRUE(log.ReadRange(0, 280, &out, &truncated));
  EXPECT_FALSE(truncated);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].sequence, 1u);

  // A budget too small for even one record still returns one: progress.
  out.clear();
  ASSERT_TRUE(log.ReadRange(2, 1, &out, &truncated));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.front().sequence, 3u);

  // In sync: nothing to return, not truncated.
  out.clear();
  ASSERT_TRUE(log.ReadRange(6, 0, &out, &truncated));
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(truncated);
}

TEST_F(OplogTest, ReadRangeSignalsTruncatedHistory) {
  const std::string dir = ScratchDir();
  Oplog log(DirOptions(dir, 1));
  ASSERT_TRUE(log.Open());
  for (std::uint8_t i = 1; i <= 6; ++i) log.Append(Payload(i));
  ASSERT_TRUE(log.Sync());
  ASSERT_GT(log.TruncateThrough(4), 0u);

  // A replica at sequence 1 needs 2..6, but 2 is gone: snapshot fallback.
  std::vector<OplogRecord> out;
  bool truncated = false;
  ASSERT_TRUE(log.ReadRange(1, 0, &out, &truncated));
  EXPECT_TRUE(truncated);

  // A replica right at the retention edge can still tail.
  out.clear();
  ASSERT_TRUE(log.ReadRange(log.OldestSequence() - 1, 0, &out, &truncated));
  EXPECT_FALSE(truncated);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front().sequence, log.OldestSequence());
  EXPECT_EQ(out.back().sequence, 6u);
}

TEST_F(OplogTest, ExplicitSequenceAppendMustStayDense) {
  const std::string dir = ScratchDir();
  Oplog log(DirOptions(dir));
  ASSERT_TRUE(log.Open());
  EXPECT_EQ(log.Append(Payload(1), 5), 0u);  // Gap: rejected.
  EXPECT_EQ(log.Append(Payload(1), 1), 1u);
  EXPECT_EQ(log.Append(Payload(2), 3), 0u);  // Gap: rejected.
  EXPECT_EQ(log.Append(Payload(2), 2), 2u);
  EXPECT_EQ(log.Append(Payload(2), 2), 0u);  // Duplicate: rejected.
  ASSERT_TRUE(log.Sync());
  EXPECT_EQ(Replay(dir).first.last_sequence, 2u);
}

TEST_F(OplogTest, ResetDiscardsHistoryAndJumpsSequence) {
  const std::string dir = ScratchDir();
  Oplog log(DirOptions(dir));
  ASSERT_TRUE(log.Open());
  for (std::uint8_t i = 1; i <= 3; ++i) log.Append(Payload(i));
  ASSERT_TRUE(log.Sync());

  // A replica that installed a snapshot at sequence 10 cannot represent
  // the 4..10 gap in a dense log; it starts over.
  ASSERT_TRUE(log.Reset(11));
  EXPECT_EQ(log.LastSequence(), 10u);
  EXPECT_EQ(log.Append(Payload(9), 11), 11u);
  ASSERT_TRUE(log.Sync());
  const auto [result, records] = Replay(dir);
  EXPECT_FALSE(result.stopped_at_corruption);
  EXPECT_EQ(result.records_applied, 1u);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records.front().sequence, 11u);
}

// ----- Divergence quarantine -----------------------------------------------

TEST_F(OplogTest, QuarantineTailPreservesDivergentRecords) {
  const std::string dir = ScratchDir();
  Oplog log(DirOptions(dir));
  ASSERT_TRUE(log.Open());
  for (std::uint8_t i = 1; i <= 5; ++i) log.Append(Payload(i, 8 + i));
  ASSERT_TRUE(log.Sync());

  // Records 4..5 belong to a dead reign: preserve them aside.
  std::string path;
  EXPECT_EQ(log.QuarantineTail(4, &path), 2u);
  ASSERT_FALSE(path.empty());
  ASSERT_TRUE(std::filesystem::exists(path));

  // The quarantine file uses the segment format, so renaming it into a
  // fresh directory makes the preserved records fully replayable — the
  // inspection story the failover runbook promises.
  const std::string inspect = dir + "_inspect";
  std::filesystem::remove_all(inspect);
  std::filesystem::create_directories(inspect);
  std::filesystem::copy_file(
      path, std::filesystem::path(inspect) / OplogSegmentFileName(4));
  const auto [result, records] = Replay(inspect);
  EXPECT_FALSE(result.stopped_at_corruption);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].sequence, 4u);
  EXPECT_EQ(records[0].payload, Payload(4, 12));
  EXPECT_EQ(records[1].sequence, 5u);

  // Idempotent: a retry after a crash-before-truncate finds the file
  // already written and reports the same count without duplicating it.
  EXPECT_EQ(log.QuarantineTail(4, nullptr), 2u);
}

TEST_F(OplogTest, QuarantineTailEdgeCases) {
  const std::string dir = ScratchDir();
  Oplog log(DirOptions(dir));
  ASSERT_TRUE(log.Open());
  log.Append(Payload(1));
  ASSERT_TRUE(log.Sync());

  EXPECT_EQ(log.QuarantineTail(0, nullptr), 0u);  // No boundary: no-op.
  EXPECT_EQ(log.QuarantineTail(2, nullptr), 0u);  // Nothing past the end.
  EXPECT_FALSE(
      std::filesystem::exists(std::filesystem::path(dir) / "quarantine"));

  Oplog disabled{OplogOptions{}};
  ASSERT_TRUE(disabled.Open());
  disabled.Append(Payload(1));
  EXPECT_EQ(disabled.QuarantineTail(1, nullptr), 0u);  // Nothing on disk.
}

// ----- Group commit (runs under TSan in CI) --------------------------------

TEST_F(OplogTest, ConcurrentAppendSyncGroupCommits) {
  const std::string dir = ScratchDir();
  Oplog log(DirOptions(dir));
  ASSERT_TRUE(log.Open());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t seq =
            log.Append(Payload(static_cast<std::uint8_t>(t), 16));
        if (seq == 0 || !log.Sync() || log.DurableSequence() < seq) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(log.Appends(), kThreads * kPerThread);
  // Group commit: batches never exceed appends (usually far fewer).
  EXPECT_LE(log.FsyncBatches(), log.Appends());
  const auto [result, records] = Replay(dir);
  EXPECT_FALSE(result.stopped_at_corruption);
  EXPECT_EQ(result.records_applied,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

// ----- Mutation record codec -----------------------------------------------

TEST(MutationRecordTest, CodecRoundTripsEveryOp) {
  MutationRecord insert;
  insert.op = MutationOp::kInsert;
  insert.idempotency_key = 0xfeedbeefull;
  insert.vertex = 42;
  insert.name = "Thai Palace";
  insert.add_keywords = {"thai", "restaurant"};

  MutationRecord del;
  del.op = MutationOp::kDelete;
  del.object = 7;

  MutationRecord update;
  update.op = MutationOp::kUpdate;
  update.idempotency_key = 1;
  update.object = 3;
  update.add_keywords = {"takeaway"};
  update.remove_keywords = {"wifi"};

  for (const MutationRecord& record : {insert, del, update}) {
    const auto bytes = EncodeMutationRecord(record);
    MutationRecord decoded;
    ASSERT_TRUE(DecodeMutationRecord(bytes, &decoded));
    EXPECT_EQ(decoded.op, record.op);
    EXPECT_EQ(decoded.idempotency_key, record.idempotency_key);
    EXPECT_EQ(decoded.vertex, record.vertex);
    EXPECT_EQ(decoded.object, record.object);
    EXPECT_EQ(decoded.name, record.name);
    EXPECT_EQ(decoded.add_keywords, record.add_keywords);
    EXPECT_EQ(decoded.remove_keywords, record.remove_keywords);
  }
}

TEST(MutationRecordTest, DecodeRejectsDamage) {
  MutationRecord record;
  record.op = MutationOp::kInsert;
  record.vertex = 1;
  record.name = "x";
  record.add_keywords = {"a"};
  auto bytes = EncodeMutationRecord(record);
  MutationRecord decoded;

  auto truncated = bytes;
  truncated.pop_back();
  EXPECT_FALSE(DecodeMutationRecord(truncated, &decoded));

  auto trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(DecodeMutationRecord(trailing, &decoded));

  auto bad_op = bytes;
  bad_op[0] = 0x7f;  // Unknown op tag.
  EXPECT_FALSE(DecodeMutationRecord(bad_op, &decoded));

  EXPECT_FALSE(DecodeMutationRecord({}, &decoded));
}

TEST(MutationRecordTest, EpochTransitionRecordRoundTripsAndAppliesAsNoop) {
  MutationRecord record;
  record.op = MutationOp::kEpochTransition;
  record.idempotency_key = 0;
  record.epoch = 7;
  const auto bytes = EncodeMutationRecord(record);
  MutationRecord decoded;
  ASSERT_TRUE(DecodeMutationRecord(bytes, &decoded));
  EXPECT_EQ(decoded.op, MutationOp::kEpochTransition);
  EXPECT_EQ(decoded.epoch, 7u);

  // Epoch 0 never marks a transition; a record claiming it is damage.
  MutationRecord zero = record;
  zero.epoch = 0;
  EXPECT_FALSE(DecodeMutationRecord(EncodeMutationRecord(zero), &decoded));

  // Applying the record must not disturb the catalog: it moves
  // replication state only.
  const Graph graph = testing::SmallRoadNetwork(31);
  DijkstraOracle oracle(graph);
  PoiService service(graph, oracle);
  MutationRecord insert;
  insert.op = MutationOp::kInsert;
  insert.vertex = 3;
  insert.name = "anchor";
  insert.add_keywords = {"cafe"};
  const ObjectId anchor = ApplyMutationRecord(service, insert);
  EXPECT_EQ(ApplyMutationRecord(service, record), kInvalidObject);
  const auto hits = service.Search("cafe", 0, 4);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits.front().id, anchor);
}

TEST(MutationRecordTest, ApplyIsDeterministicAcrossServices) {
  // Same record stream, same starting state => same object ids and same
  // search results: the invariant crash replay and log shipping rely on.
  const Graph graph = testing::SmallRoadNetwork(77);
  DijkstraOracle oracle(graph);
  PoiService primary(graph, oracle);
  PoiService replica(graph, oracle);

  std::vector<MutationRecord> records;
  for (std::uint8_t i = 0; i < 4; ++i) {
    MutationRecord insert;
    insert.op = MutationOp::kInsert;
    insert.vertex = static_cast<VertexId>(10 + i * 7);
    insert.name = "poi" + std::to_string(i);
    insert.add_keywords = {"cafe", i % 2 ? "wifi" : "tea"};
    records.push_back(insert);
  }
  MutationRecord update;
  update.op = MutationOp::kUpdate;
  update.object = 1;
  update.add_keywords = {"takeaway"};
  update.remove_keywords = {"wifi"};
  records.push_back(update);
  MutationRecord del;
  del.op = MutationOp::kDelete;
  del.object = 2;
  records.push_back(del);

  for (const MutationRecord& record : records) {
    const ObjectId a = ApplyMutationRecord(primary, record);
    const ObjectId b = ApplyMutationRecord(replica, record);
    EXPECT_EQ(a, b);
  }
  for (const char* query : {"cafe", "takeaway", "wifi", "tea"}) {
    const auto lhs = primary.Search(query, 0, 8);
    const auto rhs = replica.Search(query, 0, 8);
    ASSERT_EQ(lhs.size(), rhs.size()) << query;
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_EQ(lhs[i].id, rhs[i].id);
      EXPECT_EQ(lhs[i].travel_time, rhs[i].travel_time);
    }
  }
}

// ----- Idempotency cache ---------------------------------------------------

TEST(IdempotencyCacheTest, RemembersAndEvictsFifo) {
  IdempotencyCache cache(2);
  EXPECT_EQ(cache.Find(1), nullptr);
  cache.Remember(1, {10, 100});
  cache.Remember(2, {20, 200});
  ASSERT_NE(cache.Find(1), nullptr);
  EXPECT_EQ(cache.Find(1)->sequence, 10u);
  EXPECT_EQ(cache.Find(2)->object, 200u);

  cache.Remember(3, {30, 300});  // Capacity 2: key 1 evicted first.
  EXPECT_EQ(cache.Find(1), nullptr);
  EXPECT_NE(cache.Find(2), nullptr);
  EXPECT_NE(cache.Find(3), nullptr);

  cache.Remember(0, {40, 400});  // Key 0 = "no key": never stored.
  EXPECT_EQ(cache.Find(0), nullptr);
  EXPECT_EQ(cache.Size(), 2u);
}

// ----- Epoch gate (runs under TSan in CI) ----------------------------------

TEST(EpochGateTest, EpochCountsApplyWindows) {
  EpochGate gate;
  EXPECT_EQ(gate.Epoch(), 0u);
  { const EpochGate::ApplyGuard apply(gate); }
  { const EpochGate::ApplyGuard apply(gate); }
  EXPECT_EQ(gate.Epoch(), 2u);
  // Readers in and out freely with no writer active.
  { const auto reader = gate.Reader(0); }
  { const auto reader = gate.Reader(31); }
  EXPECT_EQ(gate.Epoch(), 2u);
}

TEST(EpochGateTest, ReadersAndWriterInterleaveWithoutDeadlock) {
  EpochGate gate;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto guard = gate.Reader(static_cast<std::size_t>(t));
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Let the readers actually start before the writer storms through.
  while (reads.load(std::memory_order_relaxed) < 100) {
    std::this_thread::yield();
  }
  for (int i = 0; i < 200; ++i) {
    const EpochGate::ApplyGuard apply(gate);
  }
  stop.store(true);
  for (auto& thread : readers) thread.join();
  EXPECT_EQ(gate.Epoch(), 200u);
  EXPECT_GT(reads.load(), 0u);
}

}  // namespace
}  // namespace kspin::server
