// Unit tests for the Dijkstra workspace: the distance oracle every other
// technique is validated against, so it gets hand-checked cases of its own.
#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "routing/dijkstra.h"
#include "test_util.h"

namespace kspin {
namespace {

TEST(Dijkstra, HandCheckedDistancesOnTinyGrid) {
  Graph graph = testing::TinyGrid();
  auto dist = DijkstraSingleSource(graph, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], 1u);
  EXPECT_EQ(dist[4], 2u);
  EXPECT_EQ(dist[5], 3u);  // 0-1-2-5, not 0-1-4-5 (weight 3 edge).
  EXPECT_EQ(dist[6], 2u);
  EXPECT_EQ(dist[7], 3u);
  EXPECT_EQ(dist[8], 4u);  // 0-1-2-5-8.
}

TEST(Dijkstra, PointToPointMatchesSingleSource) {
  Graph graph = testing::SmallRoadNetwork();
  DijkstraWorkspace workspace(graph.NumVertices());
  const auto dist = DijkstraSingleSource(graph, 3);
  for (VertexId t = 0; t < graph.NumVertices(); t += 37) {
    EXPECT_EQ(workspace.PointToPoint(graph, 3, t), dist[t]) << "t=" << t;
  }
}

TEST(Dijkstra, SettlesInAscendingDistanceOrder) {
  Graph graph = testing::SmallRoadNetwork();
  DijkstraWorkspace workspace(graph.NumVertices());
  Distance last = 0;
  workspace.Search(graph, 0, kInfDistance, [&last](VertexId, Distance d) {
    EXPECT_GE(d, last);
    last = d;
    return true;
  });
  EXPECT_EQ(workspace.LastSettledCount(), graph.NumVertices());
}

TEST(Dijkstra, BoundedSearchStopsAtBound) {
  Graph graph = testing::SmallRoadNetwork();
  DijkstraWorkspace workspace(graph.NumVertices());
  const Distance bound = 3000;
  workspace.Search(graph, 0, bound, [bound](VertexId, Distance d) {
    EXPECT_LE(d, bound);
    return true;
  });
  EXPECT_LT(workspace.LastSettledCount(), graph.NumVertices());
}

TEST(Dijkstra, CallbackCanTerminateEarly) {
  Graph graph = testing::SmallRoadNetwork();
  DijkstraWorkspace workspace(graph.NumVertices());
  int count = 0;
  workspace.Search(graph, 0, kInfDistance, [&count](VertexId, Distance) {
    return ++count < 5;
  });
  EXPECT_EQ(count, 5);
}

TEST(Dijkstra, WorkspaceReuseIsConsistent) {
  Graph graph = testing::SmallRoadNetwork();
  DijkstraWorkspace workspace(graph.NumVertices());
  const auto first = workspace.SingleSource(graph, 1);
  const std::vector<Distance> snapshot(first.begin(), first.end());
  workspace.SingleSource(graph, 2);  // Perturb internal state.
  const auto again = workspace.SingleSource(graph, 1);
  EXPECT_EQ(snapshot, again);
}

TEST(Dijkstra, UnreachableVerticesReportInfinity) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 1);
  builder.AddEdge(2, 3, 1);
  Graph graph = builder.Build();
  auto dist = DijkstraSingleSource(graph, 0);
  EXPECT_EQ(dist[2], kInfDistance);
  EXPECT_EQ(dist[3], kInfDistance);
  EXPECT_EQ(DijkstraPointToPoint(graph, 0, 3), kInfDistance);
}

TEST(DijkstraOracle, ImplementsDistanceOracleContract) {
  Graph graph = testing::TinyGrid();
  DijkstraOracle oracle(graph);
  EXPECT_EQ(oracle.NetworkDistance(0, 0), 0u);
  EXPECT_EQ(oracle.NetworkDistance(0, 8), 4u);
  EXPECT_EQ(oracle.NetworkDistance(8, 0), 4u);  // Undirected symmetry.
  EXPECT_EQ(oracle.Name(), "dijkstra");
}

}  // namespace
}  // namespace kspin
