// Unit tests for the kspin wire protocol: frame encode/decode, the
// payload primitives, the request/response body codecs, and a
// deterministic byte-stream fuzzer run against both the parser and a
// live loopback server (most valuable under ASan/TSan, where any
// over-read or data race aborts the test).
#include "server/wire.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "routing/contraction_hierarchy.h"
#include "server/client.h"
#include "server/server.h"
#include "service/poi_service.h"
#include "service/synthetic_catalog.h"
#include "test_util.h"

namespace kspin::server {
namespace {

std::span<const std::uint8_t> Prefix(const std::vector<std::uint8_t>& bytes,
                                     std::size_t count) {
  return std::span<const std::uint8_t>(bytes.data(), count);
}

TEST(WireFrameTest, HeaderRoundTrip) {
  FrameHeader header;
  header.opcode = Opcode::kSearchRanked;
  header.request_id = 0x0123456789ABCDEFull;
  header.deadline_ms = 250;
  const std::vector<std::uint8_t> payload = {0xAA, 0xBB, 0xCC};
  const auto frame = EncodeFrame(header, payload);
  ASSERT_EQ(frame.size(), kHeaderSize + payload.size());

  FrameHeader decoded;
  std::size_t frame_size = 0;
  ASSERT_EQ(TryDecodeFrame(frame, &decoded, &frame_size),
            DecodeResult::kFrame);
  EXPECT_EQ(frame_size, frame.size());
  EXPECT_EQ(decoded.version, kProtocolVersion);
  EXPECT_EQ(decoded.opcode, Opcode::kSearchRanked);
  EXPECT_EQ(decoded.request_id, 0x0123456789ABCDEFull);
  EXPECT_EQ(decoded.deadline_ms, 250u);
  EXPECT_EQ(decoded.payload_size, payload.size());
  EXPECT_EQ(std::vector<std::uint8_t>(frame.begin() + kHeaderSize,
                                      frame.end()),
            payload);
}

TEST(WireFrameTest, EmptyPayloadFrame) {
  FrameHeader header;
  header.opcode = Opcode::kPing;
  header.request_id = 7;
  const auto frame = EncodeFrame(header, {});
  ASSERT_EQ(frame.size(), kHeaderSize);

  FrameHeader decoded;
  std::size_t frame_size = 0;
  ASSERT_EQ(TryDecodeFrame(frame, &decoded, &frame_size),
            DecodeResult::kFrame);
  EXPECT_EQ(frame_size, kHeaderSize);
  EXPECT_EQ(decoded.payload_size, 0u);
}

TEST(WireFrameTest, EveryTruncatedPrefixNeedsMore) {
  FrameHeader header;
  header.opcode = Opcode::kSearchBoolean;
  header.request_id = 42;
  const std::vector<std::uint8_t> payload(17, 0x5A);
  const auto frame = EncodeFrame(header, payload);

  for (std::size_t len = 0; len < frame.size(); ++len) {
    FrameHeader decoded;
    std::size_t frame_size = 0;
    EXPECT_EQ(TryDecodeFrame(Prefix(frame, len), &decoded, &frame_size),
              DecodeResult::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(WireFrameTest, BadMagicDetectedEvenOnShortPrefix) {
  FrameHeader header;
  const auto frame = EncodeFrame(header, {});
  // Corrupt each magic byte in turn; the error must surface as soon as
  // the corrupted byte is visible, not only after a full header arrives.
  for (std::size_t corrupt = 0; corrupt < 4; ++corrupt) {
    auto bad = frame;
    bad[corrupt] ^= 0xFF;
    FrameHeader decoded;
    std::size_t frame_size = 0;
    EXPECT_EQ(TryDecodeFrame(Prefix(bad, corrupt + 1), &decoded,
                             &frame_size),
              DecodeResult::kBadMagic)
        << "corrupted byte " << corrupt;
    EXPECT_EQ(TryDecodeFrame(bad, &decoded, &frame_size),
              DecodeResult::kBadMagic);
  }
}

TEST(WireFrameTest, BadVersionStillYieldsRequestId) {
  FrameHeader header;
  header.request_id = 99;
  auto frame = EncodeFrame(header, {});
  frame[4] = kProtocolVersion + 1;
  FrameHeader decoded;
  std::size_t frame_size = 0;
  EXPECT_EQ(TryDecodeFrame(frame, &decoded, &frame_size),
            DecodeResult::kBadVersion);
  // The header is filled so the server can address the error frame.
  EXPECT_EQ(decoded.request_id, 99u);
  EXPECT_EQ(decoded.version, kProtocolVersion + 1);
}

TEST(WireFrameTest, WholeSupportedVersionRangeAccepted) {
  // v1 clients must keep working against a v2 server (docs/protocol.md:
  // responses echo the request's version, so old decoders never see new
  // trailing fields). Version 0 is below the floor.
  for (std::uint8_t v = kMinProtocolVersion; v <= kProtocolVersion; ++v) {
    FrameHeader header;
    auto frame = EncodeFrame(header, {});
    frame[4] = v;
    FrameHeader decoded;
    std::size_t frame_size = 0;
    EXPECT_EQ(TryDecodeFrame(frame, &decoded, &frame_size),
              DecodeResult::kFrame)
        << "version " << int(v);
    EXPECT_EQ(decoded.version, v);
  }
  FrameHeader header;
  auto frame = EncodeFrame(header, {});
  frame[4] = 0;
  FrameHeader decoded;
  std::size_t frame_size = 0;
  EXPECT_EQ(TryDecodeFrame(frame, &decoded, &frame_size),
            DecodeResult::kBadVersion);
}

TEST(WireFrameTest, OversizedPayloadRejected) {
  FrameHeader header;
  auto frame = EncodeFrame(header, {});
  const std::uint32_t huge = kMaxPayloadSize + 1;
  std::memcpy(frame.data() + 20, &huge, sizeof huge);
  FrameHeader decoded;
  std::size_t frame_size = 0;
  EXPECT_EQ(TryDecodeFrame(frame, &decoded, &frame_size),
            DecodeResult::kTooLarge);
}

TEST(WireFrameTest, NonZeroReservedBytesRejectedPreV5) {
  // v5 turned the reserved u16 at offset 6 into a flags field; on older
  // versions nonzero bytes there must still be rejected so a v5 client
  // accidentally talking down-level fails loudly instead of silently
  // having its flags ignored.
  for (std::uint8_t v = kMinProtocolVersion; v < 5; ++v) {
    FrameHeader header;
    auto frame = EncodeFrame(header, {});
    frame[4] = v;
    frame[6] = 1;
    FrameHeader decoded;
    std::size_t frame_size = 0;
    EXPECT_EQ(TryDecodeFrame(frame, &decoded, &frame_size),
              DecodeResult::kBadVersion)
        << "version " << int(v);
  }
}

TEST(WireFrameTest, V5FlagsFieldRoundTrips) {
  FrameHeader header;
  header.flags = kFrameFlagTraceContext;
  const auto frame = EncodeFrame(header, {});
  FrameHeader decoded;
  std::size_t frame_size = 0;
  ASSERT_EQ(TryDecodeFrame(frame, &decoded, &frame_size),
            DecodeResult::kFrame);
  EXPECT_EQ(decoded.flags, kFrameFlagTraceContext);
  // Encoding at a pre-v5 version must not emit the flags (the bytes were
  // reserved-zero there), so v4 bodies stay byte-identical.
  FrameHeader old = header;
  old.version = 4;
  const auto old_frame = EncodeFrame(old, {});
  EXPECT_EQ(old_frame[6], 0);
  EXPECT_EQ(old_frame[7], 0);
}

TEST(WireFrameTest, TraceTrailerSplitAndRoundTrip) {
  PayloadWriter w;
  w.U32(1234);
  std::vector<std::uint8_t> payload(w.Bytes().begin(), w.Bytes().end());
  const std::size_t body_size = payload.size();
  TraceContext context;
  context.trace_id = 0x1122334455667788ull;
  context.parent_span_id = 0x99AABBCCDDEEFF00ull;
  context.flags = kTraceFlagSampled;
  AppendTraceTrailer(&payload, context);
  ASSERT_EQ(payload.size(), body_size + kTraceTrailerSize);

  std::span<const std::uint8_t> body;
  TraceContext decoded;
  ASSERT_TRUE(SplitTraceTrailer(payload, kFrameFlagTraceContext, &body,
                                &decoded));
  EXPECT_EQ(body.size(), body_size);
  EXPECT_EQ(decoded.trace_id, context.trace_id);
  EXPECT_EQ(decoded.parent_span_id, context.parent_span_id);
  EXPECT_EQ(decoded.flags, context.flags);

  // Without the frame flag the whole payload is body and no context.
  ASSERT_TRUE(SplitTraceTrailer(payload, 0, &body, &decoded));
  EXPECT_EQ(body.size(), payload.size());
  EXPECT_FALSE(decoded.valid());

  // Flag set but payload shorter than a trailer: malformed.
  const std::vector<std::uint8_t> tiny(kTraceTrailerSize - 1, 0);
  EXPECT_FALSE(SplitTraceTrailer(tiny, kFrameFlagTraceContext, &body,
                                 &decoded));
}

TEST(PayloadTest, PrimitivesRoundTrip) {
  PayloadWriter w;
  w.U8(0xAB);
  w.U16(0xBEEF);
  w.U32(0xDEADBEEF);
  w.U64(0x0102030405060708ull);
  w.F64(-1234.5);
  w.String("hello");
  w.String("");

  PayloadReader r(w.Bytes());
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U16(), 0xBEEF);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0102030405060708ull);
  EXPECT_EQ(r.F64(), -1234.5);
  EXPECT_EQ(r.String(), "hello");
  EXPECT_EQ(r.String(), "");
  EXPECT_TRUE(r.Finished());
}

TEST(PayloadTest, UnderrunLatchesNotOk) {
  PayloadWriter w;
  w.U16(7);
  PayloadReader r(w.Bytes());
  EXPECT_EQ(r.U32(), 0u);  // Only two bytes available.
  EXPECT_FALSE(r.ok());
  // Latches: later reads stay zero even though bytes remain.
  EXPECT_EQ(r.U8(), 0u);
  EXPECT_FALSE(r.Finished());
}

TEST(PayloadTest, StringLengthBeyondPayloadLatchesNotOk) {
  PayloadWriter w;
  w.U32(1000);  // Length prefix promising far more than is present.
  w.U8('x');
  PayloadReader r(w.Bytes());
  EXPECT_EQ(r.String(), "");
  EXPECT_FALSE(r.ok());
}

TEST(PayloadTest, TrailingGarbageNotFinished) {
  PayloadWriter w;
  w.U8(1);
  w.U8(2);
  PayloadReader r(w.Bytes());
  EXPECT_EQ(r.U8(), 1u);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.Finished());
}

TEST(BodyCodecTest, SearchRequestRoundTrip) {
  SearchRequest request;
  request.vertex = 314;
  request.k = 10;
  request.query = "(coffee and wifi) or tea";
  SearchRequest decoded;
  ASSERT_TRUE(DecodeSearchRequest(EncodeSearchRequest(request), &decoded));
  EXPECT_EQ(decoded.vertex, request.vertex);
  EXPECT_EQ(decoded.k, request.k);
  EXPECT_EQ(decoded.query, request.query);
}

TEST(BodyCodecTest, SearchRequestRejectsTruncation) {
  const auto bytes = EncodeSearchRequest({314, 10, "coffee"});
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    SearchRequest decoded;
    EXPECT_FALSE(DecodeSearchRequest(Prefix(bytes, len), &decoded))
        << "prefix length " << len;
  }
}

TEST(BodyCodecTest, SearchRequestRejectsTrailingGarbage) {
  auto bytes = EncodeSearchRequest({314, 10, "coffee"});
  bytes.push_back(0);
  SearchRequest decoded;
  EXPECT_FALSE(DecodeSearchRequest(bytes, &decoded));
}

TEST(BodyCodecTest, PoiAddRequestRoundTrip) {
  PoiAddRequest request;
  request.vertex = 9;
  request.name = "cafe";
  request.keywords = {"coffee", "wifi", "open_late"};
  PoiAddRequest decoded;
  ASSERT_TRUE(DecodePoiAddRequest(EncodePoiAddRequest(request), &decoded));
  EXPECT_EQ(decoded.vertex, request.vertex);
  EXPECT_EQ(decoded.name, request.name);
  EXPECT_EQ(decoded.keywords, request.keywords);
}

TEST(BodyCodecTest, PoiTagRequestRoundTrip) {
  PoiTagRequest request{77, "sushi"};
  PoiTagRequest decoded;
  ASSERT_TRUE(DecodePoiTagRequest(EncodePoiTagRequest(request), &decoded));
  EXPECT_EQ(decoded.object, 77u);
  EXPECT_EQ(decoded.keyword, "sushi");
}

TEST(BodyCodecTest, SearchResponseRoundTrip) {
  std::vector<WireResult> results(2);
  results[0] = {5, 120, 0.25, "poi5"};
  results[1] = {9, 480, 17.5, "poi9"};
  const auto bytes = EncodeSearchResponse(results);

  PayloadReader reader(bytes);
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOk);
  std::vector<WireResult> decoded;
  ASSERT_TRUE(DecodeSearchResponse(reader, &decoded));
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].object, 5u);
  EXPECT_EQ(decoded[0].travel_time, 120u);
  EXPECT_EQ(decoded[0].score, 0.25);
  EXPECT_EQ(decoded[0].name, "poi5");
  EXPECT_EQ(decoded[1].object, 9u);
}

TEST(BodyCodecTest, ErrorResponseCarriesStatusAndMessage) {
  const auto bytes =
      EncodeErrorResponse(StatusCode::kOverloaded, "queue full");
  PayloadReader reader(bytes);
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOverloaded);
  EXPECT_EQ(reader.String(), "queue full");
  EXPECT_TRUE(reader.Finished());
}

TEST(BodyCodecTest, ErrorResponseAppendsRetryAfterTrailerOnlyWhenSet) {
  // retry_after 0 must encode byte-identically to the 2-arg form so old
  // decoders (which read status + message and stop) see nothing new.
  EXPECT_EQ(EncodeErrorResponse(StatusCode::kOverloaded, "shed", 0),
            EncodeErrorResponse(StatusCode::kOverloaded, "shed"));

  const auto bytes =
      EncodeErrorResponse(StatusCode::kOverloaded, "shed", 250);
  PayloadReader reader(bytes);
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOverloaded);
  EXPECT_EQ(reader.String(), "shed");
  EXPECT_EQ(reader.U32(), 250u);
  EXPECT_TRUE(reader.Finished());
}

TEST(BodyCodecTest, SearchResponseFlagsAreVersionGated) {
  std::vector<WireResult> results(1);
  results[0] = {5, 120, 0.25, "poi5"};

  // v3 request: no flags byte, even when degraded — a v3 decoder would
  // reject the trailing byte.
  const auto v3 = EncodeSearchResponse(results, kSearchFlagDegraded, 3);
  EXPECT_EQ(v3, EncodeSearchResponse(results));

  // v4 request: one flags byte trails the result list.
  const auto v4 = EncodeSearchResponse(results, kSearchFlagDegraded, 4);
  ASSERT_EQ(v4.size(), v3.size() + 1);
  EXPECT_EQ(v4.back(), kSearchFlagDegraded);
}

TEST(BodyCodecTest, SearchResponseFlagsRoundTrip) {
  std::vector<WireResult> results(1);
  results[0] = {9, 480, 17.5, "poi9"};
  const auto bytes = EncodeSearchResponse(results, kSearchFlagDegraded, 4);

  PayloadReader reader(bytes);
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOk);
  std::vector<WireResult> decoded;
  std::uint8_t flags = 0xff;
  ASSERT_TRUE(DecodeSearchResponse(reader, &decoded, &flags));
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].object, 9u);
  EXPECT_EQ(flags, kSearchFlagDegraded);

  // A flag-less (pre-v4) body decodes with flags 0.
  const auto legacy = EncodeSearchResponse(results);
  PayloadReader legacy_reader(legacy);
  EXPECT_EQ(static_cast<StatusCode>(legacy_reader.U8()), StatusCode::kOk);
  flags = 0xff;
  ASSERT_TRUE(DecodeSearchResponse(legacy_reader, &decoded, &flags));
  EXPECT_EQ(flags, 0u);
}

TEST(BodyCodecTest, StatsResponseRoundTrip) {
  const std::vector<std::pair<std::string, std::uint64_t>> stats = {
      {"requests_ok", 12}, {"queue_depth", 0}, {"query_latency_p99_us", 512}};
  const auto bytes = EncodeStatsResponse(stats);
  PayloadReader reader(bytes);
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOk);
  std::vector<std::pair<std::string, std::uint64_t>> decoded;
  ASSERT_TRUE(DecodeStatsResponse(reader, &decoded));
  EXPECT_EQ(decoded, stats);
}

TEST(BodyCodecTest, StatsResponseV2CarriesHistograms) {
  const std::vector<std::pair<std::string, std::uint64_t>> stats = {
      {"requests_ok", 12}, {"queue_depth", 0}};
  std::vector<WireHistogram> histograms(2);
  histograms[0].name = "query_latency_us";
  histograms[0].count = 100;
  histograms[0].sum_micros = 51200;
  histograms[0].buckets = {0, 3, 90, 7};
  histograms[1].name = "update_latency_us";  // Empty: no buckets recorded.

  const auto bytes = EncodeStatsResponse(stats, histograms);
  PayloadReader reader(bytes);
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOk);
  std::vector<std::pair<std::string, std::uint64_t>> decoded;
  std::vector<WireHistogram> decoded_histograms;
  ASSERT_TRUE(DecodeStatsResponse(reader, &decoded, &decoded_histograms));
  EXPECT_EQ(decoded, stats);
  ASSERT_EQ(decoded_histograms.size(), 2u);
  EXPECT_EQ(decoded_histograms[0].name, "query_latency_us");
  EXPECT_EQ(decoded_histograms[0].count, 100u);
  EXPECT_EQ(decoded_histograms[0].sum_micros, 51200u);
  EXPECT_EQ(decoded_histograms[0].buckets,
            (std::vector<std::uint64_t>{0, 3, 90, 7}));
  EXPECT_EQ(decoded_histograms[1].name, "update_latency_us");
  EXPECT_TRUE(decoded_histograms[1].buckets.empty());
}

TEST(BodyCodecTest, StatsResponseV1BodyDecodesWithoutHistograms) {
  // A v1 server's body ends after the pairs; a histogram-aware decoder
  // must accept it and simply report no histograms.
  const std::vector<std::pair<std::string, std::uint64_t>> stats = {
      {"requests_ok", 3}};
  const auto bytes = EncodeStatsResponse(stats);
  PayloadReader reader(bytes);
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOk);
  std::vector<std::pair<std::string, std::uint64_t>> decoded;
  std::vector<WireHistogram> histograms;
  ASSERT_TRUE(DecodeStatsResponse(reader, &decoded, &histograms));
  EXPECT_EQ(decoded, stats);
  EXPECT_TRUE(histograms.empty());
}

TEST(BodyCodecTest, StatsResponseV2BodySkipsHistogramsWhenUnwanted) {
  // The histogram-oblivious decode (histograms == nullptr) still has to
  // walk the v2 histogram section — discarding it — so a caller that only
  // wants the pairs keeps working against newer servers.
  std::vector<WireHistogram> histograms(1);
  histograms[0].name = "query_latency_us";
  histograms[0].count = 3;
  histograms[0].buckets = {1, 2};
  const std::vector<std::pair<std::string, std::uint64_t>> pairs = {
      {"requests_ok", 1}};
  const auto bytes = EncodeStatsResponse(pairs, histograms);
  PayloadReader reader(bytes);
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOk);
  std::vector<std::pair<std::string, std::uint64_t>> decoded;
  ASSERT_TRUE(DecodeStatsResponse(reader, &decoded));
  EXPECT_EQ(decoded, pairs);
  EXPECT_TRUE(reader.Finished());
}

TEST(BodyCodecTest, MetricsResponseRoundTrip) {
  const std::string text =
      "# TYPE kspin_requests_ok counter\nkspin_requests_ok 42\n";
  const auto bytes = EncodeMetricsResponse(text);
  PayloadReader reader(bytes);
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOk);
  std::string decoded;
  ASSERT_TRUE(DecodeMetricsResponse(reader, &decoded));
  EXPECT_EQ(decoded, text);
}

TEST(BodyCodecTest, StatusNamesAreStable) {
  EXPECT_EQ(StatusName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusName(StatusCode::kOverloaded), "OVERLOADED");
  EXPECT_EQ(StatusName(StatusCode::kDeadlineExceeded), "DEADLINE_EXCEEDED");
  EXPECT_EQ(StatusName(StatusCode::kNotPrimary), "NOT_PRIMARY");
}

TEST(BodyCodecTest, HealthResponseRoundTrip) {
  HealthInfo info;
  info.role = 1;
  info.snapshot_sequence = 42;
  info.uptime_ms = 123456;
  info.queue_depth = 7;
  info.primary_address = "10.0.0.1:9000";
  const auto bytes = EncodeHealthResponse(info);
  PayloadReader reader(bytes);
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOk);
  HealthInfo decoded;
  ASSERT_TRUE(DecodeHealthResponse(reader, &decoded));
  EXPECT_EQ(decoded.role, 1);
  EXPECT_EQ(decoded.snapshot_sequence, 42u);
  EXPECT_EQ(decoded.uptime_ms, 123456u);
  EXPECT_EQ(decoded.queue_depth, 7u);
  EXPECT_EQ(decoded.primary_address, "10.0.0.1:9000");
}

TEST(BodyCodecTest, FetchSnapshotRequestRoundTrip) {
  FetchSnapshotRequest request{17, 65536, 4096};
  FetchSnapshotRequest decoded;
  ASSERT_TRUE(DecodeFetchSnapshotRequest(
      EncodeFetchSnapshotRequest(request), &decoded));
  EXPECT_EQ(decoded.sequence, 17u);
  EXPECT_EQ(decoded.offset, 65536u);
  EXPECT_EQ(decoded.max_bytes, 4096u);
}

TEST(BodyCodecTest, InsertDocRequestRoundTrip) {
  InsertDocRequest request;
  request.idempotency_key = 0x1122334455667788ull;
  request.vertex = 42;
  request.name = "Thai Palace";
  request.keywords = {"thai", "takeaway"};
  InsertDocRequest decoded;
  ASSERT_TRUE(
      DecodeInsertDocRequest(EncodeInsertDocRequest(request), &decoded));
  EXPECT_EQ(decoded.idempotency_key, request.idempotency_key);
  EXPECT_EQ(decoded.vertex, request.vertex);
  EXPECT_EQ(decoded.name, request.name);
  EXPECT_EQ(decoded.keywords, request.keywords);
}

TEST(BodyCodecTest, DeleteDocRequestRoundTrip) {
  DeleteDocRequest request{7, 99};
  DeleteDocRequest decoded;
  ASSERT_TRUE(
      DecodeDeleteDocRequest(EncodeDeleteDocRequest(request), &decoded));
  EXPECT_EQ(decoded.idempotency_key, 7u);
  EXPECT_EQ(decoded.object, 99u);
}

TEST(BodyCodecTest, UpdateDocRequestRoundTrip) {
  UpdateDocRequest request;
  request.idempotency_key = 5;
  request.object = 3;
  request.add_keywords = {"wifi", "garden"};
  request.remove_keywords = {"smoking"};
  UpdateDocRequest decoded;
  ASSERT_TRUE(
      DecodeUpdateDocRequest(EncodeUpdateDocRequest(request), &decoded));
  EXPECT_EQ(decoded.idempotency_key, 5u);
  EXPECT_EQ(decoded.object, 3u);
  EXPECT_EQ(decoded.add_keywords, request.add_keywords);
  EXPECT_EQ(decoded.remove_keywords, request.remove_keywords);
}

TEST(BodyCodecTest, MutationRequestsRejectTruncationAndTrailingGarbage) {
  InsertDocRequest insert;
  insert.vertex = 1;
  insert.name = "x";
  insert.keywords = {"a"};
  for (auto bytes : {EncodeInsertDocRequest(insert),
                     EncodeDeleteDocRequest({1, 2}),
                     EncodeUpdateDocRequest({1, 2, {"a"}, {}}),
                     EncodeFetchOplogRequest({9, 100})}) {
    InsertDocRequest i;
    DeleteDocRequest d;
    UpdateDocRequest u;
    FetchOplogRequest f;
    auto truncated = bytes;
    truncated.pop_back();
    EXPECT_FALSE(DecodeInsertDocRequest(truncated, &i));
    EXPECT_FALSE(DecodeDeleteDocRequest(truncated, &d));
    EXPECT_FALSE(DecodeUpdateDocRequest(truncated, &u));
    EXPECT_FALSE(DecodeFetchOplogRequest(truncated, &f));
    auto trailing = bytes;
    trailing.push_back(0);
    EXPECT_FALSE(DecodeInsertDocRequest(trailing, &i));
    EXPECT_FALSE(DecodeDeleteDocRequest(trailing, &d));
    EXPECT_FALSE(DecodeUpdateDocRequest(trailing, &u));
    EXPECT_FALSE(DecodeFetchOplogRequest(trailing, &f));
  }
}

TEST(BodyCodecTest, MutationResponseRoundTrip) {
  const auto bytes = EncodeMutationResponse({123456789ull, 77});
  PayloadReader reader(bytes);
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOk);
  MutationReply decoded;
  ASSERT_TRUE(DecodeMutationResponse(reader, &decoded));
  EXPECT_EQ(decoded.sequence, 123456789u);
  EXPECT_EQ(decoded.object, 77u);
}

TEST(BodyCodecTest, FetchOplogRequestRoundTrip) {
  FetchOplogRequest request{42, 65536};
  FetchOplogRequest decoded;
  ASSERT_TRUE(
      DecodeFetchOplogRequest(EncodeFetchOplogRequest(request), &decoded));
  EXPECT_EQ(decoded.from_sequence, 42u);
  EXPECT_EQ(decoded.max_bytes, 65536u);
}

TEST(BodyCodecTest, MutationRequestsCarryFenceEpoch) {
  InsertDocRequest insert;
  insert.idempotency_key = 1;
  insert.vertex = 2;
  insert.name = "x";
  insert.fence_epoch = 9;
  InsertDocRequest insert_decoded;
  ASSERT_TRUE(DecodeInsertDocRequest(EncodeInsertDocRequest(insert),
                                     &insert_decoded));
  EXPECT_EQ(insert_decoded.fence_epoch, 9u);

  DeleteDocRequest del{7, 99, 11};
  DeleteDocRequest del_decoded;
  ASSERT_TRUE(DecodeDeleteDocRequest(EncodeDeleteDocRequest(del),
                                     &del_decoded));
  EXPECT_EQ(del_decoded.fence_epoch, 11u);

  UpdateDocRequest update;
  update.idempotency_key = 5;
  update.object = 3;
  update.add_keywords = {"wifi"};
  update.fence_epoch = 13;
  UpdateDocRequest update_decoded;
  ASSERT_TRUE(DecodeUpdateDocRequest(EncodeUpdateDocRequest(update),
                                     &update_decoded));
  EXPECT_EQ(update_decoded.fence_epoch, 13u);
}

TEST(BodyCodecTest, LegacyBodiesWithoutEpochTrailerStillDecode) {
  // A pre-epoch peer encodes the same bodies minus the trailing epoch
  // section; stripping the trailer from our own encoding reproduces that
  // byte stream exactly. Decoding must succeed with the epoch zeroed —
  // this is the compatibility contract that makes the fields additive.
  InsertDocRequest insert;
  insert.vertex = 1;
  insert.name = "x";
  insert.fence_epoch = 42;
  auto bytes = EncodeInsertDocRequest(insert);
  bytes.resize(bytes.size() - 8);
  InsertDocRequest insert_decoded;
  ASSERT_TRUE(DecodeInsertDocRequest(bytes, &insert_decoded));
  EXPECT_EQ(insert_decoded.fence_epoch, 0u);
  EXPECT_EQ(insert_decoded.name, "x");

  auto fetch_bytes = EncodeFetchOplogRequest({42, 65536, 5});
  fetch_bytes.resize(fetch_bytes.size() - 8);
  FetchOplogRequest fetch_decoded;
  ASSERT_TRUE(DecodeFetchOplogRequest(fetch_bytes, &fetch_decoded));
  EXPECT_EQ(fetch_decoded.from_sequence, 42u);
  EXPECT_EQ(fetch_decoded.requester_epoch, 0u);

  HealthInfo info;
  info.role = 1;
  info.applied_sequence = 17;
  info.primary_epoch = 3;
  auto health_bytes = EncodeHealthResponse(info);
  health_bytes.resize(health_bytes.size() - 16);
  PayloadReader health_reader(health_bytes);
  EXPECT_EQ(static_cast<StatusCode>(health_reader.U8()), StatusCode::kOk);
  HealthInfo health_decoded;
  ASSERT_TRUE(DecodeHealthResponse(health_reader, &health_decoded));
  EXPECT_EQ(health_decoded.role, 1);
  EXPECT_EQ(health_decoded.applied_sequence, 0u);
  EXPECT_EQ(health_decoded.primary_epoch, 0u);

  auto mut_bytes = EncodeMutationResponse({9, 8, 7});
  mut_bytes.resize(mut_bytes.size() - 8);
  PayloadReader mut_reader(mut_bytes);
  EXPECT_EQ(static_cast<StatusCode>(mut_reader.U8()), StatusCode::kOk);
  MutationReply mut_decoded;
  ASSERT_TRUE(DecodeMutationResponse(mut_reader, &mut_decoded));
  EXPECT_EQ(mut_decoded.sequence, 9u);
  EXPECT_EQ(mut_decoded.primary_epoch, 0u);
}

TEST(BodyCodecTest, HealthResponseCarriesEpochAndAppliedSequence) {
  HealthInfo info;
  info.role = 0;
  info.applied_sequence = 12345;
  info.primary_epoch = 6;
  const auto bytes = EncodeHealthResponse(info);
  PayloadReader reader(bytes);
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOk);
  HealthInfo decoded;
  ASSERT_TRUE(DecodeHealthResponse(reader, &decoded));
  EXPECT_EQ(decoded.applied_sequence, 12345u);
  EXPECT_EQ(decoded.primary_epoch, 6u);
}

TEST(BodyCodecTest, MutationResponseCarriesPrimaryEpoch) {
  const auto bytes = EncodeMutationResponse({1, 2, 4});
  PayloadReader reader(bytes);
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOk);
  MutationReply decoded;
  ASSERT_TRUE(DecodeMutationResponse(reader, &decoded));
  EXPECT_EQ(decoded.primary_epoch, 4u);
}

TEST(BodyCodecTest, PromoteRequestRoundTrip) {
  PromoteRequest request{77};
  PromoteRequest decoded;
  ASSERT_TRUE(
      DecodePromoteRequest(EncodePromoteRequest(request), &decoded));
  EXPECT_EQ(decoded.min_applied_sequence, 77u);
  // An empty body means "no applied-sequence guard" so a bare frame works.
  PromoteRequest empty;
  ASSERT_TRUE(DecodePromoteRequest({}, &empty));
  EXPECT_EQ(empty.min_applied_sequence, 0u);
}

TEST(BodyCodecTest, PromoteResponseRoundTrip) {
  PromoteReply reply;
  reply.epoch = 3;
  reply.applied_sequence = 456;
  reply.role = 0;
  const auto bytes = EncodePromoteResponse(reply);
  PayloadReader reader(bytes);
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOk);
  PromoteReply decoded;
  ASSERT_TRUE(DecodePromoteResponse(reader, &decoded));
  EXPECT_EQ(decoded.epoch, 3u);
  EXPECT_EQ(decoded.applied_sequence, 456u);
  EXPECT_EQ(decoded.role, 0);
}

TEST(BodyCodecTest, OplogChunkCarriesEpochTrailer) {
  OplogChunk chunk;
  chunk.last_sequence = 5;
  chunk.primary_epoch = 2;
  chunk.epoch_boundary_sequence = 4;
  auto bytes = EncodeOplogChunkResponse(chunk);
  {
    PayloadReader reader(bytes);
    EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOk);
    OplogChunk decoded;
    ASSERT_TRUE(DecodeOplogChunkResponse(reader, &decoded));
    EXPECT_EQ(decoded.primary_epoch, 2u);
    EXPECT_EQ(decoded.epoch_boundary_sequence, 4u);
  }
  // Pre-epoch peers stop after the records; the trailer must be optional.
  bytes.resize(bytes.size() - 16);
  PayloadReader reader(bytes);
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOk);
  OplogChunk decoded;
  ASSERT_TRUE(DecodeOplogChunkResponse(reader, &decoded));
  EXPECT_EQ(decoded.primary_epoch, 0u);
  EXPECT_EQ(decoded.epoch_boundary_sequence, 0u);
}

TEST(BodyCodecTest, OplogChunkCrcDetectsFlippedBit) {
  OplogChunk chunk;
  chunk.truncated = 0;
  chunk.last_sequence = 12;
  chunk.oldest_sequence = 3;
  chunk.records.push_back({11, std::string(40, 'a')});
  chunk.records.push_back({12, std::string(25, 'b')});
  auto bytes = EncodeOplogChunkResponse(chunk);

  {
    PayloadReader reader(bytes);
    EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOk);
    OplogChunk decoded;
    ASSERT_TRUE(DecodeOplogChunkResponse(reader, &decoded));
    EXPECT_EQ(decoded.last_sequence, 12u);
    EXPECT_EQ(decoded.oldest_sequence, 3u);
    ASSERT_EQ(decoded.records.size(), 2u);
    EXPECT_EQ(decoded.records[0].sequence, 11u);
    EXPECT_EQ(decoded.records[0].payload, chunk.records[0].payload);
    EXPECT_EQ(decoded.records[1].payload, chunk.records[1].payload);
  }

  // A flipped bit inside a shipped record must fail the per-record CRC —
  // corruption in transit never reaches a replica's log. The last 16
  // payload bytes are the epoch trailer, so aim before it.
  bytes[bytes.size() - 16 - 5] ^= 0x08;
  PayloadReader reader(bytes);
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOk);
  OplogChunk decoded;
  EXPECT_FALSE(DecodeOplogChunkResponse(reader, &decoded));
}

TEST(BodyCodecTest, SnapshotChunkCrcDetectsFlippedBit) {
  SnapshotChunk chunk;
  chunk.sequence = 3;
  chunk.total_size = 1000;
  chunk.offset = 256;
  chunk.bytes = std::string(300, 'x');
  auto bytes = EncodeSnapshotChunkResponse(chunk);

  {
    PayloadReader reader(bytes);
    EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOk);
    SnapshotChunk decoded;
    ASSERT_TRUE(DecodeSnapshotChunkResponse(reader, &decoded));
    EXPECT_EQ(decoded.bytes, chunk.bytes);
    EXPECT_EQ(decoded.offset, 256u);
  }

  bytes.back() ^= 0x10;  // Flip one bit inside the chunk data.
  PayloadReader reader(bytes);
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOk);
  SnapshotChunk decoded;
  EXPECT_FALSE(DecodeSnapshotChunkResponse(reader, &decoded));
}

// ---------------------------------------------------------------------
// Deterministic byte-stream fuzzing. Seeded xorshift64*, no wall-clock
// or entropy inputs: a failure replays bit-for-bit.

class Fuzzer {
 public:
  explicit Fuzzer(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }
  /// Uniform-ish value in [0, bound).
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  std::vector<std::uint8_t> Bytes(std::size_t count) {
    std::vector<std::uint8_t> out(count);
    for (auto& b : out) b = static_cast<std::uint8_t>(Next());
    return out;
  }

 private:
  std::uint64_t state_;
};

/// A frame that is valid up to the fuzzed mutation: real magic/version,
/// random opcode byte, random payload.
std::vector<std::uint8_t> RandomFrame(Fuzzer& fuzz) {
  FrameHeader header;
  header.opcode = static_cast<Opcode>(fuzz.Below(256));
  header.request_id = fuzz.Next();
  header.deadline_ms = static_cast<std::uint32_t>(fuzz.Below(1000));
  return EncodeFrame(header, fuzz.Bytes(fuzz.Below(256)));
}

TEST(WireFuzzTest, ParserNeverOverreadsRandomBuffers) {
  Fuzzer fuzz(0xF00DF00Du);
  for (int i = 0; i < 4000; ++i) {
    auto buffer = fuzz.Bytes(fuzz.Below(96));
    // Half the time, splice the real magic in front so the fuzz reaches
    // past the magic check into header parsing.
    if (buffer.size() >= 4 && fuzz.Below(2) == 0) {
      const std::uint32_t magic = kMagic;
      std::memcpy(buffer.data(), &magic, sizeof magic);
    }
    FrameHeader header;
    std::size_t frame_size = 0;
    const DecodeResult result = TryDecodeFrame(buffer, &header, &frame_size);
    if (result == DecodeResult::kFrame) {
      ASSERT_LE(frame_size, buffer.size());
      ASSERT_LE(header.payload_size, kMaxPayloadSize);
      ASSERT_EQ(frame_size, kHeaderSize + header.payload_size);
    }
  }
}

TEST(WireFuzzTest, ParserHandlesMutatedValidFrames) {
  Fuzzer fuzz(0xC0FFEEu);
  for (int i = 0; i < 4000; ++i) {
    auto frame = RandomFrame(fuzz);
    // Mutate: bit flip, truncate, or both.
    if (fuzz.Below(2) == 0 && !frame.empty()) {
      frame[fuzz.Below(frame.size())] ^=
          static_cast<std::uint8_t>(1u << fuzz.Below(8));
    }
    if (fuzz.Below(2) == 0) frame.resize(fuzz.Below(frame.size() + 1));

    FrameHeader header;
    std::size_t frame_size = 0;
    const DecodeResult result = TryDecodeFrame(frame, &header, &frame_size);
    if (result == DecodeResult::kFrame) {
      ASSERT_LE(frame_size, frame.size());
      ASSERT_LE(header.payload_size, kMaxPayloadSize);
    }
  }
}

TEST(WireFuzzTest, BodyDecodersNeverCrashOnRandomPayloads) {
  Fuzzer fuzz(0xDECAFBADu);
  for (int i = 0; i < 4000; ++i) {
    const auto payload = fuzz.Bytes(fuzz.Below(160));
    // Request decoders: bool result is irrelevant, the assertion is the
    // absence of crashes/over-reads (ASan) on arbitrary input.
    SearchRequest search;
    DecodeSearchRequest(payload, &search);
    PoiAddRequest add;
    DecodePoiAddRequest(payload, &add);
    PoiTagRequest tag;
    DecodePoiTagRequest(payload, &tag);
    FetchSnapshotRequest fetch;
    DecodeFetchSnapshotRequest(payload, &fetch);
    InsertDocRequest insert;
    DecodeInsertDocRequest(payload, &insert);
    DeleteDocRequest del;
    DecodeDeleteDocRequest(payload, &del);
    UpdateDocRequest update;
    DecodeUpdateDocRequest(payload, &update);
    FetchOplogRequest fetch_oplog;
    DecodeFetchOplogRequest(payload, &fetch_oplog);
    // Response decoders.
    {
      PayloadReader reader(payload);
      std::vector<WireResult> results;
      DecodeSearchResponse(reader, &results);
    }
    {
      PayloadReader reader(payload);
      std::vector<std::pair<std::string, std::uint64_t>> stats;
      DecodeStatsResponse(reader, &stats);
    }
    {
      PayloadReader reader(payload);
      std::vector<std::pair<std::string, std::uint64_t>> stats;
      std::vector<WireHistogram> histograms;
      DecodeStatsResponse(reader, &stats, &histograms);
    }
    {
      PayloadReader reader(payload);
      std::string text;
      DecodeMetricsResponse(reader, &text);
    }
    {
      PayloadReader reader(payload);
      HealthInfo health;
      DecodeHealthResponse(reader, &health);
    }
    {
      PayloadReader reader(payload);
      SnapshotChunk chunk;
      DecodeSnapshotChunkResponse(reader, &chunk);
    }
    {
      PayloadReader reader(payload);
      std::uint64_t sequence = 0;
      std::string path;
      DecodeSnapshotResponse(reader, &sequence, &path);
    }
    {
      PayloadReader reader(payload);
      MutationReply mutation;
      DecodeMutationResponse(reader, &mutation);
    }
    {
      PayloadReader reader(payload);
      OplogChunk chunk;
      DecodeOplogChunkResponse(reader, &chunk);
    }
  }
}

TEST(WireFuzzTest, MutationDecodersSurviveMutatedValidBodies) {
  // Seed the fuzz with structurally valid v3 bodies, then bit-flip and
  // truncate: the decoders must reject damage without over-reading.
  Fuzzer fuzz(0x0B10609u);
  InsertDocRequest insert;
  insert.idempotency_key = 9;
  insert.vertex = 4;
  insert.name = "seed";
  insert.keywords = {"one", "two", "three"};
  UpdateDocRequest update;
  update.idempotency_key = 8;
  update.object = 2;
  update.add_keywords = {"plus"};
  update.remove_keywords = {"minus"};
  OplogChunk chunk;
  chunk.last_sequence = 5;
  chunk.oldest_sequence = 1;
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    chunk.records.push_back({seq, std::string(10 + seq, 'r')});
  }
  const std::vector<std::vector<std::uint8_t>> seeds = {
      EncodeInsertDocRequest(insert),
      EncodeDeleteDocRequest({7, 3}),
      EncodeUpdateDocRequest(update),
      EncodeFetchOplogRequest({4, 512}),
      EncodeMutationResponse({42, 17}),
      EncodeOplogChunkResponse(chunk),
  };
  for (int i = 0; i < 4000; ++i) {
    auto payload = seeds[fuzz.Below(seeds.size())];
    if (fuzz.Below(2) == 0 && !payload.empty()) {
      payload[fuzz.Below(payload.size())] ^=
          static_cast<std::uint8_t>(1u << fuzz.Below(8));
    }
    if (fuzz.Below(2) == 0) payload.resize(fuzz.Below(payload.size() + 1));
    InsertDocRequest in;
    DecodeInsertDocRequest(payload, &in);
    DeleteDocRequest del;
    DecodeDeleteDocRequest(payload, &del);
    UpdateDocRequest up;
    DecodeUpdateDocRequest(payload, &up);
    FetchOplogRequest fetch;
    DecodeFetchOplogRequest(payload, &fetch);
    {
      PayloadReader reader(payload);
      MutationReply reply;
      DecodeMutationResponse(reader, &reply);
    }
    {
      PayloadReader reader(payload);
      OplogChunk decoded;
      DecodeOplogChunkResponse(reader, &decoded);
    }
  }
}

/// Boots a real server and feeds its socket fuzzed byte streams; the
/// server must neither crash nor wedge (a fresh PING must still work).
TEST(WireFuzzTest, LiveServerSurvivesFuzzedStreams) {
  Graph graph = kspin::testing::SmallRoadNetwork();
  ContractionHierarchy ch(graph);
  ChOracle oracle(ch);
  PoiService service(graph, oracle);
  SyntheticCatalogOptions catalog;
  catalog.num_pois = 50;
  catalog.num_keywords = 8;
  PopulateSyntheticCatalog(service, graph, catalog);
  Server server(service);
  server.Start();

  Fuzzer fuzz(0xBADF00D5u);
  for (int round = 0; round < 40; ++round) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.Port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);

    for (int burst = 0; burst < 4; ++burst) {
      std::vector<std::uint8_t> bytes;
      switch (fuzz.Below(3)) {
        case 0:  // Pure garbage.
          bytes = fuzz.Bytes(1 + fuzz.Below(128));
          break;
        case 1: {  // Valid header, random opcode + payload.
          bytes = RandomFrame(fuzz);
          break;
        }
        default: {  // Valid frame, then bit-flipped or truncated.
          bytes = RandomFrame(fuzz);
          if (fuzz.Below(2) == 0) {
            bytes[fuzz.Below(bytes.size())] ^=
                static_cast<std::uint8_t>(1u << fuzz.Below(8));
          } else {
            bytes.resize(1 + fuzz.Below(bytes.size()));
          }
          break;
        }
      }
      // MSG_NOSIGNAL: the server may already have closed this connection
      // after a fatal stream error; EPIPE is expected, SIGPIPE is not.
      (void)::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    }
    ::close(fd);

    if (round % 10 == 9) {
      // The server must still answer a well-formed client promptly.
      Client probe;
      probe.Connect("127.0.0.1", server.Port());
      EXPECT_TRUE(probe.Ping().ok()) << "round " << round;
    }
  }

  Client probe;
  probe.Connect("127.0.0.1", server.Port());
  EXPECT_TRUE(probe.Ping().ok());
  const auto stats = probe.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.Value("connections_opened"), 40u);
  server.Stop();
}

}  // namespace
}  // namespace kspin::server
