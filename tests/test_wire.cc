// Unit tests for the kspin wire protocol: frame encode/decode, the
// payload primitives, and the request/response body codecs.
#include "server/wire.h"

#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

namespace kspin::server {
namespace {

std::span<const std::uint8_t> Prefix(const std::vector<std::uint8_t>& bytes,
                                     std::size_t count) {
  return std::span<const std::uint8_t>(bytes.data(), count);
}

TEST(WireFrameTest, HeaderRoundTrip) {
  FrameHeader header;
  header.opcode = Opcode::kSearchRanked;
  header.request_id = 0x0123456789ABCDEFull;
  header.deadline_ms = 250;
  const std::vector<std::uint8_t> payload = {0xAA, 0xBB, 0xCC};
  const auto frame = EncodeFrame(header, payload);
  ASSERT_EQ(frame.size(), kHeaderSize + payload.size());

  FrameHeader decoded;
  std::size_t frame_size = 0;
  ASSERT_EQ(TryDecodeFrame(frame, &decoded, &frame_size),
            DecodeResult::kFrame);
  EXPECT_EQ(frame_size, frame.size());
  EXPECT_EQ(decoded.version, kProtocolVersion);
  EXPECT_EQ(decoded.opcode, Opcode::kSearchRanked);
  EXPECT_EQ(decoded.request_id, 0x0123456789ABCDEFull);
  EXPECT_EQ(decoded.deadline_ms, 250u);
  EXPECT_EQ(decoded.payload_size, payload.size());
  EXPECT_EQ(std::vector<std::uint8_t>(frame.begin() + kHeaderSize,
                                      frame.end()),
            payload);
}

TEST(WireFrameTest, EmptyPayloadFrame) {
  FrameHeader header;
  header.opcode = Opcode::kPing;
  header.request_id = 7;
  const auto frame = EncodeFrame(header, {});
  ASSERT_EQ(frame.size(), kHeaderSize);

  FrameHeader decoded;
  std::size_t frame_size = 0;
  ASSERT_EQ(TryDecodeFrame(frame, &decoded, &frame_size),
            DecodeResult::kFrame);
  EXPECT_EQ(frame_size, kHeaderSize);
  EXPECT_EQ(decoded.payload_size, 0u);
}

TEST(WireFrameTest, EveryTruncatedPrefixNeedsMore) {
  FrameHeader header;
  header.opcode = Opcode::kSearchBoolean;
  header.request_id = 42;
  const std::vector<std::uint8_t> payload(17, 0x5A);
  const auto frame = EncodeFrame(header, payload);

  for (std::size_t len = 0; len < frame.size(); ++len) {
    FrameHeader decoded;
    std::size_t frame_size = 0;
    EXPECT_EQ(TryDecodeFrame(Prefix(frame, len), &decoded, &frame_size),
              DecodeResult::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(WireFrameTest, BadMagicDetectedEvenOnShortPrefix) {
  FrameHeader header;
  const auto frame = EncodeFrame(header, {});
  // Corrupt each magic byte in turn; the error must surface as soon as
  // the corrupted byte is visible, not only after a full header arrives.
  for (std::size_t corrupt = 0; corrupt < 4; ++corrupt) {
    auto bad = frame;
    bad[corrupt] ^= 0xFF;
    FrameHeader decoded;
    std::size_t frame_size = 0;
    EXPECT_EQ(TryDecodeFrame(Prefix(bad, corrupt + 1), &decoded,
                             &frame_size),
              DecodeResult::kBadMagic)
        << "corrupted byte " << corrupt;
    EXPECT_EQ(TryDecodeFrame(bad, &decoded, &frame_size),
              DecodeResult::kBadMagic);
  }
}

TEST(WireFrameTest, BadVersionStillYieldsRequestId) {
  FrameHeader header;
  header.request_id = 99;
  auto frame = EncodeFrame(header, {});
  frame[4] = kProtocolVersion + 1;
  FrameHeader decoded;
  std::size_t frame_size = 0;
  EXPECT_EQ(TryDecodeFrame(frame, &decoded, &frame_size),
            DecodeResult::kBadVersion);
  // The header is filled so the server can address the error frame.
  EXPECT_EQ(decoded.request_id, 99u);
  EXPECT_EQ(decoded.version, kProtocolVersion + 1);
}

TEST(WireFrameTest, OversizedPayloadRejected) {
  FrameHeader header;
  auto frame = EncodeFrame(header, {});
  const std::uint32_t huge = kMaxPayloadSize + 1;
  std::memcpy(frame.data() + 20, &huge, sizeof huge);
  FrameHeader decoded;
  std::size_t frame_size = 0;
  EXPECT_EQ(TryDecodeFrame(frame, &decoded, &frame_size),
            DecodeResult::kTooLarge);
}

TEST(WireFrameTest, NonZeroReservedBytesRejected) {
  FrameHeader header;
  auto frame = EncodeFrame(header, {});
  frame[6] = 1;
  FrameHeader decoded;
  std::size_t frame_size = 0;
  EXPECT_EQ(TryDecodeFrame(frame, &decoded, &frame_size),
            DecodeResult::kBadVersion);
}

TEST(PayloadTest, PrimitivesRoundTrip) {
  PayloadWriter w;
  w.U8(0xAB);
  w.U16(0xBEEF);
  w.U32(0xDEADBEEF);
  w.U64(0x0102030405060708ull);
  w.F64(-1234.5);
  w.String("hello");
  w.String("");

  PayloadReader r(w.Bytes());
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U16(), 0xBEEF);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0102030405060708ull);
  EXPECT_EQ(r.F64(), -1234.5);
  EXPECT_EQ(r.String(), "hello");
  EXPECT_EQ(r.String(), "");
  EXPECT_TRUE(r.Finished());
}

TEST(PayloadTest, UnderrunLatchesNotOk) {
  PayloadWriter w;
  w.U16(7);
  PayloadReader r(w.Bytes());
  EXPECT_EQ(r.U32(), 0u);  // Only two bytes available.
  EXPECT_FALSE(r.ok());
  // Latches: later reads stay zero even though bytes remain.
  EXPECT_EQ(r.U8(), 0u);
  EXPECT_FALSE(r.Finished());
}

TEST(PayloadTest, StringLengthBeyondPayloadLatchesNotOk) {
  PayloadWriter w;
  w.U32(1000);  // Length prefix promising far more than is present.
  w.U8('x');
  PayloadReader r(w.Bytes());
  EXPECT_EQ(r.String(), "");
  EXPECT_FALSE(r.ok());
}

TEST(PayloadTest, TrailingGarbageNotFinished) {
  PayloadWriter w;
  w.U8(1);
  w.U8(2);
  PayloadReader r(w.Bytes());
  EXPECT_EQ(r.U8(), 1u);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.Finished());
}

TEST(BodyCodecTest, SearchRequestRoundTrip) {
  SearchRequest request;
  request.vertex = 314;
  request.k = 10;
  request.query = "(coffee and wifi) or tea";
  SearchRequest decoded;
  ASSERT_TRUE(DecodeSearchRequest(EncodeSearchRequest(request), &decoded));
  EXPECT_EQ(decoded.vertex, request.vertex);
  EXPECT_EQ(decoded.k, request.k);
  EXPECT_EQ(decoded.query, request.query);
}

TEST(BodyCodecTest, SearchRequestRejectsTruncation) {
  const auto bytes = EncodeSearchRequest({314, 10, "coffee"});
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    SearchRequest decoded;
    EXPECT_FALSE(DecodeSearchRequest(Prefix(bytes, len), &decoded))
        << "prefix length " << len;
  }
}

TEST(BodyCodecTest, SearchRequestRejectsTrailingGarbage) {
  auto bytes = EncodeSearchRequest({314, 10, "coffee"});
  bytes.push_back(0);
  SearchRequest decoded;
  EXPECT_FALSE(DecodeSearchRequest(bytes, &decoded));
}

TEST(BodyCodecTest, PoiAddRequestRoundTrip) {
  PoiAddRequest request;
  request.vertex = 9;
  request.name = "cafe";
  request.keywords = {"coffee", "wifi", "open_late"};
  PoiAddRequest decoded;
  ASSERT_TRUE(DecodePoiAddRequest(EncodePoiAddRequest(request), &decoded));
  EXPECT_EQ(decoded.vertex, request.vertex);
  EXPECT_EQ(decoded.name, request.name);
  EXPECT_EQ(decoded.keywords, request.keywords);
}

TEST(BodyCodecTest, PoiTagRequestRoundTrip) {
  PoiTagRequest request{77, "sushi"};
  PoiTagRequest decoded;
  ASSERT_TRUE(DecodePoiTagRequest(EncodePoiTagRequest(request), &decoded));
  EXPECT_EQ(decoded.object, 77u);
  EXPECT_EQ(decoded.keyword, "sushi");
}

TEST(BodyCodecTest, SearchResponseRoundTrip) {
  std::vector<WireResult> results(2);
  results[0] = {5, 120, 0.25, "poi5"};
  results[1] = {9, 480, 17.5, "poi9"};
  const auto bytes = EncodeSearchResponse(results);

  PayloadReader reader(bytes);
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOk);
  std::vector<WireResult> decoded;
  ASSERT_TRUE(DecodeSearchResponse(reader, &decoded));
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].object, 5u);
  EXPECT_EQ(decoded[0].travel_time, 120u);
  EXPECT_EQ(decoded[0].score, 0.25);
  EXPECT_EQ(decoded[0].name, "poi5");
  EXPECT_EQ(decoded[1].object, 9u);
}

TEST(BodyCodecTest, ErrorResponseCarriesStatusAndMessage) {
  const auto bytes =
      EncodeErrorResponse(StatusCode::kOverloaded, "queue full");
  PayloadReader reader(bytes);
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOverloaded);
  EXPECT_EQ(reader.String(), "queue full");
  EXPECT_TRUE(reader.Finished());
}

TEST(BodyCodecTest, StatsResponseRoundTrip) {
  const std::vector<std::pair<std::string, std::uint64_t>> stats = {
      {"requests_ok", 12}, {"queue_depth", 0}, {"query_latency_p99_us", 512}};
  const auto bytes = EncodeStatsResponse(stats);
  PayloadReader reader(bytes);
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOk);
  std::vector<std::pair<std::string, std::uint64_t>> decoded;
  ASSERT_TRUE(DecodeStatsResponse(reader, &decoded));
  EXPECT_EQ(decoded, stats);
}

TEST(BodyCodecTest, StatusNamesAreStable) {
  EXPECT_EQ(StatusName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusName(StatusCode::kOverloaded), "OVERLOADED");
  EXPECT_EQ(StatusName(StatusCode::kDeadlineExceeded), "DEADLINE_EXCEEDED");
}

}  // namespace
}  // namespace kspin::server
