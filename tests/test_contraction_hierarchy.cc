// Contraction Hierarchies correctness: CH queries must equal Dijkstra on
// every graph we throw at them — the witness search is budget-limited and
// conservative, so exactness must survive any witness budget.
#include <gtest/gtest.h>

#include "common/random.h"
#include "routing/contraction_hierarchy.h"
#include "routing/dijkstra.h"
#include "test_util.h"

namespace kspin {
namespace {

void ExpectMatchesDijkstra(const Graph& graph,
                           const ContractionHierarchy& ch,
                           int num_sources, std::uint64_t seed) {
  DijkstraWorkspace workspace(graph.NumVertices());
  Rng rng(seed);
  for (int i = 0; i < num_sources; ++i) {
    const VertexId s =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    const auto& dist = workspace.SingleSource(graph, s);
    for (VertexId t = 0; t < graph.NumVertices(); t += 13) {
      ASSERT_EQ(ch.Query(s, t), dist[t]) << "s=" << s << " t=" << t;
    }
  }
}

TEST(ContractionHierarchy, ExactOnTinyGrid) {
  Graph graph = testing::TinyGrid();
  ContractionHierarchy ch(graph);
  DijkstraWorkspace workspace(graph.NumVertices());
  for (VertexId s = 0; s < graph.NumVertices(); ++s) {
    const auto& dist = workspace.SingleSource(graph, s);
    for (VertexId t = 0; t < graph.NumVertices(); ++t) {
      ASSERT_EQ(ch.Query(s, t), dist[t]) << "s=" << s << " t=" << t;
    }
  }
}

class ChExactness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChExactness, MatchesDijkstraOnRandomRoadNetworks) {
  Graph graph = testing::SmallRoadNetwork(GetParam());
  ContractionHierarchy ch(graph);
  ExpectMatchesDijkstra(graph, ch, 10, GetParam() + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChExactness,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ContractionHierarchy, TinyWitnessBudgetStaysExact) {
  Graph graph = testing::SmallRoadNetwork(9);
  ContractionHierarchyOptions options;
  options.witness_settle_limit = 2;  // Nearly always inconclusive.
  ContractionHierarchy ch(graph, options);
  ExpectMatchesDijkstra(graph, ch, 5, 10);
}

TEST(ContractionHierarchy, SmallerWitnessBudgetAddsMoreShortcuts) {
  Graph graph = testing::SmallRoadNetwork(9);
  ContractionHierarchyOptions tight;
  tight.witness_settle_limit = 2;
  ContractionHierarchyOptions generous;
  generous.witness_settle_limit = 256;
  ContractionHierarchy ch_tight(graph, tight);
  ContractionHierarchy ch_generous(graph, generous);
  EXPECT_GE(ch_tight.NumShortcuts(), ch_generous.NumShortcuts());
}

TEST(ContractionHierarchy, RanksFormPermutation) {
  Graph graph = testing::SmallRoadNetwork(4);
  ContractionHierarchy ch(graph);
  std::vector<bool> seen(graph.NumVertices(), false);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    ASSERT_LT(ch.Rank(v), graph.NumVertices());
    ASSERT_FALSE(seen[ch.Rank(v)]);
    seen[ch.Rank(v)] = true;
  }
  const auto order = ch.VerticesByDescendingRank();
  EXPECT_EQ(ch.Rank(order.front()),
            static_cast<std::uint32_t>(graph.NumVertices() - 1));
  EXPECT_EQ(ch.Rank(order.back()), 0u);
}

TEST(ContractionHierarchy, UpwardArcsPointUpward) {
  Graph graph = testing::SmallRoadNetwork(4);
  ContractionHierarchy ch(graph);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    for (const Arc& arc : ch.UpwardArcs(v)) {
      EXPECT_GT(ch.Rank(arc.head), ch.Rank(v));
    }
  }
}

TEST(ContractionHierarchy, SelfDistanceIsZeroAndSymmetric) {
  Graph graph = testing::SmallRoadNetwork(4);
  ContractionHierarchy ch(graph);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const VertexId s =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    const VertexId t =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    EXPECT_EQ(ch.Query(s, s), 0u);
    EXPECT_EQ(ch.Query(s, t), ch.Query(t, s));
  }
}

void ExpectValidPath(const Graph& graph, const std::vector<VertexId>& path,
                     VertexId s, VertexId t, Distance expected) {
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), s);
  EXPECT_EQ(path.back(), t);
  Distance total = 0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    const Distance w = graph.EdgeWeight(path[i - 1], path[i]);
    ASSERT_NE(w, kInfDistance)
        << "path uses non-edge " << path[i - 1] << "-" << path[i];
    total += w;
  }
  EXPECT_EQ(total, expected);
}

TEST(ContractionHierarchy, PathQueryUnpacksToValidShortestPaths) {
  Graph graph = testing::SmallRoadNetwork(31);
  ContractionHierarchy ch(graph);
  DijkstraWorkspace workspace(graph.NumVertices());
  Rng rng(32);
  for (int i = 0; i < 8; ++i) {
    const VertexId s =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    const auto& dist = workspace.SingleSource(graph, s);
    for (VertexId t = 0; t < graph.NumVertices(); t += 47) {
      const auto path = ch.PathQuery(s, t);
      if (s == t) {
        ASSERT_EQ(path, std::vector<VertexId>{s});
        continue;
      }
      ExpectValidPath(graph, path, s, t, dist[t]);
    }
  }
}

TEST(ContractionHierarchy, PathQueryOnTinyGridHandChecked) {
  Graph graph = testing::TinyGrid();
  ContractionHierarchy ch(graph);
  const auto path = ch.PathQuery(0, 8);
  ExpectValidPath(graph, path, 0, 8, 4);  // 0-1-2-5-8.
}

TEST(Dijkstra, PathToReconstructsShortestPaths) {
  Graph graph = testing::TinyGrid();
  DijkstraWorkspace workspace(graph.NumVertices());
  workspace.PointToPoint(graph, 0, 8);
  const auto path = workspace.PathTo(8);
  ExpectValidPath(graph, path, 0, 8, 4);
  EXPECT_EQ(DijkstraShortestPath(graph, 0, 8).size(), path.size());
  // Unreached target: empty path.
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 1);
  Graph disconnected = builder.Build();
  EXPECT_TRUE(DijkstraShortestPath(disconnected, 0, 2).empty());
}

TEST(ChOracle, ReportsNameAndMemory) {
  Graph graph = testing::TinyGrid();
  ContractionHierarchy ch(graph);
  ChOracle oracle(ch);
  EXPECT_EQ(oracle.Name(), "ch");
  EXPECT_GT(oracle.MemoryBytes(), 0u);
  EXPECT_EQ(oracle.NetworkDistance(0, 8), 4u);
}

}  // namespace
}  // namespace kspin
