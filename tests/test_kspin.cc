// Framework facade tests: construction wiring, component access, memory
// accounting, and the Table-1-style separation between K-SPIN index cost
// and the pluggable Network Distance Module.
#include <gtest/gtest.h>

#include <memory>

#include "kspin/kspin.h"
#include "routing/contraction_hierarchy.h"
#include "routing/dijkstra.h"
#include "routing/hub_labeling.h"
#include "test_util.h"

namespace kspin {
namespace {

TEST(KSpin, BuildsAndAnswersWithDefaults) {
  Graph graph = testing::SmallRoadNetwork(21);
  DocumentStore store = testing::TestDocuments(graph);
  DijkstraOracle oracle(graph);
  KSpin engine(graph, std::move(store), oracle);
  // Find a keyword with objects and run a smoke query.
  for (KeywordId t = 0; t < engine.Inverted().NumKeywords(); ++t) {
    if (engine.Inverted().ListSize(t) >= 3) {
      const std::vector<KeywordId> keywords = {t};
      auto results =
          engine.BooleanKnn(0, 3, keywords, BooleanOp::kDisjunctive);
      EXPECT_EQ(results.size(), 3u);
      // Ascending distances.
      for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_GE(results[i].distance, results[i - 1].distance);
      }
      return;
    }
  }
  FAIL() << "no usable keyword";
}

TEST(KSpin, IndexMemoryExcludesDistanceModule) {
  Graph graph = testing::SmallRoadNetwork(22);
  DocumentStore store = testing::TestDocuments(graph);
  ContractionHierarchy ch(graph);
  ChOracle ch_oracle(ch);
  KSpinOptions options;
  options.num_threads = 2;
  KSpin engine(graph, std::move(store), ch_oracle, options);
  EXPECT_GT(engine.IndexMemoryBytes(), 0u);
  EXPECT_GT(engine.Oracle().MemoryBytes(), 0u);
  // Swapping the distance module must not change the K-SPIN-side size:
  // that is the framework's decoupling claim.
  DocumentStore store2 = testing::TestDocuments(graph);
  DijkstraOracle dijkstra(graph);
  KSpin engine2(graph, std::move(store2), dijkstra, options);
  EXPECT_EQ(engine.IndexMemoryBytes(), engine2.IndexMemoryBytes());
}

TEST(KSpin, ObservationOneSkipsMostVoronoiIndexes) {
  Graph graph = testing::MediumRoadNetwork(23);
  KeywordDatasetOptions kw;
  kw.num_keywords = 300;
  kw.object_fraction = 0.2;
  kw.seed = 123;
  DocumentStore store = GenerateKeywordDataset(graph, kw);
  DijkstraOracle oracle(graph);
  KSpinOptions options;
  options.rho = 5;
  options.num_threads = 4;
  KSpin engine(graph, std::move(store), oracle, options);
  const std::size_t total = engine.Keywords().NumIndexes();
  const std::size_t voronoi = engine.Keywords().NumVoronoiIndexes();
  ASSERT_GT(total, 0u);
  // Zipf's law: the vast majority of keywords stay under the rho cutoff.
  EXPECT_LT(voronoi * 3, total)
      << voronoi << " Voronoi indexes out of " << total;
}

TEST(KSpin, ParallelAndSerialBuildsAnswerIdentically) {
  Graph graph = testing::SmallRoadNetwork(24);
  DijkstraOracle oracle(graph);
  KSpinOptions serial_options;
  serial_options.num_threads = 1;
  KSpinOptions parallel_options;
  parallel_options.num_threads = 4;
  KSpin serial(graph, testing::TestDocuments(graph), oracle,
               serial_options);
  KSpin parallel(graph, testing::TestDocuments(graph), oracle,
                 parallel_options);
  for (KeywordId t = 0; t < serial.Inverted().NumKeywords(); ++t) {
    if (serial.Inverted().ListSize(t) < 4) continue;
    const std::vector<KeywordId> keywords = {t};
    for (VertexId q = 0; q < graph.NumVertices(); q += 101) {
      auto a = serial.BooleanKnn(q, 4, keywords, BooleanOp::kDisjunctive);
      auto b = parallel.BooleanKnn(q, 4, keywords, BooleanOp::kDisjunctive);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].distance, b[i].distance);
      }
    }
  }
}

TEST(KSpin, WorksWithEmptyDocumentStore) {
  Graph graph = testing::SmallRoadNetwork(25);
  DijkstraOracle oracle(graph);
  KSpin engine(graph, DocumentStore{}, oracle);
  const std::vector<KeywordId> keywords = {0};
  EXPECT_TRUE(engine.BooleanKnn(0, 5, keywords, BooleanOp::kDisjunctive)
                  .empty());
  EXPECT_TRUE(engine.TopK(0, 5, keywords).empty());
  // Growing from empty via inserts works.
  const ObjectId o = engine.InsertObject(3, {{0, 1}});
  auto results =
      engine.BooleanKnn(3, 1, keywords, BooleanOp::kDisjunctive);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].object, o);
}

TEST(KSpin, RhoControlsKeywordIndexSize) {
  Graph graph = testing::MediumRoadNetwork(26);
  DijkstraOracle oracle(graph);
  KSpinOptions exact;
  exact.rho = 1;
  exact.num_threads = 4;
  KSpinOptions approximate;
  approximate.rho = 5;
  approximate.num_threads = 4;
  KSpin engine_exact(graph, testing::TestDocuments(graph, 80, 0.2), oracle,
                     exact);
  KSpin engine_apx(graph, testing::TestDocuments(graph, 80, 0.2), oracle,
                   approximate);
  // Figure 6a's effect: larger rho means a smaller keyword index.
  EXPECT_GT(engine_exact.Keywords().MemoryBytes(),
            engine_apx.Keywords().MemoryBytes());
}

}  // namespace
}  // namespace kspin
