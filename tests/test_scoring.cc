// ScoringFunction unit tests: both combination methods, monotonicity (the
// property the pseudo lower bound's correctness rests on), and edge cases.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "text/relevance.h"

namespace kspin {
namespace {

TEST(ScoringFunction, WeightedDistanceMatchesEquationOne) {
  ScoringFunction scoring;  // Default: weighted distance.
  EXPECT_DOUBLE_EQ(scoring.Score(500, 0.5), 1000.0);
  EXPECT_DOUBLE_EQ(scoring.Score(0, 0.7), 0.0);
  EXPECT_TRUE(std::isinf(scoring.Score(500, 0.0)));
  EXPECT_TRUE(std::isinf(scoring.Score(500, -0.1)));
}

TEST(ScoringFunction, WeightedSumCombinesLinearly) {
  ScoringFunction scoring;
  scoring.kind = ScoringFunction::Kind::kWeightedSum;
  scoring.alpha = 0.25;
  scoring.max_distance = 1000.0;
  // 0.25 * (500/1000) + 0.75 * (1 - 0.6) = 0.125 + 0.3.
  EXPECT_NEAR(scoring.Score(500, 0.6), 0.425, 1e-12);
  // Relevance clamped to 1.
  EXPECT_NEAR(scoring.Score(500, 1.5), 0.125, 1e-12);
  // Irrelevant objects never qualify under either combination.
  EXPECT_TRUE(std::isinf(scoring.Score(500, 0.0)));
}

TEST(ScoringFunction, AlphaExtremes) {
  ScoringFunction scoring;
  scoring.kind = ScoringFunction::Kind::kWeightedSum;
  scoring.max_distance = 100.0;
  scoring.alpha = 1.0;
  EXPECT_NEAR(scoring.Score(50, 0.2), 0.5, 1e-12);  // Pure distance.
  scoring.alpha = 0.0;
  EXPECT_NEAR(scoring.Score(50, 0.2), 0.8, 1e-12);  // Pure text.
}

class ScoringMonotonicity
    : public ::testing::TestWithParam<ScoringFunction::Kind> {};

TEST_P(ScoringMonotonicity, MonotoneInDistanceAndRelevance) {
  ScoringFunction scoring;
  scoring.kind = GetParam();
  scoring.alpha = 0.4;
  scoring.max_distance = 5000.0;
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const Distance d1 = rng.UniformInt(0, 100000);
    const Distance d2 = d1 + rng.UniformInt(0, 100000);
    const double tr1 = 0.01 + rng.UniformDouble() * 0.99;
    const double tr2 = tr1 * rng.UniformDouble();
    if (tr2 <= 0.0) continue;
    // Increasing in distance.
    EXPECT_LE(scoring.Score(d1, tr1), scoring.Score(d2, tr1));
    // Decreasing in relevance.
    EXPECT_LE(scoring.Score(d1, tr1), scoring.Score(d1, tr2));
    // LowerBoundScore is a valid lower bound for (d >= d1, tr <= tr1).
    EXPECT_LE(scoring.LowerBoundScore(d1, tr1), scoring.Score(d2, tr2));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ScoringMonotonicity,
    ::testing::Values(ScoringFunction::Kind::kWeightedDistance,
                      ScoringFunction::Kind::kWeightedSum));

}  // namespace
}  // namespace kspin
