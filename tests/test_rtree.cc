// R-tree storage tests: stabbing queries must return a superset of the
// true owner colour, and space must be linear in the number of colours
// (the Figure 6c guarantee).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "nvd/nvd.h"
#include "nvd/rtree.h"
#include "test_util.h"

namespace kspin {
namespace {

TEST(VoronoiRTree, LocateContainsOwnColor) {
  Graph graph = testing::SmallRoadNetwork();
  Rng rng(11);
  auto sample = rng.SampleWithoutReplacement(
      static_cast<std::uint32_t>(graph.NumVertices()), 25);
  std::vector<VertexId> sites(sample.begin(), sample.end());
  NetworkVoronoiDiagram nvd = BuildNvd(graph, sites);
  VoronoiRTree tree(graph.Coordinates(), nvd.owner);
  std::vector<std::uint32_t> out;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    tree.Locate(graph.VertexCoordinate(v), &out);
    EXPECT_TRUE(std::find(out.begin(), out.end(), nvd.owner[v]) != out.end())
        << "vertex " << v;
  }
}

TEST(VoronoiRTree, LocateOnlyReturnsContainingMbrs) {
  // Three well-separated clusters: stabbing inside one must not return the
  // others.
  std::vector<Coordinate> points;
  std::vector<std::uint32_t> colors;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 10; ++i) {
      points.push_back({c * 1000 + i, c * 1000 + (i * 7) % 10});
      colors.push_back(c);
    }
  }
  VoronoiRTree tree(points, colors);
  std::vector<std::uint32_t> out;
  tree.Locate({5, 5}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);
  tree.Locate({2005, 2005}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 2u);
  tree.Locate({-500, -500}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(VoronoiRTree, SpaceLinearInColors) {
  Graph graph = testing::MediumRoadNetwork();
  Rng rng(12);
  auto make_tree = [&graph, &rng](std::uint32_t num_sites) {
    auto sample = rng.SampleWithoutReplacement(
        static_cast<std::uint32_t>(graph.NumVertices()), num_sites);
    std::vector<VertexId> sites(sample.begin(), sample.end());
    NetworkVoronoiDiagram nvd = BuildNvd(graph, sites);
    return VoronoiRTree(graph.Coordinates(), nvd.owner).MemoryBytes();
  };
  const std::size_t small = make_tree(20);
  const std::size_t large = make_tree(200);
  // 10x the colours should cost roughly 10x the memory (within 3x slack),
  // and definitely not O(|V|).
  EXPECT_GT(large, small * 3);
  EXPECT_LT(large, small * 30);
}

TEST(VoronoiRTree, HandlesManyColorsWithDeepTree) {
  Rng rng(13);
  std::vector<Coordinate> points;
  std::vector<std::uint32_t> colors;
  for (std::uint32_t c = 0; c < 500; ++c) {
    points.push_back({static_cast<std::int32_t>(rng.UniformInt(0, 10000)),
                      static_cast<std::int32_t>(rng.UniformInt(0, 10000))});
    colors.push_back(c);
  }
  VoronoiRTree tree(points, colors, /*node_capacity=*/4);
  EXPECT_EQ(tree.NumColors(), 500u);
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < points.size(); i += 17) {
    tree.Locate(points[i], &out);
    EXPECT_TRUE(std::find(out.begin(), out.end(), colors[i]) != out.end());
  }
}

TEST(VoronoiRTree, ValidatesInput) {
  std::vector<Coordinate> points = {{0, 0}};
  std::vector<std::uint32_t> colors = {1};
  EXPECT_THROW(VoronoiRTree({}, {}), std::invalid_argument);
  EXPECT_THROW(VoronoiRTree(points, colors, 1), std::invalid_argument);
  std::vector<std::uint32_t> two = {1, 2};
  EXPECT_THROW(VoronoiRTree(points, two), std::invalid_argument);
}

}  // namespace
}  // namespace kspin
