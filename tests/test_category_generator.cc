// Category-bundle generator tests: keyword layout, co-occurrence structure
// (attributes imply their category keyword), category popularity skew, and
// end-to-end conjunctive querying over the correlated corpus.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/network_expansion.h"
#include "kspin/kspin.h"
#include "routing/dijkstra.h"
#include "test_util.h"
#include "text/category_generator.h"
#include "text/inverted_index.h"

namespace kspin {
namespace {

class CategoryGeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = testing::MediumRoadNetwork(55);
    options_.num_categories = 6;
    options_.attributes_per_category = 5;
    options_.num_global_keywords = 40;
    options_.object_fraction = 0.2;
    options_.seed = 155;
    store_ = GenerateCategoryDataset(graph_, options_);
  }

  Graph graph_;
  CategoryDatasetOptions options_;
  DocumentStore store_;
};

TEST_F(CategoryGeneratorTest, KeywordLayoutIsDense) {
  const std::uint32_t universe = CategoryKeywordUniverse(options_);
  EXPECT_EQ(universe, 6u + 30u + 40u);
  for (ObjectId o = 0; o < store_.NumSlots(); ++o) {
    for (const DocEntry& e : store_.Document(o)) {
      EXPECT_LT(e.keyword, universe);
    }
  }
}

TEST_F(CategoryGeneratorTest, EveryObjectHasExactlyOneCategory) {
  for (ObjectId o = 0; o < store_.NumSlots(); ++o) {
    int categories = 0;
    for (const DocEntry& e : store_.Document(o)) {
      if (e.keyword < options_.num_categories) ++categories;
    }
    EXPECT_EQ(categories, 1) << "object " << o;
  }
}

TEST_F(CategoryGeneratorTest, AttributesImplyTheirCategory) {
  // The correlation that makes conjunctive queries realistic: an object
  // carrying attribute (c, a) always carries category keyword c.
  for (ObjectId o = 0; o < store_.NumSlots(); ++o) {
    for (const DocEntry& e : store_.Document(o)) {
      if (e.keyword < options_.num_categories) continue;
      const std::uint32_t offset = e.keyword - options_.num_categories;
      if (offset >= options_.num_categories *
                        options_.attributes_per_category) {
        continue;  // Global keyword.
      }
      const std::uint32_t category =
          offset / options_.attributes_per_category;
      EXPECT_TRUE(store_.Contains(o, CategoryKeyword(category)))
          << "object " << o << " has attribute of category " << category
          << " but not its keyword";
    }
  }
}

TEST_F(CategoryGeneratorTest, CategoriesAreZipfSkewed) {
  InvertedIndex index(store_, CategoryKeywordUniverse(options_));
  // Category 0 clearly dominates the last category.
  EXPECT_GT(index.ListSize(CategoryKeyword(0)),
            index.ListSize(CategoryKeyword(5)) * 2);
}

TEST_F(CategoryGeneratorTest, ValidatesOptions) {
  CategoryDatasetOptions bad = options_;
  bad.num_categories = 0;
  EXPECT_THROW(GenerateCategoryDataset(graph_, bad), std::invalid_argument);
  bad = options_;
  bad.max_attributes = bad.attributes_per_category + 1;
  EXPECT_THROW(GenerateCategoryDataset(graph_, bad), std::invalid_argument);
  bad = options_;
  bad.object_fraction = 0.0;
  EXPECT_THROW(GenerateCategoryDataset(graph_, bad), std::invalid_argument);
}

TEST_F(CategoryGeneratorTest, ConjunctiveQueriesStayExactOnBundles) {
  // Category + attribute conjunctions are the natural workload here;
  // verify K-SPIN against brute force on a sample.
  DijkstraOracle oracle(graph_);
  KSpinOptions ks;
  ks.num_threads = 2;
  KSpin engine(graph_, store_, oracle, ks);
  InvertedIndex inverted(store_, CategoryKeywordUniverse(options_));
  RelevanceModel relevance(store_, inverted);
  NetworkExpansionBaseline expansion(graph_, store_, inverted, relevance);
  for (std::uint32_t c = 0; c < options_.num_categories; c += 2) {
    const std::vector<KeywordId> keywords = {
        CategoryKeyword(c), AttributeKeyword(options_, c, 1)};
    for (VertexId q = 3; q < graph_.NumVertices(); q += 401) {
      const auto got =
          engine.BooleanKnn(q, 5, keywords, BooleanOp::kConjunctive);
      const auto want =
          expansion.BooleanKnn(q, 5, keywords, BooleanOp::kConjunctive);
      ASSERT_EQ(got.size(), want.size()) << "c=" << c << " q=" << q;
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].distance, want[i].distance);
      }
    }
  }
}

}  // namespace
}  // namespace kspin
