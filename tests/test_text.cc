// Text substrate tests: vocabulary, document store mutations, inverted
// index consistency, relevance formulas (Equations 1-3), the Zipfian
// generator's statistical shape (Observation 1), and workload generation.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "text/document_store.h"
#include "text/inverted_index.h"
#include "text/query_workload.h"
#include "text/relevance.h"
#include "text/vocabulary.h"
#include "text/zipf_generator.h"
#include "test_util.h"

namespace kspin {
namespace {

TEST(Vocabulary, InternsAndResolves) {
  Vocabulary vocab;
  const KeywordId thai = vocab.AddOrGet("thai");
  const KeywordId rest = vocab.AddOrGet("restaurant");
  EXPECT_NE(thai, rest);
  EXPECT_EQ(vocab.AddOrGet("thai"), thai);
  EXPECT_EQ(vocab.IdOf("restaurant"), rest);
  EXPECT_EQ(vocab.IdOf("takeaway"), kInvalidKeyword);
  EXPECT_EQ(vocab.TermOf(thai), "thai");
  EXPECT_EQ(vocab.Size(), 2u);
  EXPECT_THROW(vocab.TermOf(99), std::out_of_range);
}

TEST(DocumentStore, AddMergesDuplicatesAndSorts) {
  DocumentStore store;
  const ObjectId o = store.AddObject(3, {{5, 2}, {1, 1}, {5, 3}});
  const auto doc = store.Document(o);
  ASSERT_EQ(doc.size(), 2u);
  EXPECT_EQ(doc[0].keyword, 1u);
  EXPECT_EQ(doc[1].keyword, 5u);
  EXPECT_EQ(doc[1].frequency, 5u);
  EXPECT_EQ(store.ObjectVertex(o), 3u);
  EXPECT_EQ(store.TotalKeywordSlots(), 2u);
}

TEST(DocumentStore, MutationsAndTombstones) {
  DocumentStore store;
  const ObjectId o = store.AddObject(0, {{1, 1}});
  store.AddKeyword(o, 2);
  store.AddKeyword(o, 1, 4);  // Bumps frequency.
  EXPECT_EQ(store.Frequency(o, 1), 5u);
  EXPECT_TRUE(store.Contains(o, 2));
  store.RemoveKeyword(o, 2);
  EXPECT_FALSE(store.Contains(o, 2));
  EXPECT_THROW(store.RemoveKeyword(o, 2), std::invalid_argument);
  store.DeleteObject(o);
  EXPECT_FALSE(store.IsLive(o));
  EXPECT_EQ(store.NumLiveObjects(), 0u);
  EXPECT_THROW(store.DeleteObject(o), std::invalid_argument);
  EXPECT_THROW(store.AddKeyword(o, 1), std::invalid_argument);
  EXPECT_EQ(store.Frequency(o, 1), 0u);
}

TEST(DocumentStore, RejectsZeroFrequency) {
  DocumentStore store;
  EXPECT_THROW(store.AddObject(0, {{1, 0}}), std::invalid_argument);
  const ObjectId o = store.AddObject(0, {{1, 1}});
  EXPECT_THROW(store.AddKeyword(o, 2, 0), std::invalid_argument);
}

TEST(InvertedIndex, MirrorsStoreAndUpdates) {
  DocumentStore store;
  const ObjectId a = store.AddObject(0, {{1, 1}, {2, 1}});
  const ObjectId b = store.AddObject(1, {{2, 2}});
  InvertedIndex index(store, 4);
  EXPECT_EQ(index.ListSize(1), 1u);
  EXPECT_EQ(index.ListSize(2), 2u);
  EXPECT_EQ(index.ListSize(3), 0u);
  ASSERT_EQ(index.Objects(2).size(), 2u);
  EXPECT_EQ(index.Objects(2)[0], a);
  EXPECT_EQ(index.Objects(2)[1], b);

  index.Remove(2, a);
  EXPECT_EQ(index.ListSize(2), 1u);
  EXPECT_THROW(index.Remove(2, a), std::invalid_argument);
  index.Add(2, a);
  index.Add(2, a);  // Idempotent.
  EXPECT_EQ(index.ListSize(2), 2u);
  EXPECT_THROW(index.Add(9, a), std::out_of_range);
}

TEST(InvertedIndex, RejectsOutOfUniverseKeywords) {
  DocumentStore store;
  store.AddObject(0, {{7, 1}});
  EXPECT_THROW(InvertedIndex(store, 3), std::invalid_argument);
}

TEST(RelevanceModel, MatchesHandComputedCosine) {
  // Object doc: {t0: f=1, t1: f=e} -> weights {1, 2}; norm = sqrt(5).
  DocumentStore store;
  const std::uint32_t f_e = 3;  // 1 + ln(3) ~ 2.0986.
  const ObjectId o = store.AddObject(0, {{0, 1}, {1, f_e}});
  store.AddObject(1, {{0, 1}});  // Second object so IDF is finite.
  InvertedIndex index(store, 2);
  RelevanceModel model(store, index);

  const double w0 = 1.0;
  const double w1 = 1.0 + std::log(3.0);
  const double norm = std::sqrt(w0 * w0 + w1 * w1);
  EXPECT_NEAR(model.ObjectImpact(o, 0), w0 / norm, 1e-12);
  EXPECT_NEAR(model.ObjectImpact(o, 1), w1 / norm, 1e-12);
  EXPECT_DOUBLE_EQ(model.ObjectImpact(o, 5), 0.0);

  // Query impacts: w_{t,psi} = ln(1 + |O|/|inv(t)|).
  const std::vector<KeywordId> query = {0, 1};
  PreparedQuery prepared = model.PrepareQuery(query);
  const double q0 = std::log(1.0 + 2.0 / 2.0);
  const double q1 = std::log(1.0 + 2.0 / 1.0);
  const double qnorm = std::sqrt(q0 * q0 + q1 * q1);
  EXPECT_NEAR(prepared.impacts[0], q0 / qnorm, 1e-12);
  EXPECT_NEAR(prepared.impacts[1], q1 / qnorm, 1e-12);

  const double tr = prepared.impacts[0] * (w0 / norm) +
                    prepared.impacts[1] * (w1 / norm);
  EXPECT_NEAR(model.TextualRelevance(prepared, o), tr, 1e-12);

  // Equation 1: weighted distance.
  EXPECT_NEAR(RelevanceModel::Score(100, tr), 100.0 / tr, 1e-9);
  EXPECT_TRUE(std::isinf(RelevanceModel::Score(100, 0.0)));
}

TEST(RelevanceModel, MaxImpactBoundsAllObjects) {
  Graph graph = testing::SmallRoadNetwork();
  DocumentStore store = testing::TestDocuments(graph);
  InvertedIndex index(store, 60);
  RelevanceModel model(store, index);
  for (KeywordId t = 0; t < 60; ++t) {
    for (ObjectId o : index.Objects(t)) {
      EXPECT_LE(model.ObjectImpact(o, t), model.MaxImpact(t) + 1e-12);
    }
  }
}

TEST(RelevanceModel, RefreshTracksMutations) {
  DocumentStore store;
  const ObjectId o = store.AddObject(0, {{0, 1}});
  InvertedIndex index(store, 2);
  RelevanceModel model(store, index);
  const double before = model.ObjectImpact(o, 0);
  store.AddKeyword(o, 1, 5);
  model.RefreshObject(o);
  // Adding a second keyword grows the norm, shrinking t0's impact.
  EXPECT_LT(model.ObjectImpact(o, 0), before);
  EXPECT_GT(model.ObjectImpact(o, 1), 0.0);
}

TEST(ZipfGenerator, ProducesZipfianFrequencies) {
  Graph graph = testing::MediumRoadNetwork();
  KeywordDatasetOptions options;
  options.num_keywords = 200;
  options.object_fraction = 0.3;
  options.seed = 5;
  DocumentStore store = GenerateKeywordDataset(graph, options);
  InvertedIndex index(store, 200);

  // Keyword 0 (rank 1) should dominate keyword 50.
  EXPECT_GT(index.ListSize(0), index.ListSize(50) * 3);
  // Observation 1: the vast majority of keywords have tiny lists.
  std::size_t tiny = 0, nonempty = 0;
  for (KeywordId t = 0; t < 200; ++t) {
    if (index.ListSize(t) > 0) ++nonempty;
    if (index.ListSize(t) <= 15) ++tiny;
  }
  EXPECT_GT(nonempty, 100u);
  EXPECT_GT(tiny, 140u);
}

TEST(ZipfGenerator, ObjectsOnDistinctVerticesWithBoundedDocs) {
  Graph graph = testing::SmallRoadNetwork();
  KeywordDatasetOptions options;
  options.num_keywords = 50;
  options.object_fraction = 0.2;
  options.min_doc_keywords = 2;
  options.max_doc_keywords = 6;
  DocumentStore store = GenerateKeywordDataset(graph, options);
  std::set<VertexId> vertices;
  for (ObjectId o = 0; o < store.NumSlots(); ++o) {
    ASSERT_TRUE(store.IsLive(o));
    EXPECT_TRUE(vertices.insert(store.ObjectVertex(o)).second);
    EXPECT_GE(store.Document(o).size(), 2u);
    EXPECT_LE(store.Document(o).size(), 6u);
  }
  EXPECT_NEAR(static_cast<double>(store.NumLiveObjects()),
              graph.NumVertices() * 0.2, graph.NumVertices() * 0.02);
}

TEST(ZipfGenerator, ValidatesOptions) {
  Graph graph = testing::SmallRoadNetwork();
  KeywordDatasetOptions options;
  options.num_keywords = 0;
  EXPECT_THROW(GenerateKeywordDataset(graph, options),
               std::invalid_argument);
  options = {};
  options.object_fraction = 0.0;
  EXPECT_THROW(GenerateKeywordDataset(graph, options),
               std::invalid_argument);
  options = {};
  options.min_doc_keywords = 5;
  options.max_doc_keywords = 2;
  EXPECT_THROW(GenerateKeywordDataset(graph, options),
               std::invalid_argument);
}

TEST(QueryWorkload, GeneratesCorrelatedVectorsPerLength) {
  Graph graph = testing::SmallRoadNetwork();
  DocumentStore store = testing::TestDocuments(graph);
  InvertedIndex index(store, 60);
  WorkloadOptions options;
  options.vector_lengths = {1, 2, 3};
  options.num_seed_terms = 3;
  options.objects_per_term = 4;
  options.vertices_per_vector = 5;
  QueryWorkload workload(graph, store, index, options);

  for (std::uint32_t len : options.vector_lengths) {
    const auto queries = workload.QueriesForLength(len);
    EXPECT_EQ(queries.size(), 3u * 4u * 5u);
    for (const auto& query : queries) {
      EXPECT_EQ(query.keywords.size(), len);
      EXPECT_LT(query.vertex, graph.NumVertices());
      // Keywords are distinct within a vector.
      std::set<KeywordId> unique(query.keywords.begin(),
                                 query.keywords.end());
      EXPECT_EQ(unique.size(), len);
    }
  }
  EXPECT_THROW(workload.QueriesForLength(9), std::invalid_argument);
}

TEST(QueryWorkload, DensityBucketsSelectByListSize) {
  Graph graph = testing::MediumRoadNetwork();
  DocumentStore store = testing::TestDocuments(graph, 120, 0.2);
  InvertedIndex index(store, 120);
  QueryWorkload workload(graph, store, index);
  const double n = static_cast<double>(graph.NumVertices());
  auto queries = workload.SingleKeywordDensityBucket(0.001, 0.1, 5, 3);
  for (const auto& query : queries) {
    ASSERT_EQ(query.keywords.size(), 1u);
    const double density = index.ListSize(query.keywords[0]) / n;
    EXPECT_GE(density, 0.001);
    EXPECT_LT(density, 0.1);
  }
}

}  // namespace
}  // namespace kspin
