// IR-tree Euclidean baseline tests: exact Euclidean kNN/top-k against
// brute-force scans, pseudo-document aggregation, degenerate inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "baselines/ir_tree.h"
#include "common/random.h"
#include "test_util.h"
#include "text/inverted_index.h"

namespace kspin {
namespace {

double Euclid(const Coordinate& a, const Coordinate& b) {
  const double dx = static_cast<double>(a.x) - b.x;
  const double dy = static_cast<double>(a.y) - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

class IrTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = testing::SmallRoadNetwork(81);
    store_ = testing::TestDocuments(graph_, 40, 0.25, 181);
    inverted_ = std::make_unique<InvertedIndex>(store_, 40);
    relevance_ = std::make_unique<RelevanceModel>(store_, *inverted_);
    tree_ = std::make_unique<IrTree>(graph_, store_, *relevance_,
                                     /*node_capacity=*/4);
  }

  bool Satisfies(ObjectId o, std::span<const KeywordId> keywords,
                 BooleanOp op) {
    for (KeywordId t : keywords) {
      const bool has = store_.Contains(o, t);
      if (op == BooleanOp::kDisjunctive && has) return true;
      if (op == BooleanOp::kConjunctive && !has) return false;
    }
    return op == BooleanOp::kConjunctive;
  }

  std::vector<double> BruteForceKnn(const Coordinate& q, std::uint32_t k,
                                    std::span<const KeywordId> keywords,
                                    BooleanOp op) {
    std::vector<double> distances;
    for (ObjectId o = 0; o < store_.NumSlots(); ++o) {
      if (!store_.IsLive(o) || !Satisfies(o, keywords, op)) continue;
      distances.push_back(Euclid(
          q, graph_.VertexCoordinate(store_.ObjectVertex(o))));
    }
    std::sort(distances.begin(), distances.end());
    if (distances.size() > k) distances.resize(k);
    return distances;
  }

  Graph graph_;
  DocumentStore store_;
  std::unique_ptr<InvertedIndex> inverted_;
  std::unique_ptr<RelevanceModel> relevance_;
  std::unique_ptr<IrTree> tree_;
};

TEST_F(IrTreeTest, BooleanKnnMatchesBruteForce) {
  Rng rng(82);
  for (int trial = 0; trial < 20; ++trial) {
    const Coordinate q = {
        static_cast<std::int32_t>(rng.UniformInt(0, 20000)),
        static_cast<std::int32_t>(rng.UniformInt(0, 20000))};
    std::vector<KeywordId> keywords = {
        static_cast<KeywordId>(rng.UniformInt(0, 39)),
        static_cast<KeywordId>(rng.UniformInt(0, 39))};
    for (BooleanOp op :
         {BooleanOp::kDisjunctive, BooleanOp::kConjunctive}) {
      const auto got = tree_->BooleanKnn(q, 5, keywords, op);
      const auto want = BruteForceKnn(q, 5, keywords, op);
      ASSERT_EQ(got.size(), want.size()) << "trial " << trial;
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i].distance, want[i], 1e-6)
            << "trial " << trial << " rank " << i;
        ASSERT_TRUE(Satisfies(got[i].object, keywords, op));
      }
    }
  }
}

TEST_F(IrTreeTest, TopKMatchesBruteForce) {
  Rng rng(83);
  for (int trial = 0; trial < 10; ++trial) {
    const Coordinate q = {
        static_cast<std::int32_t>(rng.UniformInt(0, 20000)),
        static_cast<std::int32_t>(rng.UniformInt(0, 20000))};
    std::vector<KeywordId> keywords = {
        static_cast<KeywordId>(rng.UniformInt(0, 20)),
        static_cast<KeywordId>(rng.UniformInt(0, 20))};
    const PreparedQuery prepared = relevance_->PrepareQuery(keywords);
    // Brute force scores.
    std::vector<double> scores;
    for (ObjectId o = 0; o < store_.NumSlots(); ++o) {
      if (!store_.IsLive(o)) continue;
      const double tr = relevance_->TextualRelevance(prepared, o);
      if (tr <= 0.0) continue;
      scores.push_back(
          Euclid(q, graph_.VertexCoordinate(store_.ObjectVertex(o))) / tr);
    }
    std::sort(scores.begin(), scores.end());
    if (scores.size() > 5) scores.resize(5);
    const auto got = tree_->TopK(q, 5, keywords);
    ASSERT_EQ(got.size(), scores.size()) << "trial " << trial;
    for (std::size_t i = 0; i < got.size(); ++i) {
      const double tr =
          relevance_->TextualRelevance(prepared, got[i].object);
      ASSERT_NEAR(got[i].distance / tr, scores[i], 1e-6)
          << "trial " << trial << " rank " << i;
    }
  }
}

TEST_F(IrTreeTest, EmptyAndDegenerateQueries) {
  const Coordinate q = {0, 0};
  const std::vector<KeywordId> keywords = {0};
  EXPECT_TRUE(tree_->BooleanKnn(q, 0, keywords, BooleanOp::kDisjunctive)
                  .empty());
  EXPECT_TRUE(tree_->BooleanKnn(q, 5, {}, BooleanOp::kDisjunctive).empty());
  EXPECT_TRUE(tree_->TopK(q, 0, keywords).empty());
}

TEST_F(IrTreeTest, EmptyStoreYieldsEmptyTree) {
  DocumentStore empty;
  InvertedIndex inverted(empty, 4);
  RelevanceModel relevance(empty, inverted);
  IrTree tree(graph_, empty, relevance);
  EXPECT_EQ(tree.NumObjects(), 0u);
  const std::vector<KeywordId> keywords = {0};
  EXPECT_TRUE(
      tree.BooleanKnn({0, 0}, 3, keywords, BooleanOp::kDisjunctive)
          .empty());
}

TEST_F(IrTreeTest, ValidatesInput) {
  EXPECT_THROW(IrTree(graph_, store_, *relevance_, 1),
               std::invalid_argument);
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 1);
  Graph no_coords = builder.Build();
  EXPECT_THROW(IrTree(no_coords, store_, *relevance_),
               std::invalid_argument);
}

}  // namespace
}  // namespace kspin
