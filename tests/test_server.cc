// Integration tests for the kspin serving subsystem: a real Server bound
// to a loopback ephemeral port, exercised through the blocking Client
// (and a raw socket for protocol-violation cases). Concurrent results are
// checked for exact equality against serial PoiService execution.
#include "server/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>

#include "routing/contraction_hierarchy.h"
#include "server/client.h"
#include "server/failover.h"
#include "server/retry.h"
#include "service/poi_service.h"
#include "service/synthetic_catalog.h"
#include "test_util.h"

namespace kspin::server {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  ServerTest()
      : graph_(testing::SmallRoadNetwork()), ch_(graph_), oracle_(ch_) {}

  /// Builds the service + catalogue and starts a server with `options`.
  void StartServer(ServerOptions options = {}) {
    service_ = std::make_unique<PoiService>(graph_, oracle_);
    SyntheticCatalogOptions catalog;
    catalog.num_pois = 150;
    catalog.num_keywords = 20;
    PopulateSyntheticCatalog(*service_, graph_, catalog);
    server_ = std::make_unique<Server>(*service_, options);
    server_->Start();
  }

  Client Connect() {
    Client client;
    client.Connect("127.0.0.1", server_->Port());
    return client;
  }

  Graph graph_;
  ContractionHierarchy ch_;
  ChOracle oracle_;
  std::unique_ptr<PoiService> service_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, PingAndStats) {
  StartServer();
  Client client = Connect();
  EXPECT_TRUE(client.Ping().ok());

  const auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.Value("connections_opened"), 1u);
  EXPECT_GE(stats.Value("opcode_ping"), 1u);
  EXPECT_EQ(stats.Value("requests_overloaded"), 0u);
}

TEST_F(ServerTest, LoopbackMatchesSerialExecution) {
  StartServer();

  struct Case {
    std::string query;
    VertexId from;
    std::uint32_t k;
  };
  const std::vector<Case> cases = {
      {"kw0", 3, 5},
      {"kw1 or kw2", 50, 8},
      {"kw0 and kw3", 120, 5},
      {"(kw1 and kw2) or kw4", 200, 10},
      {"kw5 and (kw0 or kw1)", 310, 6},
      {"nosuchkeyword", 10, 5},  // Unknown keyword: empty result, kOk.
  };

  // Serial ground truth, computed while the server is idle.
  std::vector<std::vector<PoiResult>> expected_bool;
  std::vector<std::vector<PoiResult>> expected_ranked;
  for (const Case& c : cases) {
    expected_bool.push_back(service_->Search(c.query, c.from, c.k));
    expected_ranked.push_back(service_->SearchRanked(c.query, c.from, c.k));
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Client client = Connect();
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t i = 0; i < cases.size(); ++i) {
          const Case& c = cases[i];
          for (const bool ranked : {false, true}) {
            const auto reply =
                client.Search(c.query, c.from, c.k, ranked);
            const auto& expected =
                ranked ? expected_ranked[i] : expected_bool[i];
            if (!reply.ok() || reply.results.size() != expected.size()) {
              ++mismatches;
              continue;
            }
            for (std::size_t j = 0; j < expected.size(); ++j) {
              if (reply.results[j].object != expected[j].id ||
                  reply.results[j].travel_time !=
                      expected[j].travel_time ||
                  reply.results[j].score != expected[j].score ||
                  reply.results[j].name != expected[j].name) {
                ++mismatches;
              }
            }
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);

  Client client = Connect();
  const auto stats = client.Stats();
  const std::uint64_t per_mode = kThreads * kRounds * cases.size();
  EXPECT_EQ(stats.Value("opcode_search_boolean"), per_mode);
  EXPECT_EQ(stats.Value("opcode_search_ranked"), per_mode);
  EXPECT_EQ(stats.Value("requests_ok"), 2 * per_mode);
  EXPECT_EQ(stats.Value("query_latency_count"), 2 * per_mode);
}

TEST_F(ServerTest, BadQuerySyntaxKeepsConnectionUsable) {
  StartServer();
  Client client = Connect();

  const auto bad = client.Search("((kw1", 3, 5);
  EXPECT_EQ(bad.status, StatusCode::kBadQuery);
  EXPECT_FALSE(bad.error.empty());

  // Application-level rejection, not a protocol error: the connection
  // must survive and serve the next request.
  const auto good = client.Search("kw0", 3, 5);
  EXPECT_TRUE(good.ok());
}

TEST_F(ServerTest, OutOfRangeVertexAndOversizedKRejected) {
  StartServer();
  Client client = Connect();

  const auto bad_vertex = client.Search(
      "kw0", static_cast<VertexId>(graph_.NumVertices()) + 10, 5);
  EXPECT_EQ(bad_vertex.status, StatusCode::kBadQuery);

  const auto bad_k = client.Search("kw0", 3, 1001);  // max_k default 1000.
  EXPECT_EQ(bad_k.status, StatusCode::kBadQuery);
}

TEST_F(ServerTest, ZeroCapacityQueueShedsQueriesButAnswersPing) {
  ServerOptions options;
  options.queue_capacity = 0;  // Admit nothing.
  StartServer(options);
  Client client = Connect();

  const auto reply = client.Search("kw0", 3, 5);
  EXPECT_EQ(reply.status, StatusCode::kOverloaded);

  // PING and STATS are answered on the I/O thread, bypassing admission:
  // the liveness probe must work precisely when the server is drowning.
  EXPECT_TRUE(client.Ping().ok());
  const auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.Value("requests_overloaded"), 1u);
}

TEST_F(ServerTest, ExpiredDeadlineDroppedAtDequeue) {
  ServerOptions options;
  options.test_dequeue_delay_ms = 30;  // Everything expires in the queue.
  StartServer(options);
  Client client = Connect();

  const auto reply = client.Search("kw0", 3, 5, false, /*deadline_ms=*/1);
  EXPECT_EQ(reply.status, StatusCode::kDeadlineExceeded);

  const auto stats = client.Stats();
  EXPECT_GE(stats.Value("requests_deadline_dropped"), 1u);
  EXPECT_EQ(stats.Value("requests_deadline_cancelled"), 0u);
}

TEST_F(ServerTest, ExpiredDeadlineCancelledCooperatively) {
  ServerOptions options;
  options.test_dequeue_delay_ms = 30;
  options.enforce_deadline_at_dequeue = false;  // Force the in-query path.
  StartServer(options);
  Client client = Connect();

  const auto reply = client.Search("kw0", 3, 5, false, /*deadline_ms=*/1);
  EXPECT_EQ(reply.status, StatusCode::kDeadlineExceeded);

  const auto stats = client.Stats();
  EXPECT_EQ(stats.Value("requests_deadline_dropped"), 0u);
  EXPECT_GE(stats.Value("requests_deadline_cancelled"), 1u);
}

TEST_F(ServerTest, NoDeadlineMeansNoExpiry) {
  ServerOptions options;
  options.test_dequeue_delay_ms = 10;
  StartServer(options);
  Client client = Connect();
  const auto reply = client.Search("kw0", 3, 5);  // deadline_ms = 0.
  EXPECT_TRUE(reply.ok());
}

TEST_F(ServerTest, UpdatesThroughServerVisibleToSearches) {
  StartServer();
  Client client = Connect();

  // A keyword no synthetic POI carries.
  const std::vector<std::string> keywords = {"uniquekw"};
  const auto added = client.AddPoi("newplace", 7, keywords);
  ASSERT_TRUE(added.ok());

  auto found = client.Search("uniquekw", 7, 3);
  ASSERT_TRUE(found.ok());
  ASSERT_EQ(found.results.size(), 1u);
  EXPECT_EQ(found.results[0].object, added.id);
  EXPECT_EQ(found.results[0].name, "newplace");
  EXPECT_EQ(found.results[0].travel_time, 0u);  // Same vertex.

  // Tag with another fresh keyword; searchable immediately.
  ASSERT_TRUE(client.TagPoi(added.id, "anotherkw").ok());
  found = client.Search("uniquekw and anotherkw", 7, 3);
  ASSERT_TRUE(found.ok());
  ASSERT_EQ(found.results.size(), 1u);

  ASSERT_TRUE(client.UntagPoi(added.id, "anotherkw").ok());
  found = client.Search("uniquekw and anotherkw", 7, 3);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(found.results.empty());

  ASSERT_TRUE(client.ClosePoi(added.id).ok());
  found = client.Search("uniquekw", 7, 3);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(found.results.empty());

  // Operating on a closed POI is a BAD_QUERY, not a crash.
  EXPECT_EQ(client.ClosePoi(added.id).status, StatusCode::kBadQuery);
  EXPECT_EQ(client.TagPoi(added.id, "x").status, StatusCode::kBadQuery);
}

TEST_F(ServerTest, IdempotencyCacheSizeOptionAndCountersWork) {
  // A deliberately tiny cache so eviction is observable through STATS.
  ServerOptions options;
  options.idempotency_cache_size = 2;
  StartServer(options);
  Client client = Connect();
  const std::vector<std::string> tags = {"idemkw"};

  // First keyed write misses; its retry hits and replays the original
  // result without applying twice.
  const auto first = client.InsertDoc(101, 3, "poi a", tags);
  ASSERT_TRUE(first.ok());
  const auto retry = client.InsertDoc(101, 3, "poi a", tags);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.sequence, first.sequence);
  EXPECT_EQ(retry.id, first.id);

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.Value("idempotency_cache_hits"), 1u);
  EXPECT_EQ(stats.Value("idempotency_cache_misses"), 1u);

  // Two more keys push 101 out of the size-2 cache: the next retry of it
  // re-applies as a fresh operation (a miss, a new object).
  ASSERT_TRUE(client.InsertDoc(102, 4, "poi b", tags).ok());
  ASSERT_TRUE(client.InsertDoc(103, 5, "poi c", tags).ok());
  const auto evicted = client.InsertDoc(101, 3, "poi a", tags);
  ASSERT_TRUE(evicted.ok());
  EXPECT_NE(evicted.id, first.id);

  stats = client.Stats();
  EXPECT_EQ(stats.Value("idempotency_cache_hits"), 1u);
  EXPECT_EQ(stats.Value("idempotency_cache_misses"), 4u);

  // Key 0 means "no token": it never touches the cache or its counters.
  ASSERT_TRUE(client.InsertDoc(0, 6, "poi d", tags).ok());
  stats = client.Stats();
  EXPECT_EQ(stats.Value("idempotency_cache_hits"), 1u);
  EXPECT_EQ(stats.Value("idempotency_cache_misses"), 4u);
}

TEST_F(ServerTest, ConcurrentSearchesDuringUpdatesStayConsistent) {
  StartServer();

  // Readers hammer a stable keyword while a writer adds/closes POIs
  // carrying a different one. Every reply must be kOk and every result
  // list internally consistent (sorted by travel time).
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      Client client = Connect();
      while (!stop.load(std::memory_order_relaxed)) {
        const auto reply = client.Search("kw0 or kw1", 40, 6);
        if (!reply.ok()) {
          ++failures;
          break;
        }
        for (std::size_t i = 1; i < reply.results.size(); ++i) {
          if (reply.results[i - 1].travel_time >
              reply.results[i].travel_time) {
            ++failures;
          }
        }
      }
    });
  }

  Client writer = Connect();
  const std::vector<std::string> churn_kw = {"churnkw"};
  for (int round = 0; round < 20; ++round) {
    const auto added = writer.AddPoi("churn", 11, churn_kw);
    if (!added.ok() || !writer.ClosePoi(added.id).ok()) {
      ++failures;
      break;
    }
  }
  stop = true;
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServerTest, GarbageStreamGetsErrorFrameThenClose) {
  StartServer();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->Port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);

  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_GT(::write(fd, garbage, sizeof garbage - 1), 0);

  // The server must answer with one kError frame, then close.
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[256];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) break;
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  ::close(fd);

  FrameHeader header;
  std::size_t frame_size = 0;
  ASSERT_EQ(TryDecodeFrame(bytes, &header, &frame_size),
            DecodeResult::kFrame);
  EXPECT_EQ(header.opcode, Opcode::kError);
  EXPECT_EQ(frame_size, bytes.size());  // Nothing after the error frame.

  PayloadReader reader(std::span<const std::uint8_t>(
      bytes.data() + kHeaderSize, header.payload_size));
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()),
            StatusCode::kMalformedPayload);
}

TEST_F(ServerTest, WrongVersionGetsUnsupportedErrorWithRequestId) {
  StartServer();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->Port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);

  FrameHeader ping;
  ping.opcode = Opcode::kPing;
  ping.request_id = 424242;
  auto frame = EncodeFrame(ping, {});
  frame[4] = kProtocolVersion + 1;
  ASSERT_EQ(::write(fd, frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));

  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[256];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) break;
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  ::close(fd);

  FrameHeader header;
  std::size_t frame_size = 0;
  ASSERT_EQ(TryDecodeFrame(bytes, &header, &frame_size),
            DecodeResult::kFrame);
  EXPECT_EQ(header.opcode, Opcode::kError);
  EXPECT_EQ(header.request_id, 424242u);  // Echoed despite the bad version.

  PayloadReader reader(std::span<const std::uint8_t>(
      bytes.data() + kHeaderSize, header.payload_size));
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kUnsupported);
}

TEST_F(ServerTest, StopDrainsAdmittedRequests) {
  ServerOptions options;
  options.num_workers = 2;
  StartServer(options);

  // Queue a burst, then stop the server while replies are in flight.
  // Graceful shutdown promises every admitted request still gets its
  // response before the connection closes.
  Client client = Connect();
  std::atomic<int> answered{0};
  std::thread burst([&] {
    for (int i = 0; i < 30; ++i) {
      const auto reply = client.Search("kw0 or kw2", 40, 5);
      if (reply.ok()) ++answered;
    }
  });
  burst.join();
  server_->Stop();
  EXPECT_EQ(answered.load(), 30);
}

TEST_F(ServerTest, StopIsIdempotent) {
  StartServer();
  server_->Stop();
  server_->Stop();
}

// ---------------------------------------------------------------------
// Persistence over the wire (SNAPSHOT / RELOAD) and connection hardening.

/// Fresh scratch directory under the test temp root.
std::string ScratchDir(const std::string& tag) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("kspin_server_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Polls `predicate` until it holds or ~5 s elapse.
bool WaitFor(const std::function<bool()>& predicate) {
  for (int i = 0; i < 500; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

std::vector<std::pair<ObjectId, Distance>> Ids(
    const Client::SearchReply& reply) {
  std::vector<std::pair<ObjectId, Distance>> out;
  for (const WireResult& r : reply.results) {
    out.emplace_back(r.object, r.travel_time);
  }
  return out;
}

TEST_F(ServerTest, SnapshotAndReloadRestoreStateOverWire) {
  ServerOptions options;
  options.snapshot.dir = ScratchDir("wire_reload");
  StartServer(options);
  Client client = Connect();

  const auto before = client.Search("kw3 or kw5", 40, 6);
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(before.results.empty());

  const auto snap = client.Snapshot();
  ASSERT_TRUE(snap.ok()) << snap.error;
  EXPECT_EQ(snap.sequence, 1u);
  EXPECT_TRUE(std::filesystem::exists(snap.path)) << snap.path;

  // Mutate the serving state past recognition: close every result.
  for (const WireResult& r : before.results) {
    ASSERT_TRUE(client.ClosePoi(r.object).ok());
  }
  const auto mutated = client.Search("kw3 or kw5", 40, 6);
  ASSERT_TRUE(mutated.ok());
  EXPECT_NE(Ids(mutated), Ids(before));

  // RELOAD must serve the snapshot's answers again, byte for byte.
  const auto reload = client.Reload();
  ASSERT_TRUE(reload.ok()) << reload.error;
  EXPECT_EQ(reload.sequence, 1u);
  const auto after = client.Search("kw3 or kw5", 40, 6);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(Ids(after), Ids(before));

  EXPECT_GE(client.Stats().Value("snapshots_written"), 1u);
  EXPECT_GE(client.Stats().Value("reloads_ok"), 1u);
}

TEST_F(ServerTest, SnapshotAndReloadRejectedWithoutSnapshotDir) {
  StartServer();  // No snapshot.dir configured.
  Client client = Connect();

  const auto snap = client.Snapshot();
  EXPECT_EQ(snap.status, StatusCode::kBadQuery);
  const auto reload = client.Reload();
  EXPECT_EQ(reload.status, StatusCode::kBadQuery);

  // The connection stays usable after both rejections.
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServerTest, PeriodicSnapshotsWrittenAndPruned) {
  ServerOptions options;
  options.snapshot.dir = ScratchDir("periodic");
  options.snapshot.period_ms = 25;
  options.snapshot.keep = 2;
  StartServer(options);

  ASSERT_TRUE(WaitFor([&] {
    return server_->Metrics().snapshots_written.load() >= 3;
  }));
  server_->Stop();  // Quiesce the snapshot thread before counting files.

  std::size_t files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(options.snapshot.dir)) {
    if (entry.path().extension() == ".snap") ++files;
  }
  EXPECT_GE(files, 1u);
  EXPECT_LE(files, options.snapshot.keep);
}

TEST_F(ServerTest, IdleConnectionsReaped) {
  ServerOptions options;
  options.idle_timeout_ms = 100;
  StartServer(options);

  Client client = Connect();
  ASSERT_TRUE(client.Ping().ok());
  // Go silent; the I/O thread must reap us within a few poll ticks.
  ASSERT_TRUE(WaitFor([&] {
    return server_->Metrics().connections_reaped_idle.load() >= 1;
  }));
  EXPECT_THROW(
      {
        client.Ping();
        client.Ping();  // First call may succeed on buffered bytes.
      },
      ClientError);
}

TEST_F(ServerTest, SlowLorisPartialFrameReaped) {
  ServerOptions options;
  options.idle_timeout_ms = 0;  // Isolate the read-deadline path.
  options.read_deadline_ms = 100;
  StartServer(options);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->Port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);

  // Dribble 4 bytes of a valid frame header, then stall forever.
  FrameHeader ping;
  ping.opcode = Opcode::kPing;
  const auto frame = EncodeFrame(ping, {});
  ASSERT_EQ(::write(fd, frame.data(), 4), 4);

  ASSERT_TRUE(WaitFor([&] {
    return server_->Metrics().connections_reaped_slow.load() >= 1;
  }));
  std::uint8_t byte = 0;
  EXPECT_EQ(::read(fd, &byte, 1), 0);  // Server closed on us.
  ::close(fd);
}

TEST_F(ServerTest, BackpressureOverflowClosesConnection) {
  ServerOptions options;
  options.idle_timeout_ms = 0;
  options.max_write_queue_bytes = 1;  // Any queued response overflows.
  StartServer(options);

  Client client = Connect();
  try {
    client.Ping();  // The reply may or may not flush before the reap.
  } catch (const ClientError&) {
  }
  ASSERT_TRUE(WaitFor([&] {
    return server_->Metrics().connections_reaped_backpressure.load() >= 1;
  }));
}

// ---------------------------------------------------------------------
// RetryingClient: reconnects, backoff, idempotency.

TEST_F(ServerTest, RetryingClientRetriesOverloadedSearches) {
  ServerOptions options;
  options.queue_capacity = 0;  // Every search is shed at admission.
  StartServer(options);

  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryingClient client("127.0.0.1", server_->Port(), policy);
  std::vector<std::uint32_t> sleeps;
  client.SetSleepFunction([&](std::uint32_t ms) { sleeps.push_back(ms); });

  const auto reply = client.Search("kw0", 40, 5);
  EXPECT_EQ(reply.status, StatusCode::kOverloaded);
  EXPECT_EQ(client.LastAttempts(), 3u);
  // Jittered exponential backoff: sleep i is uniform in [base/2, base]
  // with base = initial * multiplier^i.
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_GE(sleeps[0], 25u);
  EXPECT_LE(sleeps[0], 50u);
  EXPECT_GE(sleeps[1], 50u);
  EXPECT_LE(sleeps[1], 100u);

  // PING bypasses the admission queue, so it succeeds first try.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_EQ(client.LastAttempts(), 1u);
}

TEST_F(ServerTest, RetryingClientReconnectsAfterServerRestart) {
  StartServer();
  const std::uint16_t port = server_->Port();

  RetryPolicy policy;
  policy.max_attempts = 5;
  RetryingClient client("127.0.0.1", port, policy);
  client.SetSleepFunction([](std::uint32_t) {});
  ASSERT_TRUE(client.Ping().ok());

  server_->Stop();
  ServerOptions options;
  options.port = port;
  Server second(*service_, options);
  second.Start();

  // The stale connection fails mid-request; an idempotent search must
  // transparently reconnect and succeed.
  const auto reply = client.Search("kw0 or kw1", 40, 5);
  EXPECT_TRUE(reply.ok()) << reply.error;
  EXPECT_GE(client.LastAttempts(), 2u);
  second.Stop();
}

TEST_F(ServerTest, NonIdempotentUpdateNotRetriedAfterDisconnect) {
  StartServer();
  RetryPolicy policy;
  policy.max_attempts = 5;
  RetryingClient client("127.0.0.1", server_->Port(), policy);
  client.SetSleepFunction([](std::uint32_t) {});
  ASSERT_TRUE(client.Ping().ok());

  server_->Stop();  // Connection is now dead; no replacement server.

  // A torn AddPoi may already be applied server-side, so the wrapper
  // must surface the transport error on the FIRST attempt, not re-send.
  const std::vector<std::string> keywords = {"kw0"};
  EXPECT_THROW(client.AddPoi("new poi", 7, keywords), ClientError);
  EXPECT_EQ(client.LastAttempts(), 1u);
}

TEST_F(ServerTest, RetryBudgetBoundsTotalBackoff) {
  ServerOptions options;
  options.queue_capacity = 0;  // Every search is shed -> retried.
  StartServer(options);

  RetryPolicy policy;
  policy.max_attempts = 50;  // Far more than the budget can fund.
  policy.initial_backoff_ms = 40;
  policy.multiplier = 1.0;  // Every backoff in [20, 40] ms.
  policy.max_total_ms = 100;
  RetryingClient client("127.0.0.1", server_->Port(), policy);
  std::uint64_t total_slept = 0;
  client.SetSleepFunction([&](std::uint32_t ms) { total_slept += ms; });

  const auto reply = client.Search("kw0", 40, 5);
  EXPECT_EQ(reply.status, StatusCode::kOverloaded);
  // The budget stops retrying long before max_attempts: with >= 20 ms per
  // backoff and a 100 ms budget, at most 5 sleeps fit.
  EXPECT_LT(client.LastAttempts(), 10u);
  EXPECT_GE(client.LastAttempts(), 2u);
  EXPECT_LE(total_slept, policy.max_total_ms);
}

TEST_F(ServerTest, RetryBudgetClampsRequestDeadline) {
  ServerOptions options;
  options.test_dequeue_delay_ms = 30;  // Every request waits 30 ms queued.
  StartServer(options);

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.max_total_ms = 5;  // Budget far below the queue delay.
  RetryingClient client("127.0.0.1", server_->Port(), policy);
  client.SetSleepFunction([](std::uint32_t) {});

  // deadline_ms 0 normally means "no deadline", but under a budget the
  // sent deadline is the remaining budget — so the server expires the
  // request at dequeue instead of running it past the caller's patience.
  const auto reply = client.Search("kw0", 40, 5, false, 0);
  EXPECT_EQ(reply.status, StatusCode::kDeadlineExceeded);
}

TEST_F(ServerTest, RetryBudgetZeroKeepsUnlimitedDeadline) {
  ServerOptions options;
  options.test_dequeue_delay_ms = 30;
  StartServer(options);

  RetryPolicy policy;  // max_total_ms = 0: no budget.
  RetryingClient client("127.0.0.1", server_->Port(), policy);
  client.SetSleepFunction([](std::uint32_t) {});
  const auto reply = client.Search("kw0", 40, 5, false, 0);
  EXPECT_TRUE(reply.ok()) << reply.error;
}

TEST_F(ServerTest, AcceptErrorMetricStartsAtZero) {
  StartServer();
  Client client = Connect();
  const auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.Value("accept_errors"), 0u);
}

// ---------------------------------------------------------------------
// Observability: engine counters, v2 STATS histograms, METRICS text,
// v1 compatibility, and tracing (docs/observability.md).

TEST_F(ServerTest, StatsCarryEngineCountersAndHistograms) {
  StartServer();
  Client client = Connect();
  ASSERT_TRUE(client.Search("kw0 or kw1", 10, 5).ok());
  ASSERT_TRUE(client.Search("kw2", 20, 3, /*ranked=*/true).ok());

  const auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  // Engine counters moved: the searches above popped candidates and paid
  // exact distances.
  EXPECT_GT(stats.Value("engine_heap_pops"), 0u);
  EXPECT_GT(stats.Value("engine_distance_computations"), 0u);
  EXPECT_GT(stats.Value("engine_results_returned"), 0u);
  // fp = distance computations minus results, so ndc >= both.
  EXPECT_GE(stats.Value("engine_distance_computations"),
            stats.Value("engine_false_positive_distances"));
  EXPECT_GE(stats.Value("engine_distance_computations"),
            stats.Value("engine_results_returned"));

  // Protocol v2: raw histogram buckets ride along with the pairs.
  ASSERT_EQ(stats.histograms.size(), 3u);
  EXPECT_EQ(stats.histograms[0].name, "query_latency_us");
  EXPECT_EQ(stats.histograms[0].count, 2u);
  std::uint64_t total = 0;
  for (const std::uint64_t b : stats.histograms[0].buckets) total += b;
  EXPECT_EQ(total, stats.histograms[0].count);
  EXPECT_EQ(stats.histograms[1].name, "update_latency_us");
  EXPECT_EQ(stats.histograms[1].count, 0u);
  // Queue sojourn histogram: one entry per admitted request.
  EXPECT_EQ(stats.histograms[2].name, "admission_sojourn_us");
  EXPECT_EQ(stats.histograms[2].count, 2u);
  // The flat summary keys derive from the same snapshot.
  EXPECT_EQ(stats.Value("query_latency_count"), 2u);
}

TEST_F(ServerTest, MetricsReturnsPrometheusTextThatMovesWithTraffic) {
  StartServer();
  Client client = Connect();
  ASSERT_TRUE(client.Search("kw0 or kw1", 10, 5).ok());

  const auto first = client.Metrics();
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_NE(first.text.find("# TYPE kspin_requests_ok counter\n"),
            std::string::npos);
  EXPECT_NE(first.text.find("kspin_engine_distance_computations "),
            std::string::npos);
  EXPECT_NE(first.text.find("# TYPE kspin_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(first.text.find("# TYPE kspin_replication_lag_ms gauge\n"),
            std::string::npos);
  EXPECT_NE(first.text.find("# TYPE kspin_query_latency_us histogram\n"),
            std::string::npos);
  EXPECT_NE(first.text.find("kspin_query_latency_us_bucket{le=\"+Inf\"} "),
            std::string::npos);
  EXPECT_NE(first.text.find("kspin_query_latency_us_count 1\n"),
            std::string::npos);

  // A counter parsed out of one scrape must be monotone across scrapes.
  const auto parse = [](const std::string& text, const std::string& name) {
    const std::size_t pos = text.find("\n" + name + " ");
    EXPECT_NE(pos, std::string::npos) << name;
    return pos == std::string::npos
               ? std::uint64_t{0}
               : std::strtoull(text.c_str() + pos + name.size() + 2,
                               nullptr, 10);
  };
  const std::uint64_t before =
      parse(first.text, "kspin_engine_distance_computations");
  EXPECT_GT(before, 0u);
  ASSERT_TRUE(client.Search("kw0 or kw1", 10, 5).ok());
  const auto second = client.Metrics();
  ASSERT_TRUE(second.ok());
  EXPECT_GT(parse(second.text, "kspin_engine_distance_computations"),
            before);
}

TEST_F(ServerTest, V1StatsRequestGetsPairsOnlyBody) {
  StartServer();
  Client warm = Connect();
  ASSERT_TRUE(warm.Search("kw0", 10, 3).ok());  // Counters move first.

  // A protocol-1 client asks for STATS: the response must echo version 1
  // and carry a body its strict (pairs-only) decoder fully consumes.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->Port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  FrameHeader request;
  request.opcode = Opcode::kStats;
  request.request_id = 777;
  auto frame = EncodeFrame(request, {});
  frame[4] = 1;  // Downgrade to protocol version 1.
  ASSERT_EQ(::write(fd, frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));

  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[4096];
  FrameHeader header;
  std::size_t frame_size = 0;
  while (TryDecodeFrame(bytes, &header, &frame_size) ==
         DecodeResult::kNeedMore) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    ASSERT_GT(n, 0);
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  ::close(fd);
  ASSERT_EQ(TryDecodeFrame(bytes, &header, &frame_size),
            DecodeResult::kFrame);
  EXPECT_EQ(header.opcode, Opcode::kStats);
  EXPECT_EQ(header.request_id, 777u);
  EXPECT_EQ(header.version, 1);  // Echoed, not upgraded.

  PayloadReader reader(std::span<const std::uint8_t>(
      bytes.data() + kHeaderSize, header.payload_size));
  EXPECT_EQ(static_cast<StatusCode>(reader.U8()), StatusCode::kOk);
  std::vector<std::pair<std::string, std::uint64_t>> pairs;
  ASSERT_TRUE(DecodeStatsResponse(reader, &pairs));
  EXPECT_TRUE(reader.Finished());  // Pairs only: no v2 histogram section.
  EXPECT_FALSE(pairs.empty());
}

TEST_F(ServerTest, TraceFileRecordsExecutedSearches) {
  ServerOptions options;
  options.trace_path = ScratchDir("trace") + "/trace.jsonl";
  StartServer(options);
  Client client = Connect();
  ASSERT_TRUE(client.Search("kw0 or kw1", 10, 5).ok());
  ASSERT_TRUE(client.Search("kw2", 20, 3, /*ranked=*/true).ok());
  ASSERT_TRUE(client.Ping().ok());  // Non-queries must not be traced.

  EXPECT_TRUE(WaitFor([&] {
    return server_->Metrics().traces_emitted.load() >= 2;
  }));
  EXPECT_EQ(server_->Metrics().traces_emitted.load(), 2u);

  std::ifstream in(options.trace_path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"opcode\":\"search_boolean\""),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"query\":\"kw0 or kw1\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"status\":\"OK\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"distance_computations\":"), std::string::npos);
  EXPECT_NE(lines[1].find("\"opcode\":\"search_ranked\""),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Overload control and graceful degradation (docs/protocol.md "Overload
// control & degradation"): admission-time expiry, per-client rate limits,
// the RETRY_AFTER hint, brownout, and failover around shedding nodes.

TEST_F(ServerTest, ExpiredDeadlineRejectedAtAdmission) {
  ServerOptions options;
  options.test_admission_delay_ms = 30;  // Deadline passes pre-admission.
  StartServer(options);
  Client client = Connect();

  const auto reply = client.Search("kw0", 3, 5, false, /*deadline_ms=*/1);
  EXPECT_EQ(reply.status, StatusCode::kDeadlineExceeded);

  // Refused at the door: counted as a deadline rejection, not an
  // overload shed, and never as a dequeue-time drop.
  const auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.Value("requests_deadline_rejected"), 1u);
  EXPECT_EQ(stats.Value("requests_deadline_dropped"), 0u);
  EXPECT_EQ(stats.Value("requests_overloaded"), 0u);
}

TEST_F(ServerTest, PerClientRateLimitShedsOnlyTheNoisyConnection) {
  ServerOptions options;
  options.overload.per_client_qps = 1.0;
  options.overload.per_client_burst = 2.0;
  options.overload.retry_after_ms = 321;
  StartServer(options);
  Client noisy = Connect();

  // The bucket starts with `burst` tokens; the burst beyond that is
  // shed inline with the configured RETRY_AFTER hint.
  int ok = 0, limited = 0;
  for (int i = 0; i < 8; ++i) {
    const auto reply = noisy.Search("kw0", 3, 5);
    if (reply.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(reply.status, StatusCode::kOverloaded);
      EXPECT_EQ(reply.error, "rate limited");
      EXPECT_EQ(reply.retry_after_ms, 321u);
      ++limited;
    }
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(limited, 6);

  // The limit is per connection: a fresh client has its own bucket.
  Client quiet = Connect();
  EXPECT_TRUE(quiet.Search("kw0", 3, 5).ok());

  const auto stats = quiet.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.Value("requests_rate_limited"), 6u);
  EXPECT_EQ(stats.Value("requests_overloaded"), 0u);
}

TEST_F(ServerTest, RetryingClientHonorsRetryAfterHint) {
  ServerOptions options;
  options.queue_capacity = 0;  // Every search shed at admission.
  options.overload.retry_after_ms = 777;
  StartServer(options);

  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryingClient client("127.0.0.1", server_->Port(), policy);
  std::vector<std::uint32_t> sleeps;
  client.SetSleepFunction([&](std::uint32_t ms) { sleeps.push_back(ms); });

  const auto reply = client.Search("kw0", 40, 5);
  EXPECT_EQ(reply.status, StatusCode::kOverloaded);
  EXPECT_EQ(reply.retry_after_ms, 777u);
  // The hint (777 ms) dominates the jittered backoff (<= 100 ms here),
  // so every inter-attempt sleep is exactly the server's ask.
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(sleeps[0], 777u);
  EXPECT_EQ(sleeps[1], 777u);
}

TEST_F(ServerTest, BrownoutDegradesSearchesAndRecordsEpisode) {
  ServerOptions options;
  options.overload.latency_slo_ms = 1;     // Violated by every query:
  options.test_dequeue_delay_ms = 5;       // end-to-end latency >= 5 ms.
  options.overload.tick_interval_ms = 10;
  options.overload.brownout_enter_ticks = 1;
  options.overload.brownout_exit_ticks = 1000;  // Stay browned out.
  options.overload.brownout_max_k = 2;
  StartServer(options);
  Client client = Connect();

  // Keep slow queries flowing until a controller tick observes the SLO
  // violation and flips brownout on; replies then carry DEGRADED.
  Client::SearchReply degraded;
  ASSERT_TRUE(WaitFor([&] {
    degraded = client.Search("kw0 or kw1", 10, 5);
    return degraded.ok() && degraded.degraded;
  }));
  // Brownout clamps k to brownout_max_k.
  EXPECT_LE(degraded.results.size(), 2u);

  const auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.Value("brownout_entries"), 1u);
  EXPECT_GE(stats.Value("requests_degraded"), 1u);
  EXPECT_EQ(stats.Value("overload_state"), 2u);  // 2 = brownout.
  // The AIMD limiter has been decreasing through the violating ticks.
  EXPECT_LT(stats.Value("admission_limit"), options.queue_capacity);
}

TEST_F(ServerTest, HealthySearchesAreNotDegraded) {
  ServerOptions options;
  options.overload.latency_slo_ms = 1000;  // Never violated.
  StartServer(options);
  Client client = Connect();
  const auto reply = client.Search("kw0", 10, 5);
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply.degraded);
  const auto stats = client.Stats();
  EXPECT_EQ(stats.Value("overload_state"), 0u);
  EXPECT_EQ(stats.Value("brownout_entries"), 0u);
}

TEST_F(ServerTest, FailoverClientRoutesReadsAroundSheddingNode) {
  // Endpoint 0 sheds every search at admission; endpoint 1 is healthy.
  ServerOptions shedding;
  shedding.queue_capacity = 0;
  shedding.overload.retry_after_ms = 99;
  StartServer(shedding);

  PoiService healthy_service(graph_, oracle_);
  SyntheticCatalogOptions catalog;
  catalog.num_pois = 150;
  catalog.num_keywords = 20;
  PopulateSyntheticCatalog(healthy_service, graph_, catalog);
  Server healthy(healthy_service);
  healthy.Start();

  RetryPolicy policy;
  policy.max_attempts = 1;  // Isolate failover from per-endpoint retries.
  FailoverClient client({{"127.0.0.1", server_->Port()},
                         {"127.0.0.1", healthy.Port()}},
                        policy);
  client.SetSleepFunction([](std::uint32_t) {});

  // Reads re-route around the shed to the healthy endpoint; the shed
  // itself reached endpoint 0 (its counter moved).
  const auto first = client.Search("kw0", 10, 5);
  EXPECT_TRUE(first.ok()) << first.error;
  EXPECT_EQ(client.LastEndpoint(), 1u);
  EXPECT_GE(server_->Metrics().requests_overloaded.load(), 1u);

  // Reads now stick to the endpoint that served (no shed round-trip per
  // read) — but the shedding node was never marked unhealthy: when the
  // sticky endpoint dies, endpoint 0 is tried again and its in-band shed
  // reply surfaces instead of a transport error.
  healthy.Stop();
  const auto after = client.Search("kw0", 10, 5);
  EXPECT_EQ(after.status, StatusCode::kOverloaded);
  EXPECT_EQ(after.retry_after_ms, 99u);
}

TEST_F(ServerTest, FailoverClientSurfacesOverloadWhenAllEndpointsShed) {
  ServerOptions options;
  options.queue_capacity = 0;
  options.overload.retry_after_ms = 444;
  StartServer(options);

  RetryPolicy policy;
  policy.max_attempts = 1;
  FailoverClient client({{"127.0.0.1", server_->Port()}}, policy);
  client.SetSleepFunction([](std::uint32_t) {});

  // No endpoint could serve: the shed reply (with its RETRY_AFTER hint)
  // surfaces instead of a transport error.
  const auto reply = client.Search("kw0", 10, 5);
  EXPECT_EQ(reply.status, StatusCode::kOverloaded);
  EXPECT_EQ(reply.retry_after_ms, 444u);
}

TEST_F(ServerTest, SlowQueryThresholdCountsSlowSearches) {
  ServerOptions options;
  options.slow_query_threshold_ms = 1;
  options.test_dequeue_delay_ms = 10;  // Every search waits >= 10 ms.
  StartServer(options);
  Client client = Connect();
  ASSERT_TRUE(client.Search("kw0", 10, 3).ok());
  const auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.Value("slow_queries"), 1u);
  // No trace file configured: slow queries log to stderr only.
  EXPECT_EQ(stats.Value("traces_emitted"), 0u);
}

}  // namespace
}  // namespace kspin::server
