// Keyword-free kNN engine tests: exactness against brute force on random
// object sets, through lazy insertions, deletions, and rebuilds.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "kspin/knn_engine.h"
#include "routing/alt.h"
#include "routing/contraction_hierarchy.h"
#include "routing/dijkstra.h"
#include "test_util.h"

namespace kspin {
namespace {

class KnnEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = testing::SmallRoadNetwork(91);
    ch_ = std::make_unique<ContractionHierarchy>(graph_);
    oracle_ = std::make_unique<ChOracle>(*ch_);
    alt_ = std::make_unique<AltIndex>(graph_, 8);
    Rng rng(191);
    auto sample = rng.SampleWithoutReplacement(
        static_cast<std::uint32_t>(graph_.NumVertices()), 40);
    for (std::uint32_t i = 0; i < sample.size(); ++i) {
      objects_.push_back({i, sample[i]});
    }
    engine_ = std::make_unique<KnnEngine>(graph_, objects_, *alt_, *oracle_);
  }

  // Brute-force k nearest over the tracked live object list.
  std::vector<Distance> BruteForce(VertexId q, std::uint32_t k) {
    DijkstraWorkspace workspace(graph_.NumVertices());
    const auto& dist = workspace.SingleSource(graph_, q);
    std::vector<Distance> all;
    for (const SiteObject& o : objects_) all.push_back(dist[o.vertex]);
    std::sort(all.begin(), all.end());
    if (all.size() > k) all.resize(k);
    return all;
  }

  void ExpectExact(std::uint32_t k) {
    for (VertexId q = 0; q < graph_.NumVertices(); q += 41) {
      const auto got = engine_->Knn(q, k);
      const auto want = BruteForce(q, k);
      ASSERT_EQ(got.size(), want.size()) << "q=" << q;
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].distance, want[i]) << "q=" << q << " rank " << i;
      }
    }
  }

  Graph graph_;
  std::unique_ptr<ContractionHierarchy> ch_;
  std::unique_ptr<ChOracle> oracle_;
  std::unique_ptr<AltIndex> alt_;
  std::vector<SiteObject> objects_;
  std::unique_ptr<KnnEngine> engine_;
};

TEST_F(KnnEngineTest, ExactForVariousK) {
  for (std::uint32_t k : {1u, 3u, 10u, 25u, 100u}) {
    ExpectExact(k);
  }
}

TEST_F(KnnEngineTest, AscendingDistancesAndLiveObjectsOnly) {
  const auto results = engine_->Knn(7, 10);
  ASSERT_EQ(results.size(), 10u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i].distance, results[i - 1].distance);
  }
}

TEST_F(KnnEngineTest, StaysExactThroughInsertions) {
  Rng rng(192);
  for (std::uint32_t i = 0; i < 12; ++i) {
    const VertexId v = static_cast<VertexId>(
        rng.UniformInt(0, graph_.NumVertices() - 1));
    const ObjectId id = 1000 + i;
    engine_->Insert(id, v);
    objects_.push_back({id, v});
    ExpectExact(5);
  }
}

TEST_F(KnnEngineTest, StaysExactThroughDeletions) {
  for (int i = 0; i < 10; ++i) {
    engine_->Delete(objects_.back().object);
    objects_.pop_back();
    ExpectExact(5);
  }
}

TEST_F(KnnEngineTest, MaintainRebuildsWhenBudgetExhausted) {
  Rng rng(193);
  ApxNvdOptions options;
  options.lazy_insert_threshold = 4;
  KnnEngine engine(graph_, objects_, *alt_, *oracle_, options);
  EXPECT_FALSE(engine.MaintainIndex());
  for (std::uint32_t i = 0; i < 8; ++i) {
    engine.Insert(2000 + i, static_cast<VertexId>(rng.UniformInt(
                                0, graph_.NumVertices() - 1)));
  }
  EXPECT_TRUE(engine.MaintainIndex());
  EXPECT_FALSE(engine.MaintainIndex());
  EXPECT_EQ(engine.NumLiveObjects(), objects_.size() + 8);
}

TEST_F(KnnEngineTest, KnnWorkIsLocalForSmallK) {
  QueryStats stats;
  engine_->Knn(3, 1, &stats);
  // 1NN should touch a handful of candidates, not the whole object set.
  EXPECT_LT(stats.candidates_extracted, objects_.size() / 2);
  EXPECT_GT(stats.heaps_created, 0u);
}

TEST_F(KnnEngineTest, KBeyondPopulationReturnsAll) {
  const auto results = engine_->Knn(0, 500);
  EXPECT_EQ(results.size(), objects_.size());
}

}  // namespace
}  // namespace kspin
