// Unit tests for the CSR graph, builder, components, DIMACS I/O and the
// synthetic road-network generator.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "graph/dimacs_io.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/road_network_generator.h"
#include "test_util.h"

namespace kspin {
namespace {

TEST(GraphBuilder, BuildsCsrWithBothArcDirections) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1, 5);
  builder.AddEdge(1, 2, 7);
  Graph graph = builder.Build();
  EXPECT_EQ(graph.NumVertices(), 3u);
  EXPECT_EQ(graph.NumEdges(), 2u);
  EXPECT_EQ(graph.NumArcs(), 4u);
  EXPECT_EQ(graph.EdgeWeight(0, 1), 5u);
  EXPECT_EQ(graph.EdgeWeight(1, 0), 5u);
  EXPECT_EQ(graph.EdgeWeight(2, 1), 7u);
  EXPECT_EQ(graph.EdgeWeight(0, 2), kInfDistance);
}

TEST(GraphBuilder, CollapsesParallelEdgesToMinimumWeight) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 9);
  builder.AddEdge(1, 0, 4);
  builder.AddEdge(0, 1, 6);
  Graph graph = builder.Build();
  EXPECT_EQ(graph.NumEdges(), 1u);
  EXPECT_EQ(graph.EdgeWeight(0, 1), 4u);
}

TEST(GraphBuilder, RejectsInvalidEdges) {
  GraphBuilder builder(2);
  EXPECT_THROW(builder.AddEdge(0, 2, 1), std::invalid_argument);
  EXPECT_THROW(builder.AddEdge(0, 0, 1), std::invalid_argument);
  EXPECT_THROW(builder.AddEdge(0, 1, 0), std::invalid_argument);
}

TEST(GraphBuilder, RejectsCoordinateSizeMismatch) {
  GraphBuilder builder(3);
  EXPECT_THROW(builder.SetCoordinates({{0, 0}, {1, 1}}),
               std::invalid_argument);
}

TEST(GraphBuilder, DegreeAndNeighborsMatch) {
  Graph graph = testing::TinyGrid();
  EXPECT_EQ(graph.Degree(4), 4u);
  std::set<VertexId> heads;
  for (const Arc& arc : graph.Neighbors(4)) heads.insert(arc.head);
  EXPECT_EQ(heads, (std::set<VertexId>{1, 3, 5, 7}));
}

TEST(ConnectedComponents, SingleComponentGraph) {
  Graph graph = testing::TinyGrid();
  EXPECT_TRUE(IsConnected(graph));
  std::size_t count = 0;
  auto component = ConnectedComponents(graph, &count);
  EXPECT_EQ(count, 1u);
  for (auto c : component) EXPECT_EQ(c, 0u);
}

TEST(ConnectedComponents, DisconnectedPieces) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 1, 1);
  builder.AddEdge(2, 3, 1);
  Graph graph = builder.Build();
  EXPECT_FALSE(IsConnected(graph));
  std::size_t count = 0;
  ConnectedComponents(graph, &count);
  EXPECT_EQ(count, 3u);  // {0,1}, {2,3}, {4}.
}

TEST(LargestConnectedComponent, ExtractsAndRemaps) {
  GraphBuilder builder(6);
  builder.AddEdge(0, 1, 2);
  builder.AddEdge(1, 2, 3);
  builder.AddEdge(4, 5, 1);
  builder.SetCoordinates(
      {{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}});
  Graph graph = builder.Build();
  std::vector<VertexId> mapping;
  Graph lcc = LargestConnectedComponent(graph, &mapping);
  EXPECT_EQ(lcc.NumVertices(), 3u);
  EXPECT_EQ(lcc.NumEdges(), 2u);
  EXPECT_TRUE(IsConnected(lcc));
  EXPECT_NE(mapping[0], kInvalidVertex);
  EXPECT_EQ(mapping[4], kInvalidVertex);
  // Coordinates follow the mapping.
  EXPECT_EQ(lcc.VertexCoordinate(mapping[2]).x, 2);
}

TEST(DimacsIo, RoundTripsGraphAndCoordinates) {
  Graph original = testing::TinyGrid();
  std::stringstream gr, co;
  WriteDimacsGraph(original, gr);
  WriteDimacsCoordinates(original, co);
  Graph parsed = ReadDimacsGraph(gr, &co);
  ASSERT_EQ(parsed.NumVertices(), original.NumVertices());
  ASSERT_EQ(parsed.NumEdges(), original.NumEdges());
  for (VertexId v = 0; v < original.NumVertices(); ++v) {
    EXPECT_EQ(parsed.VertexCoordinate(v), original.VertexCoordinate(v));
    for (const Arc& arc : original.Neighbors(v)) {
      EXPECT_EQ(parsed.EdgeWeight(v, arc.head), arc.weight);
    }
  }
}

TEST(DimacsIo, RejectsMalformedInput) {
  {
    std::stringstream gr("a 1 2 3\n");
    EXPECT_THROW(ReadDimacsGraph(gr, nullptr), std::runtime_error);
  }
  {
    std::stringstream gr("p sp 2 1\na 1 5 3\n");
    EXPECT_THROW(ReadDimacsGraph(gr, nullptr), std::runtime_error);
  }
  {
    std::stringstream gr("p sp 2 2\na 1 2 3\n");  // Declared 2, saw 1.
    EXPECT_THROW(ReadDimacsGraph(gr, nullptr), std::runtime_error);
  }
}

TEST(RoadNetworkGenerator, ProducesConnectedRoadLikeGraph) {
  Graph graph = testing::MediumRoadNetwork();
  EXPECT_TRUE(IsConnected(graph));
  EXPECT_TRUE(graph.HasCoordinates());
  // Road networks: average degree around 2-3.
  const double avg_degree =
      static_cast<double>(graph.NumArcs()) / graph.NumVertices();
  EXPECT_GT(avg_degree, 1.8);
  EXPECT_LT(avg_degree, 3.6);
  // Most of the grid survives the largest-component extraction.
  EXPECT_GT(graph.NumVertices(), 52u * 52u * 8 / 10);
}

TEST(RoadNetworkGenerator, DeterministicForSameSeed) {
  Graph a = testing::SmallRoadNetwork(77);
  Graph b = testing::SmallRoadNetwork(77);
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    EXPECT_EQ(a.VertexCoordinate(v), b.VertexCoordinate(v));
  }
}

TEST(RoadNetworkGenerator, ValidatesOptions) {
  RoadNetworkOptions options;
  options.grid_width = 1;
  EXPECT_THROW(GenerateRoadNetwork(options), std::invalid_argument);
  options = {};
  options.edge_keep_probability = 1.5;
  EXPECT_THROW(GenerateRoadNetwork(options), std::invalid_argument);
  options = {};
  options.min_speed_factor = -1.0;
  EXPECT_THROW(GenerateRoadNetwork(options), std::invalid_argument);
  options = {};
  options.cell_size = 0;
  EXPECT_THROW(GenerateRoadNetwork(options), std::invalid_argument);
}

TEST(RoadNetworkGenerator, LadderScalesUp) {
  auto ladder = BenchmarkDatasetLadder();
  ASSERT_EQ(ladder.size(), 5u);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder[i].grid_width * ladder[i].grid_height,
              ladder[i - 1].grid_width * ladder[i - 1].grid_height);
    EXPECT_GT(ladder[i].num_keywords, ladder[i - 1].num_keywords);
  }
  EXPECT_EQ(DatasetSpecByName("FL").name, "FL");
  EXPECT_THROW(DatasetSpecByName("XX"), std::invalid_argument);
}

}  // namespace
}  // namespace kspin
