// Hub labeling correctness and structure: exactness against Dijkstra, the
// pruning pass keeping labels minimal-but-correct, and the 2-hop cover
// property.
#include <gtest/gtest.h>

#include "common/random.h"
#include "routing/dijkstra.h"
#include "routing/hub_labeling.h"
#include "test_util.h"

namespace kspin {
namespace {

class HlExactness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HlExactness, MatchesDijkstra) {
  Graph graph = testing::SmallRoadNetwork(GetParam());
  ContractionHierarchy ch(graph);
  HubLabeling labels(graph, ch, /*num_threads=*/2);
  DijkstraWorkspace workspace(graph.NumVertices());
  Rng rng(GetParam() + 100);
  for (int i = 0; i < 8; ++i) {
    const VertexId s =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    const auto& dist = workspace.SingleSource(graph, s);
    for (VertexId t = 0; t < graph.NumVertices(); t += 11) {
      ASSERT_EQ(labels.Query(s, t), dist[t]) << "s=" << s << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HlExactness, ::testing::Values(1, 2, 3));

TEST(HubLabeling, LabelsSortedByHub) {
  Graph graph = testing::SmallRoadNetwork(2);
  ContractionHierarchy ch(graph);
  HubLabeling labels(graph, ch, 2);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const auto label = labels.Label(v);
    for (std::size_t i = 1; i < label.size(); ++i) {
      EXPECT_LT(label[i - 1].hub, label[i].hub);
    }
  }
}

TEST(HubLabeling, EveryVertexIsItsOwnHubAtDistanceZero) {
  Graph graph = testing::SmallRoadNetwork(2);
  ContractionHierarchy ch(graph);
  HubLabeling labels(graph, ch, 2);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    bool found = false;
    for (const LabelEntry& e : labels.Label(v)) {
      if (e.hub == v) {
        EXPECT_EQ(e.distance, 0u);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "v=" << v;
  }
}

TEST(HubLabeling, PrunedEntriesCarryExactDistances) {
  Graph graph = testing::SmallRoadNetwork(3);
  ContractionHierarchy ch(graph);
  HubLabeling labels(graph, ch, 2);
  DijkstraWorkspace workspace(graph.NumVertices());
  Rng rng(4);
  for (int i = 0; i < 5; ++i) {
    const VertexId v =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    const auto& dist = workspace.SingleSource(graph, v);
    for (const LabelEntry& e : labels.Label(v)) {
      EXPECT_EQ(e.distance, dist[e.hub]) << "v=" << v << " hub=" << e.hub;
    }
  }
}

TEST(HubLabeling, AverageLabelSizeIsModest) {
  Graph graph = testing::MediumRoadNetwork();
  ContractionHierarchy ch(graph);
  HubLabeling labels(graph, ch, 4);
  EXPECT_GT(labels.AverageLabelSize(), 1.0);
  // Pruned CH labels on a ~2.5k-vertex road network should stay far below
  // the vertex count.
  EXPECT_LT(labels.AverageLabelSize(), graph.NumVertices() / 4.0);
  EXPECT_GT(labels.MemoryBytes(), 0u);
}

TEST(HubLabeling, SingleAndMultiThreadBuildsAgree) {
  Graph graph = testing::SmallRoadNetwork(6);
  ContractionHierarchy ch(graph);
  HubLabeling serial(graph, ch, 1);
  HubLabeling parallel(graph, ch, 4);
  for (VertexId v = 0; v < graph.NumVertices(); v += 7) {
    for (VertexId t = 0; t < graph.NumVertices(); t += 29) {
      EXPECT_EQ(serial.Query(v, t), parallel.Query(v, t));
    }
  }
}

TEST(HubLabelOracle, ImplementsOracleInterface) {
  Graph graph = testing::TinyGrid();
  ContractionHierarchy ch(graph);
  HubLabeling labels(graph, ch, 1);
  HubLabelOracle oracle(labels);
  EXPECT_EQ(oracle.Name(), "hl");
  EXPECT_EQ(oracle.NetworkDistance(0, 8), 4u);
  EXPECT_GT(oracle.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace kspin
