// Unit tests for the overload-control state machines (server/overload.h):
// the per-connection token bucket, the AIMD concurrency limiter, brownout
// hysteresis, and the OverloadController that ties them to the cumulative
// query-latency histogram. All are clock-free (time and samples passed
// in), so everything here is deterministic.
#include "server/overload.h"

#include <chrono>

#include <gtest/gtest.h>

#include "server/metrics.h"

namespace kspin::server {
namespace {

using Clock = TokenBucket::Clock;
using std::chrono::milliseconds;

// Builds a histogram snapshot where `count` samples all took `micros`.
HistogramSnapshot Uniform(std::uint64_t count, std::uint64_t micros) {
  LatencyHistogram h;
  for (std::uint64_t i = 0; i < count; ++i) h.Record(micros);
  return h.Snapshot();
}

TEST(TokenBucketTest, DisabledWhenRateIsZero) {
  TokenBucket bucket;
  const Clock::time_point now = Clock::now();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bucket.TryAcquire(now, 0.0, 0.0));
  }
}

TEST(TokenBucketTest, StartsFullAtBurstThenRejects) {
  TokenBucket bucket;
  const Clock::time_point now = Clock::now();
  // rate 10/s, burst defaults to 2 × rate = 20 tokens up front.
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(bucket.TryAcquire(now, 10.0, 0.0)) << "token " << i;
  }
  EXPECT_FALSE(bucket.TryAcquire(now, 10.0, 0.0));
}

TEST(TokenBucketTest, RefillsAtRate) {
  TokenBucket bucket;
  Clock::time_point now = Clock::now();
  // Explicit burst of 2: drain it.
  EXPECT_TRUE(bucket.TryAcquire(now, 10.0, 2.0));
  EXPECT_TRUE(bucket.TryAcquire(now, 10.0, 2.0));
  EXPECT_FALSE(bucket.TryAcquire(now, 10.0, 2.0));
  // 100 ms at 10/s refills exactly one token.
  now += milliseconds(100);
  EXPECT_TRUE(bucket.TryAcquire(now, 10.0, 2.0));
  EXPECT_FALSE(bucket.TryAcquire(now, 10.0, 2.0));
}

TEST(TokenBucketTest, RefillCapsAtBurst) {
  TokenBucket bucket;
  Clock::time_point now = Clock::now();
  EXPECT_TRUE(bucket.TryAcquire(now, 10.0, 2.0));
  EXPECT_TRUE(bucket.TryAcquire(now, 10.0, 2.0));
  // A long idle stretch must not bank more than `burst` tokens.
  now += std::chrono::seconds(60);
  EXPECT_TRUE(bucket.TryAcquire(now, 10.0, 2.0));
  EXPECT_TRUE(bucket.TryAcquire(now, 10.0, 2.0));
  EXPECT_FALSE(bucket.TryAcquire(now, 10.0, 2.0));
}

TEST(AimdLimiterTest, StartsAtMaxAndDecreasesMultiplicatively) {
  AimdLimiter limiter(100, 4, 0.7);
  EXPECT_EQ(limiter.limit(), 100u);
  EXPECT_TRUE(limiter.Observe(/*p99_us=*/50000, /*slo_us=*/10000));
  EXPECT_EQ(limiter.limit(), 70u);
  EXPECT_TRUE(limiter.Observe(50000, 10000));
  EXPECT_EQ(limiter.limit(), 49u);
}

TEST(AimdLimiterTest, FloorsAtMinLimit) {
  AimdLimiter limiter(100, 4, 0.7);
  for (int i = 0; i < 50; ++i) limiter.Observe(50000, 10000);
  EXPECT_EQ(limiter.limit(), 4u);
}

TEST(AimdLimiterTest, RecoversAdditivelyUpToMax) {
  AimdLimiter limiter(10, 1, 0.5);
  limiter.Observe(50000, 10000);
  EXPECT_EQ(limiter.limit(), 5u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(limiter.Observe(/*p99_us=*/1000, /*slo_us=*/10000));
  }
  EXPECT_EQ(limiter.limit(), 10u);  // +1 per healthy tick, capped at max.
}

TEST(AimdLimiterTest, IdleTicksCountAsHealthy) {
  AimdLimiter limiter(10, 1, 0.5);
  limiter.Observe(50000, 10000);
  // p99 of 0 means nothing completed this tick; the limit must climb
  // back or an idle server would stay throttled forever.
  limiter.Observe(0, 10000);
  EXPECT_EQ(limiter.limit(), 6u);
}

TEST(BrownoutControllerTest, RequiresConsecutiveTicksToEnter) {
  BrownoutController brownout(/*enter_ticks=*/3, /*exit_ticks=*/2);
  EXPECT_FALSE(brownout.Update(true));
  EXPECT_FALSE(brownout.Update(true));
  // A healthy tick resets the entry run.
  EXPECT_FALSE(brownout.Update(false));
  EXPECT_FALSE(brownout.Update(true));
  EXPECT_FALSE(brownout.Update(true));
  EXPECT_TRUE(brownout.Update(true));
  EXPECT_EQ(brownout.entries(), 1u);
}

TEST(BrownoutControllerTest, ExitsAfterConsecutiveHealthyTicks) {
  BrownoutController brownout(1, 3);
  EXPECT_TRUE(brownout.Update(true));
  EXPECT_TRUE(brownout.Update(false));
  EXPECT_TRUE(brownout.Update(false));
  // One more violation resets the exit run.
  EXPECT_TRUE(brownout.Update(true));
  EXPECT_TRUE(brownout.Update(false));
  EXPECT_TRUE(brownout.Update(false));
  EXPECT_FALSE(brownout.Update(false));
  // Re-entry counts a second episode.
  EXPECT_TRUE(brownout.Update(true));
  EXPECT_EQ(brownout.entries(), 2u);
}

TEST(OverloadControllerTest, TickDiffsCumulativeHistogram) {
  OverloadOptions options;
  options.latency_slo_ms = 10;  // SLO p99 <= 10 ms.
  OverloadController controller(options, /*queue_capacity=*/64, /*workers=*/2);
  EXPECT_TRUE(controller.enabled());

  LatencyHistogram cumulative;
  LatencyHistogram sojourn;
  // Tick 1: 100 fast queries — healthy; limit stays at capacity.
  for (int i = 0; i < 100; ++i) cumulative.Record(500);
  OverloadDecision d =
      controller.Tick(cumulative.Snapshot(), sojourn.Snapshot(), 0);
  EXPECT_FALSE(d.slo_violated);
  EXPECT_EQ(d.admission_limit, 64u);
  EXPECT_LE(d.p99_us, 1024u);

  // Tick 2: 100 *new* slow queries. Only the delta matters — the p99
  // must reflect this tick's 50 ms samples despite the cumulative
  // histogram still holding the older fast ones.
  for (int i = 0; i < 100; ++i) cumulative.Record(50000);
  d = controller.Tick(cumulative.Snapshot(), sojourn.Snapshot(), 0);
  EXPECT_TRUE(d.slo_violated);
  EXPECT_GT(d.p99_us, 10000u);
  EXPECT_LT(d.admission_limit, 64u);

  // Tick 3: no new samples at all — an idle tick is healthy.
  d = controller.Tick(cumulative.Snapshot(), sojourn.Snapshot(), 0);
  EXPECT_FALSE(d.slo_violated);
  EXPECT_EQ(d.p99_us, 0u);
}

TEST(OverloadControllerTest, BrownoutEngagesAfterSustainedViolation) {
  OverloadOptions options;
  options.latency_slo_ms = 10;
  options.brownout_enter_ticks = 3;
  options.brownout_exit_ticks = 2;
  OverloadController controller(options, 64, 2);

  LatencyHistogram cumulative;
  LatencyHistogram sojourn;
  OverloadDecision d;
  for (int tick = 0; tick < 3; ++tick) {
    for (int i = 0; i < 10; ++i) cumulative.Record(50000);
    d = controller.Tick(cumulative.Snapshot(), sojourn.Snapshot(), 8);
    EXPECT_EQ(d.brownout, tick == 2);
    EXPECT_EQ(d.brownout_entered, tick == 2);
  }
  // Two healthy (idle) ticks exit brownout; entered stays false.
  d = controller.Tick(cumulative.Snapshot(), sojourn.Snapshot(), 0);
  EXPECT_TRUE(d.brownout);
  EXPECT_FALSE(d.brownout_entered);
  d = controller.Tick(cumulative.Snapshot(), sojourn.Snapshot(), 0);
  EXPECT_FALSE(d.brownout);
}

// The CoDel blind spot: a tick where every dequeued request was shed
// records no query latency at all, so a query-only controller would
// read "no completions = healthy" and open the limit back up into a
// standing queue. The sojourn histogram (which shed requests DO enter)
// must drive the violation on its own.
TEST(OverloadControllerTest, SojournViolationsCountWithoutCompletions) {
  OverloadOptions options;
  options.latency_slo_ms = 10;
  options.brownout_enter_ticks = 2;
  OverloadController controller(options, 64, 2);

  LatencyHistogram latency;  // Stays empty: everything was shed.
  LatencyHistogram sojourn;
  OverloadDecision d;
  for (int tick = 0; tick < 2; ++tick) {
    for (int i = 0; i < 50; ++i) sojourn.Record(60000);  // 60 ms queued.
    d = controller.Tick(latency.Snapshot(), sojourn.Snapshot(), 32);
    EXPECT_TRUE(d.slo_violated);
    EXPECT_GT(d.p99_us, 10000u);
  }
  EXPECT_TRUE(d.brownout);
  EXPECT_LT(d.admission_limit, 64u);

  // Once the queue drains (no new sojourn samples), ticks go healthy
  // again and the limit starts climbing back.
  const std::size_t clamped = d.admission_limit;
  d = controller.Tick(latency.Snapshot(), sojourn.Snapshot(), 0);
  EXPECT_FALSE(d.slo_violated);
  EXPECT_EQ(d.admission_limit, clamped + 1);
}

TEST(OverloadControllerTest, RetryAfterUsesConfiguredConstant) {
  OverloadOptions options;
  options.latency_slo_ms = 10;
  options.retry_after_ms = 250;
  OverloadController controller(options, 64, 2);
  EXPECT_EQ(controller.RetryAfterMs(100, 5000.0, false), 250u);
  EXPECT_EQ(controller.RetryAfterMs(0, 0.0, true), 250u);
}

TEST(OverloadControllerTest, RetryAfterEstimatesDrainTime) {
  OverloadOptions options;
  options.latency_slo_ms = 10;
  options.tick_interval_ms = 100;
  OverloadController controller(options, 64, /*workers=*/2);
  // 100 queued × 10 ms mean ÷ 2 workers = 500 ms.
  EXPECT_EQ(controller.RetryAfterMs(100, 10000.0, false), 500u);
  // Brownout doubles the hint.
  EXPECT_EQ(controller.RetryAfterMs(100, 10000.0, true), 1000u);
  // Clamped below by the tick interval and above by 5 s.
  EXPECT_EQ(controller.RetryAfterMs(0, 10000.0, false), 100u);
  EXPECT_EQ(controller.RetryAfterMs(100000, 10000.0, false), 5000u);
}

TEST(UniformHelperSanity, HistogramPercentileIsBucketUpperBound) {
  // Guards the assumption the controller tests lean on: a 50 ms sample
  // lands in the bucket whose upper bound exceeds 10 ms.
  const HistogramSnapshot snap = Uniform(10, 50000);
  EXPECT_EQ(snap.count, 10u);
  EXPECT_GT(snap.PercentileMicros(0.99), 10000u);
}

}  // namespace
}  // namespace kspin::server
