// rho-Approximate NVD tests: Definition 1 (the 1NN is always among the
// candidates), flat small-list mode (Observation 1), expansion supply for
// Algorithm 4, both storage backends, and co-located objects.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "nvd/apx_nvd.h"
#include "routing/dijkstra.h"
#include "test_util.h"

namespace kspin {
namespace {

std::vector<SiteObject> RandomSites(const Graph& graph, std::uint32_t count,
                                    std::uint64_t seed) {
  Rng rng(seed);
  auto sample = rng.SampleWithoutReplacement(
      static_cast<std::uint32_t>(graph.NumVertices()), count);
  std::vector<SiteObject> sites;
  for (std::uint32_t i = 0; i < count; ++i) {
    sites.push_back({static_cast<ObjectId>(i), sample[i]});
  }
  return sites;
}

class ApxNvdStorageTest : public ::testing::TestWithParam<ApxNvdStorage> {};

TEST_P(ApxNvdStorageTest, InitialCandidatesContainThe1Nn) {
  Graph graph = testing::SmallRoadNetwork();
  const auto sites = RandomSites(graph, 30, 41);
  ApxNvdOptions options;
  options.rho = 4;
  options.storage = GetParam();
  ApxNvd nvd(graph, sites, options);
  ASSERT_TRUE(nvd.HasVoronoi());

  DijkstraWorkspace workspace(graph.NumVertices());
  for (VertexId q = 0; q < graph.NumVertices(); q += 5) {
    const auto& dist = workspace.SingleSource(graph, q);
    Distance best = kInfDistance;
    for (const SiteObject& s : sites) best = std::min(best, dist[s.vertex]);

    std::vector<SiteObject> candidates;
    nvd.InitialCandidates(q, &candidates);
    ASSERT_FALSE(candidates.empty()) << "q=" << q;
    bool has_1nn = false;
    for (const SiteObject& c : candidates) {
      if (dist[c.vertex] == best) has_1nn = true;
    }
    EXPECT_TRUE(has_1nn) << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, ApxNvdStorageTest,
                         ::testing::Values(ApxNvdStorage::kQuadtree,
                                           ApxNvdStorage::kRTree));

TEST(ApxNvd, QuadtreeCandidatesRespectRho) {
  Graph graph = testing::MediumRoadNetwork();
  const auto sites = RandomSites(graph, 80, 42);
  ApxNvdOptions options;
  options.rho = 5;
  ApxNvd nvd(graph, sites, options);
  std::vector<SiteObject> candidates;
  for (VertexId q = 0; q < graph.NumVertices(); q += 13) {
    candidates.clear();
    nvd.InitialCandidates(q, &candidates);
    EXPECT_LE(candidates.size(), 5u) << "q=" << q;
  }
}

TEST(ApxNvd, SmallListsStayFlat) {
  Graph graph = testing::SmallRoadNetwork();
  const auto sites = RandomSites(graph, 4, 43);
  ApxNvdOptions options;
  options.rho = 5;
  ApxNvd nvd(graph, sites, options);
  EXPECT_FALSE(nvd.HasVoronoi());  // Observation 1: no Voronoi built.
  std::vector<SiteObject> candidates;
  nvd.InitialCandidates(0, &candidates);
  EXPECT_EQ(candidates.size(), 4u);  // The whole inverted list.
  candidates.clear();
  nvd.ExpandCandidates(sites[0].object, &candidates);
  EXPECT_TRUE(candidates.empty());  // Nothing more to add.
}

TEST(ApxNvd, ExpansionSuppliesAdjacentObjects) {
  Graph graph = testing::SmallRoadNetwork();
  const auto sites = RandomSites(graph, 25, 44);
  ApxNvdOptions options;
  options.rho = 3;
  ApxNvd nvd(graph, sites, options);
  // Expanding from every site and chaining must eventually reach all
  // objects (the adjacency graph of a connected network is connected).
  std::set<ObjectId> reached;
  std::vector<ObjectId> frontier = {sites[0].object};
  reached.insert(sites[0].object);
  std::vector<SiteObject> out;
  while (!frontier.empty()) {
    const ObjectId o = frontier.back();
    frontier.pop_back();
    out.clear();
    nvd.ExpandCandidates(o, &out);
    for (const SiteObject& s : out) {
      if (reached.insert(s.object).second) frontier.push_back(s.object);
    }
  }
  EXPECT_EQ(reached.size(), sites.size());
}

TEST(ApxNvd, ColocatedObjectsAllSurface) {
  Graph graph = testing::SmallRoadNetwork();
  auto sites = RandomSites(graph, 20, 45);
  // Two extra objects share vertex with site 0.
  sites.push_back({100, sites[0].vertex});
  sites.push_back({101, sites[0].vertex});
  ApxNvdOptions options;
  options.rho = 3;
  ApxNvd nvd(graph, sites, options);
  // Wherever site 0 appears, the co-located objects ride along.
  std::vector<SiteObject> out;
  nvd.ExpandCandidates(sites[1].object, &out);
  // Gather full reachable set from any start.
  std::set<ObjectId> reached;
  std::vector<ObjectId> frontier = {sites[1].object};
  while (!frontier.empty()) {
    const ObjectId o = frontier.back();
    frontier.pop_back();
    out.clear();
    nvd.ExpandCandidates(o, &out);
    for (const SiteObject& s : out) {
      if (reached.insert(s.object).second) frontier.push_back(s.object);
    }
  }
  EXPECT_TRUE(reached.contains(100));
  EXPECT_TRUE(reached.contains(101));
  EXPECT_EQ(nvd.NumLiveObjects(), sites.size());
}

TEST(ApxNvd, RejectsDuplicateObjectIds) {
  Graph graph = testing::TinyGrid();
  std::vector<SiteObject> sites = {{1, 0}, {1, 8}};
  EXPECT_THROW(ApxNvd(graph, sites, {}), std::invalid_argument);
}

TEST(ApxNvd, RejectsZeroRho) {
  Graph graph = testing::TinyGrid();
  ApxNvdOptions options;
  options.rho = 0;
  EXPECT_THROW(ApxNvd(graph, {{0, 1}}, options), std::invalid_argument);
}

TEST(ApxNvd, MemoryShrinksWithLargerRho) {
  Graph graph = testing::MediumRoadNetwork();
  const auto sites = RandomSites(graph, 100, 46);
  ApxNvdOptions exact_options;
  exact_options.rho = 1;
  ApxNvdOptions apx_options;
  apx_options.rho = 5;
  ApxNvd exact(graph, sites, exact_options);
  ApxNvd apx(graph, sites, apx_options);
  EXPECT_GT(exact.MemoryBytes(), apx.MemoryBytes());
}

}  // namespace
}  // namespace kspin
