// G-tree correctness: exact distances (including same-leaf), border
// distance vectors, structural invariants, matrix-operation accounting.
#include <gtest/gtest.h>

#include "common/random.h"
#include "routing/dijkstra.h"
#include "routing/gtree.h"
#include "test_util.h"

namespace kspin {
namespace {

struct GTreeCase {
  std::uint64_t seed;
  PartitionStrategy strategy;
  std::uint32_t leaf_size;
};

class GTreeExactness : public ::testing::TestWithParam<GTreeCase> {};

TEST_P(GTreeExactness, MatchesDijkstra) {
  const GTreeCase param = GetParam();
  Graph graph = testing::SmallRoadNetwork(param.seed);
  GTreeOptions options;
  options.strategy = param.strategy;
  options.leaf_size = param.leaf_size;
  options.num_threads = 2;
  GTree gtree(graph, options);
  DijkstraWorkspace workspace(graph.NumVertices());
  Rng rng(param.seed + 50);
  for (int i = 0; i < 6; ++i) {
    const VertexId s =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    const auto& dist = workspace.SingleSource(graph, s);
    GTree::SourceCache cache = gtree.MakeSourceCache(s);
    for (VertexId t = 0; t < graph.NumVertices(); t += 9) {
      ASSERT_EQ(gtree.Query(cache, t), dist[t]) << "s=" << s << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GTreeExactness,
    ::testing::Values(GTreeCase{1, PartitionStrategy::kKdTree, 32},
                      GTreeCase{2, PartitionStrategy::kKdTree, 64},
                      GTreeCase{3, PartitionStrategy::kBfsGrowth, 32},
                      GTreeCase{4, PartitionStrategy::kKdTree, 16},
                      GTreeCase{5, PartitionStrategy::kBfsGrowth, 64}));

class GTreeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = testing::SmallRoadNetwork(7);
    GTreeOptions options;
    options.leaf_size = 32;
    options.num_threads = 2;
    gtree_ = std::make_unique<GTree>(graph_, options);
  }

  Graph graph_;
  std::unique_ptr<GTree> gtree_;
};

TEST_F(GTreeFixture, SameLeafDistancesAreExact) {
  DijkstraWorkspace workspace(graph_.NumVertices());
  // Find a leaf and check all pairs inside it.
  const GTree::NodeId leaf = gtree_->LeafOf(0);
  const auto& vertices = gtree_->LeafVertices(leaf);
  for (VertexId s : vertices) {
    const auto& dist = workspace.SingleSource(graph_, s);
    GTree::SourceCache cache = gtree_->MakeSourceCache(s);
    for (VertexId t : vertices) {
      ASSERT_EQ(gtree_->Query(cache, t), dist[t]) << "s=" << s << " t=" << t;
    }
  }
}

TEST_F(GTreeFixture, TreeStructureIsConsistent) {
  // Every vertex maps to a leaf that transitively reaches the root.
  for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
    GTree::NodeId node = gtree_->LeafOf(v);
    ASSERT_TRUE(gtree_->IsLeaf(node));
    std::uint32_t hops = 0;
    while (node != gtree_->RootNode()) {
      node = gtree_->Parent(node);
      ASSERT_LT(++hops, 64u);
    }
  }
  // Children link back to parents.
  for (GTree::NodeId n = 0; n < gtree_->NumNodes(); ++n) {
    for (GTree::NodeId c : gtree_->Children(n)) {
      EXPECT_EQ(gtree_->Parent(c), n);
    }
  }
  EXPECT_TRUE(gtree_->IsInSubtree(gtree_->LeafOf(0), gtree_->RootNode()));
}

TEST_F(GTreeFixture, BordersHaveOutsideEdges) {
  for (GTree::NodeId n = 0; n < gtree_->NumNodes(); ++n) {
    if (n == gtree_->RootNode()) {
      EXPECT_TRUE(gtree_->Borders(n).empty());
      continue;
    }
    for (VertexId b : gtree_->Borders(n)) {
      bool leaves = false;
      for (const Arc& arc : graph_.Neighbors(b)) {
        if (!gtree_->IsInSubtree(gtree_->LeafOf(arc.head), n)) {
          leaves = true;
          break;
        }
      }
      EXPECT_TRUE(leaves) << "border " << b << " of node " << n
                          << " has no edge leaving the node";
    }
  }
}

TEST_F(GTreeFixture, BorderDistancesAreExact) {
  DijkstraWorkspace workspace(graph_.NumVertices());
  Rng rng(8);
  for (int i = 0; i < 4; ++i) {
    const VertexId q =
        static_cast<VertexId>(rng.UniformInt(0, graph_.NumVertices() - 1));
    const auto& dist = workspace.SingleSource(graph_, q);
    GTree::SourceCache cache = gtree_->MakeSourceCache(q);
    for (GTree::NodeId n = 1; n < gtree_->NumNodes(); n += 3) {
      const auto& borders = gtree_->Borders(n);
      const auto& vec = gtree_->BorderDistances(cache, n);
      ASSERT_EQ(vec.size(), borders.size());
      for (std::size_t b = 0; b < borders.size(); ++b) {
        EXPECT_EQ(vec[b], dist[borders[b]])
            << "q=" << q << " node=" << n << " border=" << borders[b];
      }
    }
  }
}

TEST_F(GTreeFixture, BorderPairDistancesAreExact) {
  DijkstraWorkspace workspace(graph_.NumVertices());
  for (GTree::NodeId n = 1; n < gtree_->NumNodes(); n += 5) {
    const auto& borders = gtree_->Borders(n);
    if (borders.empty()) continue;
    const auto& dist = workspace.SingleSource(graph_, borders[0]);
    for (std::size_t j = 0; j < borders.size(); ++j) {
      EXPECT_EQ(gtree_->BorderPairDistance(n, 0, j), dist[borders[j]]);
    }
  }
}

TEST_F(GTreeFixture, MatrixOpsAccumulateAndReset) {
  gtree_->ResetMatrixOps();
  EXPECT_EQ(gtree_->MatrixOps(), 0u);
  GTree::SourceCache cache = gtree_->MakeSourceCache(0);
  gtree_->Query(cache, static_cast<VertexId>(graph_.NumVertices() - 1));
  EXPECT_GT(gtree_->MatrixOps(), 0u);
  gtree_->ResetMatrixOps();
  EXPECT_EQ(gtree_->MatrixOps(), 0u);
}

TEST_F(GTreeFixture, SourceCacheReusesBorderVectors) {
  GTree::SourceCache cache = gtree_->MakeSourceCache(1);
  const VertexId target = static_cast<VertexId>(graph_.NumVertices() - 1);
  gtree_->Query(cache, target);
  gtree_->ResetMatrixOps();
  gtree_->Query(cache, target);  // Second query: vectors cached.
  const std::uint64_t cached_ops = gtree_->MatrixOps();
  GTree::SourceCache fresh = gtree_->MakeSourceCache(1);
  gtree_->ResetMatrixOps();
  gtree_->Query(fresh, target);
  EXPECT_LT(cached_ops, gtree_->MatrixOps());
}

TEST_F(GTreeFixture, MinBorderDistanceBoundsNodeContents) {
  Rng rng(9);
  DijkstraWorkspace workspace(graph_.NumVertices());
  const VertexId q =
      static_cast<VertexId>(rng.UniformInt(0, graph_.NumVertices() - 1));
  const auto& dist = workspace.SingleSource(graph_, q);
  GTree::SourceCache cache = gtree_->MakeSourceCache(q);
  for (GTree::NodeId n = 0; n < gtree_->NumNodes(); ++n) {
    if (!gtree_->IsLeaf(n)) continue;
    if (gtree_->IsInSubtree(gtree_->LeafOf(q), n)) continue;
    const Distance mind = gtree_->MinBorderDistance(cache, n);
    for (VertexId v : gtree_->LeafVertices(n)) {
      EXPECT_LE(mind, dist[v]) << "node " << n << " vertex " << v;
    }
  }
}

TEST(GTree, RejectsGraphsBeyondMatrixRange) {
  // Matrices are 32-bit; a graph whose paths could overflow must be
  // rejected at construction, not corrupt silently.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 3000000000u);
  builder.AddEdge(1, 2, 3000000000u);
  builder.AddEdge(2, 3, 3000000000u);
  builder.SetCoordinates({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  Graph graph = builder.Build();
  EXPECT_THROW(GTree{graph}, std::invalid_argument);
}

TEST(GTree, ValidatesOptions) {
  Graph graph = testing::TinyGrid();
  GTreeOptions bad;
  bad.fanout = 1;
  EXPECT_THROW(GTree(graph, bad), std::invalid_argument);
  bad = {};
  bad.leaf_size = 0;
  EXPECT_THROW(GTree(graph, bad), std::invalid_argument);
}

TEST(GTree, WholeGraphFitsInOneLeaf) {
  Graph graph = testing::TinyGrid();
  GTreeOptions options;
  options.leaf_size = 64;  // Bigger than the graph: root is a leaf.
  GTree gtree(graph, options);
  EXPECT_EQ(gtree.NumNodes(), 1u);
  DijkstraWorkspace workspace(graph.NumVertices());
  for (VertexId s = 0; s < graph.NumVertices(); ++s) {
    const auto& dist = workspace.SingleSource(graph, s);
    for (VertexId t = 0; t < graph.NumVertices(); ++t) {
      EXPECT_EQ(gtree.Query(s, t), dist[t]);
    }
  }
}

TEST(GTreeOracle, MaterializesPerSource) {
  Graph graph = testing::SmallRoadNetwork(3);
  GTreeOptions options;
  options.leaf_size = 32;
  GTree gtree(graph, options);
  GTreeOracle oracle(gtree);
  DijkstraWorkspace workspace(graph.NumVertices());
  const auto& dist = workspace.SingleSource(graph, 5);
  oracle.BeginSourceBatch(5);
  for (VertexId t = 0; t < graph.NumVertices(); t += 21) {
    EXPECT_EQ(oracle.NetworkDistance(5, t), dist[t]);
  }
  EXPECT_EQ(oracle.Name(), "gtree");
}

}  // namespace
}  // namespace kspin
