// Shared fixtures and helpers for the K-SPIN test suite.
#ifndef KSPIN_TESTS_TEST_UTIL_H_
#define KSPIN_TESTS_TEST_UTIL_H_

#include <vector>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/road_network_generator.h"
#include "text/document_store.h"
#include "text/zipf_generator.h"

namespace kspin::testing {

/// A small deterministic road network for unit tests (~350 vertices).
inline Graph SmallRoadNetwork(std::uint64_t seed = 11) {
  RoadNetworkOptions options;
  options.grid_width = 20;
  options.grid_height = 20;
  options.seed = seed;
  return GenerateRoadNetwork(options);
}

/// A mid-size network for integration tests (~2.5k vertices).
inline Graph MediumRoadNetwork(std::uint64_t seed = 12) {
  RoadNetworkOptions options;
  options.grid_width = 52;
  options.grid_height = 52;
  options.seed = seed;
  return GenerateRoadNetwork(options);
}

/// Keyword dataset matched to a test graph.
inline DocumentStore TestDocuments(const Graph& graph,
                                   std::uint32_t num_keywords = 60,
                                   double object_fraction = 0.15,
                                   std::uint64_t seed = 21) {
  KeywordDatasetOptions options;
  options.num_keywords = num_keywords;
  options.object_fraction = object_fraction;
  options.seed = seed;
  return GenerateKeywordDataset(graph, options);
}

/// The hand-drawn 9-vertex graph used in several algorithm unit tests:
///
///   0 - 1 - 2
///   |   |   |
///   3 - 4 - 5       All edges weight 1 except (4,5) = 3 and (7,8) = 2.
///   |   |   |
///   6 - 7 - 8
inline Graph TinyGrid() {
  GraphBuilder builder(9);
  builder.AddEdge(0, 1, 1);
  builder.AddEdge(1, 2, 1);
  builder.AddEdge(0, 3, 1);
  builder.AddEdge(1, 4, 1);
  builder.AddEdge(2, 5, 1);
  builder.AddEdge(3, 4, 1);
  builder.AddEdge(4, 5, 3);
  builder.AddEdge(3, 6, 1);
  builder.AddEdge(4, 7, 1);
  builder.AddEdge(5, 8, 1);
  builder.AddEdge(6, 7, 1);
  builder.AddEdge(7, 8, 2);
  std::vector<Coordinate> coords;
  for (std::int32_t row = 0; row < 3; ++row) {
    for (std::int32_t col = 0; col < 3; ++col) {
      coords.push_back({col * 10, row * 10});
    }
  }
  builder.SetCoordinates(std::move(coords));
  return builder.Build();
}

}  // namespace kspin::testing

#endif  // KSPIN_TESTS_TEST_UTIL_H_
