// Exact Network Voronoi Diagram tests: owners, adjacency, MaxRadius.
#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "nvd/nvd.h"
#include "routing/dijkstra.h"
#include "test_util.h"

namespace kspin {
namespace {

TEST(Nvd, HandCheckedOwnersOnTinyGrid) {
  Graph graph = testing::TinyGrid();
  // Sites at corners 0 and 8.
  const std::vector<VertexId> sites = {0, 8};
  NetworkVoronoiDiagram nvd = BuildNvd(graph, sites);
  EXPECT_EQ(nvd.owner[0], 0u);
  EXPECT_EQ(nvd.owner[1], 0u);   // d=1 vs d=3.
  EXPECT_EQ(nvd.owner[8], 1u);
  EXPECT_EQ(nvd.owner[5], 1u);   // d(0,5)=3, d(8,5)=1.
  EXPECT_EQ(nvd.owner[4], 0u);   // d=2 vs d=3.
  // Vertex 2: d(0,2)=2, d(8,2)=2 -> tie broken to lower site index.
  EXPECT_EQ(nvd.owner[2], 0u);
  // The two regions touch.
  ASSERT_EQ(nvd.adjacency.size(), 2u);
  EXPECT_EQ(nvd.adjacency[0], std::vector<std::uint32_t>{1});
  EXPECT_EQ(nvd.adjacency[1], std::vector<std::uint32_t>{0});
}

TEST(Nvd, OwnersMatchBruteForceNearestSite) {
  Graph graph = testing::SmallRoadNetwork();
  Rng rng(31);
  std::vector<std::uint32_t> sample = rng.SampleWithoutReplacement(
      static_cast<std::uint32_t>(graph.NumVertices()), 12);
  std::vector<VertexId> sites(sample.begin(), sample.end());
  NetworkVoronoiDiagram nvd = BuildNvd(graph, sites);

  DijkstraWorkspace workspace(graph.NumVertices());
  std::vector<std::vector<Distance>> site_dist;
  for (VertexId s : sites) {
    const auto& d = workspace.SingleSource(graph, s);
    site_dist.emplace_back(d.begin(), d.end());
  }
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    Distance best = kInfDistance;
    for (std::size_t s = 0; s < sites.size(); ++s) {
      best = std::min(best, site_dist[s][v]);
    }
    ASSERT_EQ(nvd.owner_distance[v], best) << "v=" << v;
    ASSERT_EQ(site_dist[nvd.owner[v]][v], best) << "v=" << v;
  }
}

TEST(Nvd, MaxRadiusIsTightPerSite) {
  Graph graph = testing::SmallRoadNetwork(5);
  Rng rng(32);
  std::vector<std::uint32_t> sample = rng.SampleWithoutReplacement(
      static_cast<std::uint32_t>(graph.NumVertices()), 8);
  std::vector<VertexId> sites(sample.begin(), sample.end());
  NetworkVoronoiDiagram nvd = BuildNvd(graph, sites);
  std::vector<Distance> observed(sites.size(), 0);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    observed[nvd.owner[v]] =
        std::max(observed[nvd.owner[v]], nvd.owner_distance[v]);
  }
  EXPECT_EQ(observed, nvd.max_radius);
}

TEST(Nvd, AdjacencyMatchesEdgeCrossings) {
  Graph graph = testing::SmallRoadNetwork(6);
  Rng rng(33);
  std::vector<std::uint32_t> sample = rng.SampleWithoutReplacement(
      static_cast<std::uint32_t>(graph.NumVertices()), 10);
  std::vector<VertexId> sites(sample.begin(), sample.end());
  NetworkVoronoiDiagram nvd = BuildNvd(graph, sites);
  // Recompute adjacency from scratch and compare.
  std::vector<std::set<std::uint32_t>> expected(sites.size());
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (const Arc& arc : graph.Neighbors(u)) {
      const std::uint32_t a = nvd.owner[u];
      const std::uint32_t b = nvd.owner[arc.head];
      if (a != b) {
        expected[a].insert(b);
        expected[b].insert(a);
      }
    }
  }
  for (std::size_t s = 0; s < sites.size(); ++s) {
    std::set<std::uint32_t> got(nvd.adjacency[s].begin(),
                                nvd.adjacency[s].end());
    EXPECT_EQ(got, expected[s]) << "site " << s;
  }
}

TEST(Nvd, AverageAdjacencyDegreeIsSmall) {
  // Observation 2a: the adjacency graph degree is a small constant.
  Graph graph = testing::MediumRoadNetwork();
  Rng rng(34);
  std::vector<std::uint32_t> sample = rng.SampleWithoutReplacement(
      static_cast<std::uint32_t>(graph.NumVertices()), 120);
  std::vector<VertexId> sites(sample.begin(), sample.end());
  NetworkVoronoiDiagram nvd = BuildNvd(graph, sites);
  std::size_t total_degree = 0;
  for (const auto& list : nvd.adjacency) total_degree += list.size();
  const double avg = static_cast<double>(total_degree) / sites.size();
  EXPECT_LT(avg, 12.0);  // Paper reports ~6 on real road networks.
  EXPECT_GT(avg, 2.0);
}

TEST(Nvd, ValidatesInput) {
  Graph graph = testing::TinyGrid();
  EXPECT_THROW(BuildNvd(graph, {}), std::invalid_argument);
  const std::vector<VertexId> dup = {1, 1};
  EXPECT_THROW(BuildNvd(graph, dup), std::invalid_argument);
  const std::vector<VertexId> oob = {99};
  EXPECT_THROW(BuildNvd(graph, oob), std::invalid_argument);
}

TEST(Nvd, SingleSiteOwnsEverything) {
  Graph graph = testing::TinyGrid();
  const std::vector<VertexId> sites = {4};
  NetworkVoronoiDiagram nvd = BuildNvd(graph, sites);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    EXPECT_EQ(nvd.owner[v], 0u);
  }
  EXPECT_TRUE(nvd.adjacency[0].empty());
}

}  // namespace
}  // namespace kspin
